//! Plan selection: access paths, join ordering, and the what-if mode.
//!
//! Join ordering is exhaustive left-deep dynamic programming over table
//! subsets (the NREF workloads join at most a handful of tables). Access
//! paths compete on the cost model of [`crate::cost`]; when
//! [`OptimizerOptions::include_virtual`] is set, hypothetical indexes
//! registered in the catalog compete too — the resulting plan then reports
//! `uses_virtual` and cannot be executed, but its estimated cost is exactly
//! what the paper's analyzer uses to value an index recommendation.

use std::collections::HashMap;

use ingot_catalog::{Catalog, IndexEntry, TableEntry};
use ingot_common::{Cost, Error, IndexId, Result, TableId, Value};
use ingot_sql::BinOp;

use crate::binder::{table_offset, BoundSelect, BoundStatement, BoundTable, Conjunct, InsertRows};
use crate::cost::{
    column_ndv, conjunct_selectivity, equi_join_cardinality, index_probe_cost, pk_lookup_cost,
    seq_scan_cost, table_cardinality,
};
use crate::expr::PhysExpr;
use crate::physical::{PhysPlan, PlanNode, ProbeSpec};

/// Optimizer switches.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizerOptions {
    /// What-if mode: let virtual (hypothetical) indexes compete for access
    /// paths. Plans that pick one are not executable.
    pub include_virtual: bool,
}

/// A fully planned query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The plan tree.
    pub root: PlanNode,
    /// Names of the visible output columns.
    pub output_names: Vec<String>,
    /// Indexes the plan probes (the "used indexes" sensor value).
    pub used_indexes: Vec<IndexId>,
    /// True when a virtual index was chosen (what-if mode only).
    pub uses_virtual: bool,
    /// Estimated total cost (root's cumulative cost).
    pub est: Cost,
}

/// A planned statement of any kind.
// Variant sizes diverge because `PlannedQuery` carries the full operator
// tree inline, but statements are planned once and then shared through the
// plan cache behind an `Arc`, so the by-value size never hits a hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PlannedStatement {
    /// SELECT.
    Query(PlannedQuery),
    /// INSERT (rows pre-evaluated unless parameterised).
    Insert {
        /// Target table.
        table: TableId,
        /// Rows to insert.
        rows: InsertRows,
        /// Estimated cost.
        est: Cost,
    },
    /// UPDATE.
    Update {
        /// Target table.
        table: TableId,
        /// Assignments `(column, expression over the table layout)`.
        sets: Vec<(usize, PhysExpr)>,
        /// Row filter over the table layout.
        filter: Option<PhysExpr>,
        /// Estimated cost.
        est: Cost,
    },
    /// DELETE.
    Delete {
        /// Target table.
        table: TableId,
        /// Row filter over the table layout.
        filter: Option<PhysExpr>,
        /// Estimated cost.
        est: Cost,
    },
}

impl PlannedStatement {
    /// The estimated cost of the statement.
    pub fn estimated_cost(&self) -> Cost {
        match self {
            PlannedStatement::Query(q) => q.est,
            PlannedStatement::Insert { est, .. }
            | PlannedStatement::Update { est, .. }
            | PlannedStatement::Delete { est, .. } => *est,
        }
    }

    /// Indexes used (queries only).
    pub fn used_indexes(&self) -> &[IndexId] {
        match self {
            PlannedStatement::Query(q) => &q.used_indexes,
            _ => &[],
        }
    }

    /// Clone the statement with every parameter marker replaced by its bound
    /// value. This is the execute-time half of a prepared statement: the
    /// cached template stays untouched, the returned copy is executable.
    pub fn substitute_params(&self, params: &[Value]) -> Result<PlannedStatement> {
        let sub_opt = |e: &Option<PhysExpr>| -> Result<Option<PhysExpr>> {
            e.as_ref().map(|e| e.substitute(params)).transpose()
        };
        Ok(match self {
            PlannedStatement::Query(q) => PlannedStatement::Query(PlannedQuery {
                root: q.root.substitute_params(params)?,
                output_names: q.output_names.clone(),
                used_indexes: q.used_indexes.clone(),
                uses_virtual: q.uses_virtual,
                est: q.est,
            }),
            PlannedStatement::Insert { table, rows, est } => PlannedStatement::Insert {
                table: *table,
                rows: match rows {
                    InsertRows::Const(r) => InsertRows::Const(r.clone()),
                    InsertRows::Dynamic(r) => InsertRows::Dynamic(
                        r.iter()
                            .map(|row| {
                                row.iter()
                                    .map(|e| e.substitute(params))
                                    .collect::<Result<_>>()
                            })
                            .collect::<Result<_>>()?,
                    ),
                },
                est: *est,
            },
            PlannedStatement::Update {
                table,
                sets,
                filter,
                est,
            } => PlannedStatement::Update {
                table: *table,
                sets: sets
                    .iter()
                    .map(|(c, e)| Ok((*c, e.substitute(params)?)))
                    .collect::<Result<_>>()?,
                filter: sub_opt(filter)?,
                est: *est,
            },
            PlannedStatement::Delete { table, filter, est } => PlannedStatement::Delete {
                table: *table,
                filter: sub_opt(filter)?,
                est: *est,
            },
        })
    }
}

/// Plan a bound statement.
pub fn optimize(
    catalog: &Catalog,
    stmt: &BoundStatement,
    opts: OptimizerOptions,
) -> Result<PlannedStatement> {
    match stmt {
        BoundStatement::Select(s) => {
            Ok(PlannedStatement::Query(optimize_select(catalog, s, opts)?))
        }
        BoundStatement::Insert { table, rows } => Ok(PlannedStatement::Insert {
            table: *table,
            rows: rows.clone(),
            est: Cost::new(rows.len() as f64, rows.len() as f64 / 40.0 + 1.0),
        }),
        BoundStatement::Update {
            table,
            sets,
            filter,
        } => {
            let entry = catalog.table(*table)?;
            Ok(PlannedStatement::Update {
                table: *table,
                sets: sets.clone(),
                filter: filter.clone(),
                est: seq_scan_cost(entry),
            })
        }
        BoundStatement::Delete { table, filter } => {
            let entry = catalog.table(*table)?;
            Ok(PlannedStatement::Delete {
                table: *table,
                filter: filter.clone(),
                est: seq_scan_cost(entry),
            })
        }
    }
}

/// Plan a bound SELECT.
pub fn optimize_select(
    catalog: &Catalog,
    s: &BoundSelect,
    opts: OptimizerOptions,
) -> Result<PlannedQuery> {
    let mut node;
    let mut global_map: HashMap<usize, usize> = HashMap::new();

    if s.tables.is_empty() {
        node = PlanNode {
            op: PhysPlan::DualScan,
            est_rows: 1.0,
            est_cost: Cost::ZERO,
        };
        for c in &s.conjuncts {
            node = wrap_filter(node, c.expr.clone(), 1.0);
        }
    } else {
        // 1. Access-path selection per table.
        let mut rels = Vec::with_capacity(s.tables.len());
        for (i, bt) in s.tables.iter().enumerate() {
            rels.push(choose_access_path(catalog, s, i, bt, opts)?);
        }
        // 2. Left-deep DP join ordering.
        let (plan, map) = join_order(catalog, s, rels, opts)?;
        node = plan;
        global_map = map;
    }

    let remap =
        |e: &PhysExpr| -> PhysExpr { e.remap(&|off| *global_map.get(&off).unwrap_or(&off)) };

    // 3. Aggregation.
    if s.is_aggregate() {
        let group_by: Vec<PhysExpr> = s.group_by.iter().map(&remap).collect();
        let aggs: Vec<_> = s
            .aggregates
            .iter()
            .map(|a| crate::expr::AggSpec {
                func: a.func,
                input: a.input.as_ref().map(&remap),
                distinct: a.distinct,
            })
            .collect();
        let in_rows = node.est_rows;
        let out_rows = if group_by.is_empty() {
            1.0
        } else {
            (in_rows / 10.0).max(1.0)
        };
        let est_cost = node.est_cost + Cost::cpu(in_rows);
        node = PlanNode {
            op: PhysPlan::Aggregate {
                input: Box::new(node),
                group_by,
                aggs,
                having: s.having.clone(),
            },
            est_rows: out_rows,
            est_cost,
        };
        // Projections are already over the aggregate output layout.
        node = wrap_project(node, s.projections.iter().map(|(e, _)| e.clone()).collect());
    } else {
        node = wrap_project(node, s.projections.iter().map(|(e, _)| remap(e)).collect());
    }

    // 4. Sort (over the projection output, including hidden columns).
    if !s.order_by.is_empty() {
        let n = node.est_rows.max(2.0);
        let est_cost = node.est_cost + Cost::cpu(n * n.log2());
        node = PlanNode {
            est_rows: node.est_rows,
            op: PhysPlan::Sort {
                input: Box::new(node),
                keys: s.order_by.clone(),
            },
            est_cost,
        };
    }

    // 5. Strip hidden sort columns.
    let visible = s.projections.len() - s.hidden_sort_cols;
    if s.hidden_sort_cols > 0 {
        node = wrap_project(node, (0..visible).map(PhysExpr::Col).collect());
    }

    // 6. DISTINCT.
    if s.distinct {
        let est_cost = node.est_cost + Cost::cpu(node.est_rows);
        node = PlanNode {
            est_rows: (node.est_rows * 0.9).max(1.0),
            op: PhysPlan::Distinct {
                input: Box::new(node),
            },
            est_cost,
        };
    }

    // 7. LIMIT / OFFSET.
    if s.limit.is_some() || s.offset.is_some() {
        let limit = s.limit;
        let offset = s.offset.unwrap_or(0);
        let est_rows = match limit {
            Some(l) => node.est_rows.min(l as f64),
            None => node.est_rows,
        };
        node = PlanNode {
            est_rows,
            est_cost: node.est_cost,
            op: PhysPlan::Limit {
                input: Box::new(node),
                limit,
                offset,
            },
        };
    }

    let mut used_indexes = Vec::new();
    node.collect_indexes(&mut used_indexes);
    let uses_virtual = used_indexes.iter().any(|id| {
        catalog
            .index(*id)
            .map(|e| e.meta.is_virtual)
            .unwrap_or(false)
    });
    Ok(PlannedQuery {
        output_names: s
            .projections
            .iter()
            .take(visible)
            .map(|(_, n)| n.clone())
            .collect(),
        est: node.est_cost,
        root: node,
        used_indexes,
        uses_virtual,
    })
}

fn wrap_filter(node: PlanNode, pred: PhysExpr, sel: f64) -> PlanNode {
    let est_cost = node.est_cost + Cost::cpu(node.est_rows);
    PlanNode {
        est_rows: (node.est_rows * sel).max(1.0),
        op: PhysPlan::Filter {
            input: Box::new(node),
            pred,
        },
        est_cost,
    }
}

fn wrap_project(node: PlanNode, exprs: Vec<PhysExpr>) -> PlanNode {
    let est_cost = node.est_cost + Cost::cpu(node.est_rows * 0.1);
    PlanNode {
        est_rows: node.est_rows,
        op: PhysPlan::Project {
            input: Box::new(node),
            exprs,
        },
        est_cost,
    }
}

/// A table with its chosen access path.
struct Rel {
    plan: PlanNode,
}

/// Extract `(local column, constant expression)` equalities from local
/// conjuncts. Literals and parameter markers both qualify — a prepared
/// `id = $1` earns the same keyed access path as `id = 42`; the marker is
/// substituted with its bound value before execution.
fn extract_eq(conjuncts: &[PhysExpr]) -> HashMap<usize, PhysExpr> {
    let mut out = HashMap::new();
    for c in conjuncts {
        if let PhysExpr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = c
        {
            match (&**left, &**right) {
                (PhysExpr::Col(c), v @ (PhysExpr::Literal(_) | PhysExpr::Param(_)))
                | (v @ (PhysExpr::Literal(_) | PhysExpr::Param(_)), PhysExpr::Col(c)) => {
                    // Prefer a literal over a parameter when both equate the
                    // same column: the literal sharpens selectivity via the
                    // histogram.
                    let e = out.entry(*c).or_insert_with(|| v.clone());
                    if matches!(e, PhysExpr::Param(_)) && matches!(v, PhysExpr::Literal(_)) {
                        *e = v.clone();
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Extract `[lo, hi]` range bounds on `col` from local conjuncts.
///
/// Literal bounds tighten each other. A parameter bound (value unknown at
/// plan time) only fills an otherwise-empty slot: the probe may then read a
/// superset of the matching entries, which stays correct because the scan's
/// residual filter re-checks every conjunct.
fn extract_range(conjuncts: &[PhysExpr], col: usize) -> (Option<PhysExpr>, Option<PhysExpr>) {
    let mut lo_lit: Option<Value> = None;
    let mut hi_lit: Option<Value> = None;
    let mut lo_param: Option<PhysExpr> = None;
    let mut hi_param: Option<PhysExpr> = None;
    let mut tighten_lo = |v: &Value| {
        if lo_lit.as_ref().is_none_or(|cur| v > cur) {
            lo_lit = Some(v.clone());
        }
    };
    let mut tighten_hi = |v: &Value| {
        if hi_lit.as_ref().is_none_or(|cur| v < cur) {
            hi_lit = Some(v.clone());
        }
    };
    for c in conjuncts {
        match c {
            PhysExpr::Binary { op, left, right } if op.is_comparison() => {
                let (c2, op, v) = match (&**left, &**right) {
                    (PhysExpr::Col(c2), v @ (PhysExpr::Literal(_) | PhysExpr::Param(_))) => {
                        (*c2, *op, v)
                    }
                    (v @ (PhysExpr::Literal(_) | PhysExpr::Param(_)), PhysExpr::Col(c2)) => (
                        *c2,
                        match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            o => *o,
                        },
                        v,
                    ),
                    _ => continue,
                };
                if c2 != col {
                    continue;
                }
                match (op, v) {
                    (BinOp::Gt | BinOp::Ge, PhysExpr::Literal(v)) => tighten_lo(v),
                    (BinOp::Lt | BinOp::Le, PhysExpr::Literal(v)) => tighten_hi(v),
                    (BinOp::Gt | BinOp::Ge, p @ PhysExpr::Param(_)) => {
                        lo_param.get_or_insert_with(|| p.clone());
                    }
                    (BinOp::Lt | BinOp::Le, p @ PhysExpr::Param(_)) => {
                        hi_param.get_or_insert_with(|| p.clone());
                    }
                    _ => {}
                }
            }
            PhysExpr::Between {
                expr,
                lo: l,
                hi: h,
                negated: false,
            } => {
                let PhysExpr::Col(c2) = &**expr else { continue };
                if *c2 != col {
                    continue;
                }
                match &**l {
                    PhysExpr::Literal(v) => tighten_lo(v),
                    p @ PhysExpr::Param(_) => {
                        lo_param.get_or_insert_with(|| p.clone());
                    }
                    _ => {}
                }
                match &**h {
                    PhysExpr::Literal(v) => tighten_hi(v),
                    p @ PhysExpr::Param(_) => {
                        hi_param.get_or_insert_with(|| p.clone());
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    (
        lo_lit.map(PhysExpr::Literal).or(lo_param),
        hi_lit.map(PhysExpr::Literal).or(hi_param),
    )
}

fn choose_access_path(
    catalog: &Catalog,
    s: &BoundSelect,
    i: usize,
    bt: &BoundTable,
    opts: OptimizerOptions,
) -> Result<Rel> {
    let base = table_offset(&s.tables, i);
    let width = bt.schema.len();
    if bt.is_virtual {
        // IMA virtual table: memory-only scan, unknown but small cardinality.
        let local: Vec<PhysExpr> = s
            .conjuncts
            .iter()
            .filter(|c| c.tables == 1 << i || (c.tables == 0 && i == 0))
            .map(|c| c.expr.remap(&|off| off - base))
            .collect();
        let name = catalog
            .virtual_table(bt.table)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| bt.alias.clone());
        return Ok(Rel {
            plan: PlanNode {
                op: PhysPlan::VirtualScan {
                    table: bt.table,
                    table_name: name,
                    width,
                    filter: combine(&local),
                },
                est_rows: 1000.0,
                est_cost: Cost::cpu(1000.0),
            },
        });
    }
    let entry = catalog.table(bt.table)?;
    // Single-table conjuncts, remapped to local offsets. Constant conjuncts
    // (mask 0) are attached to the first table.
    let local: Vec<PhysExpr> = s
        .conjuncts
        .iter()
        .filter(|c| c.tables == 1 << i || (c.tables == 0 && i == 0))
        .map(|c| c.expr.remap(&|off| off - base))
        .collect();
    let card = table_cardinality(entry);
    let sel: f64 = local
        .iter()
        .map(|e| conjunct_selectivity(entry, e))
        .product();
    let out_rows = (card * sel).max(1.0);
    let filter = combine(&local);

    // Candidate 1: sequential scan.
    let mut best = PlanNode {
        op: PhysPlan::SeqScan {
            table: bt.table,
            table_name: entry.meta.name.clone(),
            width,
            filter: filter.clone(),
        },
        est_rows: out_rows,
        est_cost: seq_scan_cost(entry),
    };
    let mut best_virtual = false;

    let eqs = extract_eq(&local);

    // Candidate 2: clustered primary-key probe (full key or any leading
    // prefix of it — the tree serves both).
    if entry.primary.is_some() && !entry.meta.primary_key.is_empty() {
        let mut key: Vec<PhysExpr> = Vec::new();
        for c in &entry.meta.primary_key {
            match eqs.get(c) {
                Some(v) => key.push(v.clone()),
                None => break,
            }
        }
        if !key.is_empty() {
            let full = key.len() == entry.meta.primary_key.len();
            let (cost, rows) = if full {
                (pk_lookup_cost(entry), 1.0)
            } else {
                let prefix_sel: f64 = entry.meta.primary_key[..key.len()]
                    .iter()
                    .zip(&key)
                    .map(|(c, v)| {
                        let pred = PhysExpr::Binary {
                            op: BinOp::Eq,
                            left: Box::new(PhysExpr::Col(*c)),
                            right: Box::new(v.clone()),
                        };
                        conjunct_selectivity(entry, &pred)
                    })
                    .product();
                let matching = (card * prefix_sel).max(1.0);
                (index_probe_cost(entry, matching), matching)
            };
            if cost.cheaper_than(&best.est_cost) {
                best = PlanNode {
                    op: PhysPlan::PkLookup {
                        table: bt.table,
                        table_name: entry.meta.name.clone(),
                        width,
                        key,
                        filter: filter.clone(),
                    },
                    est_rows: (rows * sel).max(1.0).min(rows),
                    est_cost: cost,
                };
                best_virtual = false;
            }
        }
    }

    // Candidate 3: secondary-index probes.
    for idx in catalog.indexes_of(bt.table) {
        if idx.meta.is_virtual && !opts.include_virtual {
            continue;
        }
        let candidate = index_candidate(entry, idx, &local, &eqs, card, filter.clone(), width, bt);
        if let Some(cand) = candidate {
            let better = cand.est_cost.cheaper_than(&best.est_cost)
                // Tie-break: prefer a real index over a virtual one.
                || (cand.est_cost == best.est_cost && best_virtual && !idx.meta.is_virtual);
            if better {
                best_virtual = idx.meta.is_virtual;
                best = cand;
            }
        }
    }

    Ok(Rel { plan: best })
}

#[allow(clippy::too_many_arguments)]
fn index_candidate(
    entry: &TableEntry,
    idx: &IndexEntry,
    local: &[PhysExpr],
    eqs: &HashMap<usize, PhysExpr>,
    card: f64,
    filter: Option<PhysExpr>,
    width: usize,
    bt: &BoundTable,
) -> Option<PlanNode> {
    // Longest equality prefix over the index columns.
    let mut prefix: Vec<PhysExpr> = Vec::new();
    for col in &idx.meta.columns {
        match eqs.get(col) {
            Some(v) => prefix.push(v.clone()),
            None => break,
        }
    }
    let (probe, matching) = if !prefix.is_empty() {
        // Selectivity of the consumed equalities.
        let sel: f64 = idx.meta.columns[..prefix.len()]
            .iter()
            .zip(&prefix)
            .map(|(c, v)| {
                let pred = PhysExpr::Binary {
                    op: BinOp::Eq,
                    left: Box::new(PhysExpr::Col(*c)),
                    right: Box::new(v.clone()),
                };
                conjunct_selectivity(entry, &pred)
            })
            .product();
        (ProbeSpec::Eq(prefix), (card * sel).max(1.0))
    } else {
        // Range on the first index column.
        let first = idx.meta.columns[0];
        let (lo, hi) = extract_range(local, first);
        if lo.is_none() && hi.is_none() {
            return None;
        }
        let pred = PhysExpr::Between {
            expr: Box::new(PhysExpr::Col(first)),
            lo: Box::new(lo.clone().unwrap_or(PhysExpr::Literal(Value::Null))),
            hi: Box::new(hi.clone().unwrap_or(PhysExpr::Literal(Value::Null))),
            negated: false,
        };
        let sel = if lo.is_some() && hi.is_some() {
            conjunct_selectivity(entry, &pred)
        } else {
            crate::cost::DEFAULT_RANGE_SEL
        };
        (ProbeSpec::Range { lo, hi }, (card * sel).max(1.0))
    };
    let total_sel: f64 = local
        .iter()
        .map(|e| conjunct_selectivity(entry, e))
        .product();
    Some(PlanNode {
        op: PhysPlan::IndexScan {
            table: bt.table,
            table_name: entry.meta.name.clone(),
            index: idx.meta.id,
            index_name: idx.meta.name.clone(),
            width,
            probe,
            filter,
        },
        est_rows: (card * total_sel).max(1.0),
        est_cost: index_probe_cost(entry, matching),
    })
}

fn combine(conjuncts: &[PhysExpr]) -> Option<PhysExpr> {
    let mut it = conjuncts.iter().cloned();
    let first = it.next()?;
    Some(it.fold(first, |acc, e| PhysExpr::Binary {
        op: BinOp::And,
        left: Box::new(acc),
        right: Box::new(e),
    }))
}

struct DpState {
    plan: PlanNode,
    /// global offset → offset in this state's layout.
    map: HashMap<usize, usize>,
}

/// Conjuncts applied once `mask` is covered (multi-table only).
fn applied(conjuncts: &[Conjunct], mask: u64) -> Vec<usize> {
    conjuncts
        .iter()
        .enumerate()
        .filter(|(_, c)| c.tables.count_ones() >= 2 && c.tables & !mask == 0)
        .map(|(i, _)| i)
        .collect()
}

fn join_order(
    catalog: &Catalog,
    s: &BoundSelect,
    rels: Vec<Rel>,
    opts: OptimizerOptions,
) -> Result<(PlanNode, HashMap<usize, usize>)> {
    let n = s.tables.len();
    if n > 16 {
        return Err(Error::plan(format!("too many joined tables ({n} > 16)")));
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    let mut best: HashMap<u64, DpState> = HashMap::new();

    for (i, rel) in rels.iter().enumerate() {
        let base = table_offset(&s.tables, i);
        let mut map = HashMap::new();
        for j in 0..s.tables[i].schema.len() {
            map.insert(base + j, j);
        }
        best.insert(
            1 << i,
            DpState {
                plan: rel.plan.clone(),
                map,
            },
        );
    }

    // Enumerate masks by population count.
    for size in 1..n {
        let masks: Vec<u64> = best
            .keys()
            .copied()
            .filter(|m| m.count_ones() as usize == size)
            .collect();
        for mask in masks {
            for j in 0..n {
                if mask & (1 << j) != 0 {
                    continue;
                }
                let new_mask = mask | (1 << j);
                let cand = {
                    let state = best.get(&mask).expect("state exists");
                    extend_state(catalog, s, &rels, state, mask, j, opts)?
                };
                let replace = match best.get(&new_mask) {
                    Some(existing) => cand.plan.est_cost.cheaper_than(&existing.plan.est_cost),
                    None => true,
                };
                if replace {
                    best.insert(new_mask, cand);
                }
            }
        }
    }

    let final_state = best
        .remove(&full)
        .ok_or_else(|| Error::plan("join enumeration failed"))?;
    Ok((final_state.plan, final_state.map))
}

#[allow(clippy::too_many_arguments)]
fn extend_state(
    catalog: &Catalog,
    s: &BoundSelect,
    rels: &[Rel],
    state: &DpState,
    mask: u64,
    j: usize,
    opts: OptimizerOptions,
) -> Result<DpState> {
    let new_mask = mask | (1 << j);
    let left_width = state.plan.width();
    let right = &rels[j].plan;
    let base_j = table_offset(&s.tables, j);

    // New layout map: left's entries + table j appended.
    let mut map = state.map.clone();
    for k in 0..s.tables[j].schema.len() {
        map.insert(base_j + k, left_width + k);
    }

    // Conjuncts that become applicable at this join.
    let before = applied(&s.conjuncts, mask);
    let now = applied(&s.conjuncts, new_mask);
    let fresh: Vec<&Conjunct> = now
        .iter()
        .filter(|i| !before.contains(i))
        .map(|&i| &s.conjuncts[i])
        .collect();

    // Partition into hash-join equi keys and residual predicates.
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual = Vec::new();
    let mut join_sel = 1.0f64;
    for c in &fresh {
        let mut consumed = false;
        if let PhysExpr::Binary {
            op: BinOp::Eq,
            left: cl,
            right: cr,
        } = &c.expr
        {
            if let (PhysExpr::Col(a), PhysExpr::Col(b)) = (&**cl, &**cr) {
                let (a, b) = (*a, *b);
                let a_side = side_of(s, a);
                let b_side = side_of(s, b);
                let (l_off, r_off) = if a_side == j && b_side != j {
                    (b, a)
                } else if b_side == j && a_side != j {
                    (a, b)
                } else {
                    (usize::MAX, usize::MAX)
                };
                if l_off != usize::MAX && state.map.contains_key(&l_off) {
                    left_keys.push(state.map[&l_off]);
                    right_keys.push(r_off - base_j);
                    // Join selectivity from NDVs.
                    let (lt, lc) = table_col_of(s, l_off);
                    let (rt, rc) = table_col_of(s, r_off);
                    let l_rows = state.plan.est_rows;
                    let r_rows = right.est_rows;
                    let l_ndv = catalog
                        .table(s.tables[lt].table)
                        .map(|e| column_ndv(e, lc))
                        .unwrap_or(100.0);
                    let r_ndv = catalog
                        .table(s.tables[rt].table)
                        .map(|e| column_ndv(e, rc))
                        .unwrap_or(100.0);
                    let out = equi_join_cardinality(l_rows, r_rows, l_ndv, r_ndv);
                    join_sel *= out / (l_rows * r_rows).max(1.0);
                    consumed = true;
                }
            }
        }
        if !consumed {
            residual.push(c.expr.remap(&|off| map[&off]));
            join_sel *= 0.5;
        }
    }

    let out_rows = (state.plan.est_rows * right.est_rows * join_sel).max(1.0);
    // Candidate: index nested-loop ("probe") join — valid when the first
    // equi-key column has a keyed structure on table j.
    let probe_candidate = if left_keys.is_empty() || s.tables[j].is_virtual {
        None
    } else {
        build_probe_join(
            catalog,
            s,
            state,
            j,
            &left_keys,
            &right_keys,
            out_rows,
            opts,
        )?
    };
    let plan = if !left_keys.is_empty() {
        let est_cost = state.plan.est_cost
            + right.est_cost
            + Cost::cpu(state.plan.est_rows + right.est_rows + out_rows);
        PlanNode {
            op: PhysPlan::HashJoin {
                left: Box::new(state.plan.clone()),
                right: Box::new(right.clone()),
                left_keys,
                right_keys,
                filter: combine(&residual),
            },
            est_rows: out_rows,
            est_cost,
        }
    } else {
        // Nested loop: the inner is re-evaluated per outer row.
        let rescans = state.plan.est_rows.max(1.0);
        let inner = Cost::new(right.est_cost.cpu * rescans, right.est_cost.io * rescans);
        let est_cost = state.plan.est_cost + inner + Cost::cpu(out_rows);
        PlanNode {
            op: PhysPlan::NestedLoopJoin {
                left: Box::new(state.plan.clone()),
                right: Box::new(right.clone()),
                on: combine(&residual),
            },
            est_rows: out_rows,
            est_cost,
        }
    };
    let plan = match probe_candidate {
        Some(p) if p.est_cost.cheaper_than(&plan.est_cost) => p,
        _ => plan,
    };
    Ok(DpState { plan, map })
}

/// Build the probe-join candidate for joining `state` with table `j` on the
/// first equi-key pair. Returns `None` when no keyed structure serves the
/// join column.
#[allow(clippy::too_many_arguments)]
fn build_probe_join(
    catalog: &Catalog,
    s: &BoundSelect,
    state: &DpState,
    j: usize,
    left_keys: &[usize],
    right_keys: &[usize],
    out_rows: f64,
    opts: OptimizerOptions,
) -> Result<Option<PlanNode>> {
    use crate::physical::ProbeSource;
    let entry = catalog.table(s.tables[j].table)?;
    let join_col = right_keys[0];
    // Locate a probe source: clustered tree or an index leading with the
    // join column.
    let mut source = None;
    if entry.primary.is_some() && entry.meta.primary_key.first() == Some(&join_col) {
        source = Some(ProbeSource::PrimaryTree);
    } else {
        for idx in catalog.indexes_of(s.tables[j].table) {
            if idx.meta.is_virtual && !opts.include_virtual {
                continue;
            }
            if idx.meta.columns.first() == Some(&join_col) {
                source = Some(ProbeSource::Index(idx.meta.id, idx.meta.name.clone()));
                break;
            }
        }
    }
    let Some(source) = source else {
        return Ok(None);
    };

    let left_width = state.plan.width();
    let base_j = table_offset(&s.tables, j);
    let width = s.tables[j].schema.len();
    // Residual filter: table j's own conjuncts + remaining equi pairs, over
    // the concatenated layout.
    let mut filter_parts: Vec<PhysExpr> = s
        .conjuncts
        .iter()
        .filter(|c| c.tables == 1 << j)
        .map(|c| c.expr.remap(&|off| left_width + (off - base_j)))
        .collect();
    for (l, r) in left_keys.iter().zip(right_keys.iter()).skip(1) {
        filter_parts.push(PhysExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PhysExpr::Col(*l)),
            right: Box::new(PhysExpr::Col(left_width + *r)),
        });
    }

    // Cost: per outer row, one tree descent plus one heap fetch per match.
    let card_j = table_cardinality(entry);
    let matches_per_probe = (card_j / column_ndv(entry, join_col)).max(1.0);
    let height = (card_j.max(2.0).log(crate::cost::INDEX_ENTRIES_PER_LEAF))
        .ceil()
        .max(1.0);
    let probes = state.plan.est_rows.max(1.0);
    // Per-probe CPU: a tree descent walks ~height node pages linearly, which
    // costs real work even when allocation-free (≈ a handful of tuple units
    // per level), plus one unit per fetched match.
    let est_cost = state.plan.est_cost
        + Cost::new(
            probes * (8.0 * height + matches_per_probe),
            probes * (height * 0.2 + crate::cost::RANDOM_IO_WEIGHT * matches_per_probe),
        );
    Ok(Some(PlanNode {
        op: PhysPlan::ProbeJoin {
            left: Box::new(state.plan.clone()),
            table: s.tables[j].table,
            table_name: entry.meta.name.clone(),
            width,
            // `left_keys` already holds state-local offsets.
            left_key: left_keys[0],
            source,
            filter: combine(&filter_parts),
        },
        est_rows: out_rows,
        est_cost,
    }))
}

/// Which FROM-table owns global offset `off`.
fn side_of(s: &BoundSelect, off: usize) -> usize {
    let mut acc = 0;
    for (i, t) in s.tables.iter().enumerate() {
        acc += t.schema.len();
        if off < acc {
            return i;
        }
    }
    s.tables.len() - 1
}

/// `(table index, local column)` of global offset `off`.
fn table_col_of(s: &BoundSelect, off: usize) -> (usize, usize) {
    let t = side_of(s, off);
    (t, off - table_offset(&s.tables, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use ingot_common::{Column, DataType, EngineConfig, Row, Schema, SimClock};
    use ingot_sql::parse_statement;
    use ingot_storage::StorageEngine;
    use std::sync::Arc;

    fn setup() -> Catalog {
        let cfg = EngineConfig::default();
        let storage = StorageEngine::in_memory(&cfg, SimClock::new());
        let mut c = Catalog::new(Arc::clone(storage.pool()), 4);
        let protein = c
            .create_table(
                "protein",
                Schema::new(vec![
                    Column::not_null("nref_id", DataType::Int),
                    Column::new("name", DataType::Str),
                    Column::new("len", DataType::Int),
                ]),
                vec![0],
            )
            .unwrap();
        let organism = c
            .create_table(
                "organism",
                Schema::new(vec![
                    Column::not_null("nref_id", DataType::Int),
                    Column::new("taxon_id", DataType::Int),
                ]),
                vec![0],
            )
            .unwrap();
        for i in 0..8000i64 {
            c.insert_row(
                protein,
                &Row::new(vec![
                    Value::Int(i),
                    Value::Str(format!("p{i}")),
                    Value::Int(i % 100),
                ]),
            )
            .unwrap();
            c.insert_row(organism, &Row::new(vec![Value::Int(i), Value::Int(i % 20)]))
                .unwrap();
        }
        c.collect_statistics(protein, &[], 0).unwrap();
        c.collect_statistics(organism, &[], 0).unwrap();
        c
    }

    fn plan(c: &Catalog, sql: &str, opts: OptimizerOptions) -> PlannedQuery {
        let (bound, _) = Binder::new(c).bind(&parse_statement(sql).unwrap()).unwrap();
        let BoundStatement::Select(s) = bound else {
            panic!()
        };
        optimize_select(c, &s, opts).unwrap()
    }

    #[test]
    fn selective_eq_uses_index_when_available() {
        let mut c = setup();
        let q_before = plan(
            &c,
            "select name from protein where nref_id = 42",
            OptimizerOptions::default(),
        );
        assert!(q_before.used_indexes.is_empty());
        let t = c.resolve_table("protein").unwrap();
        c.create_index("protein_id_idx", t, vec![0], false).unwrap();
        let q_after = plan(
            &c,
            "select name from protein where nref_id = 42",
            OptimizerOptions::default(),
        );
        assert_eq!(q_after.used_indexes.len(), 1);
        assert!(q_after.est.cheaper_than(&q_before.est));
    }

    #[test]
    fn unselective_predicate_keeps_seq_scan() {
        let mut c = setup();
        let t = c.resolve_table("protein").unwrap();
        c.create_index("protein_len_idx", t, vec![2], false)
            .unwrap();
        // len >= 0 matches everything: scan should win.
        let q = plan(
            &c,
            "select name from protein where len >= 0",
            OptimizerOptions::default(),
        );
        assert!(q.used_indexes.is_empty(), "plan: {}", q.root);
    }

    #[test]
    fn join_produces_hash_join() {
        let c = setup();
        let q = plan(
            &c,
            "select p.name, o.taxon_id from protein p join organism o on p.nref_id = o.nref_id",
            OptimizerOptions::default(),
        );
        let s = q.root.to_string();
        assert!(s.contains("HashJoin"), "plan: {s}");
        // FK join: output ≈ 8000 rows.
        assert!(q.root.est_rows > 2000.0 && q.root.est_rows < 30_000.0);
    }

    #[test]
    fn virtual_index_only_in_whatif_mode() {
        let mut c = setup();
        let t = c.resolve_table("protein").unwrap();
        c.add_virtual_index(t, vec![0]).unwrap();
        let normal = plan(
            &c,
            "select name from protein where nref_id = 42",
            OptimizerOptions::default(),
        );
        assert!(!normal.uses_virtual);
        assert!(normal.used_indexes.is_empty());
        let whatif = plan(
            &c,
            "select name from protein where nref_id = 42",
            OptimizerOptions {
                include_virtual: true,
            },
        );
        assert!(whatif.uses_virtual);
        assert_eq!(whatif.used_indexes.len(), 1);
        assert!(whatif.est.cheaper_than(&normal.est));
    }

    #[test]
    fn pk_lookup_on_btree_table() {
        let mut c = setup();
        let t = c.resolve_table("protein").unwrap();
        c.modify_storage(t, ingot_catalog::StorageStructure::BTree)
            .unwrap();
        let q = plan(
            &c,
            "select name from protein where nref_id = 42",
            OptimizerOptions::default(),
        );
        assert!(q.root.to_string().contains("PkLookup"), "plan: {}", q.root);
    }

    #[test]
    fn range_probe_on_index() {
        let mut c = setup();
        let t = c.resolve_table("protein").unwrap();
        c.create_index("protein_id_idx", t, vec![0], false).unwrap();
        let q = plan(
            &c,
            "select name from protein where nref_id between 10 and 12",
            OptimizerOptions::default(),
        );
        assert!(q.root.to_string().contains("IndexScan"), "plan: {}", q.root);
        // A wide range on a low-cardinality column must stay a scan: the
        // random heap fetches would dwarf the sequential page reads.
        let mut c2 = setup();
        let t2 = c2.resolve_table("protein").unwrap();
        c2.create_index("protein_len_idx", t2, vec![2], false)
            .unwrap();
        let q2 = plan(
            &c2,
            "select name from protein where len between 3 and 40",
            OptimizerOptions::default(),
        );
        assert!(q2.used_indexes.is_empty(), "plan: {}", q2.root);
    }

    #[test]
    fn three_way_join_orders_all_tables() {
        let mut c = setup();
        c.create_table(
            "taxonomy",
            Schema::new(vec![
                Column::not_null("taxon_id", DataType::Int),
                Column::new("lineage", DataType::Str),
            ]),
            vec![0],
        )
        .unwrap();
        let q = plan(
            &c,
            "select p.name from protein p \
             join organism o on p.nref_id = o.nref_id \
             join taxonomy t on o.taxon_id = t.taxon_id",
            OptimizerOptions::default(),
        );
        let s = q.root.to_string();
        assert!(s.contains("protein") && s.contains("organism") && s.contains("taxonomy"));
    }

    #[test]
    fn parameterised_point_query_keeps_keyed_access_path() {
        let mut c = setup();
        let t = c.resolve_table("protein").unwrap();
        c.create_index("protein_id_idx", t, vec![0], false).unwrap();
        // `nref_id = $1` must probe the index exactly like `nref_id = 42`.
        let q = plan(
            &c,
            "select name from protein where nref_id = $1",
            OptimizerOptions::default(),
        );
        assert_eq!(q.used_indexes.len(), 1, "plan: {}", q.root);
        // And the same through a clustered primary tree.
        let mut c2 = setup();
        let t2 = c2.resolve_table("protein").unwrap();
        c2.modify_storage(t2, ingot_catalog::StorageStructure::BTree)
            .unwrap();
        let q2 = plan(
            &c2,
            "select name from protein where nref_id = $1",
            OptimizerOptions::default(),
        );
        assert!(
            q2.root.to_string().contains("PkLookup"),
            "plan: {}",
            q2.root
        );
        // Substitution yields an executable tree with the same shape.
        let bound = q2.root.substitute_params(&[Value::Int(42)]).unwrap();
        assert!(bound.to_string().contains("PkLookup"));
    }

    #[test]
    fn extract_range_accepts_params_into_open_bounds() {
        let col_gt = |rhs: PhysExpr| PhysExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(rhs),
        };
        let col_lt = |rhs: PhysExpr| PhysExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(rhs),
        };
        // Pure param bounds fill both slots.
        let (lo, hi) = extract_range(&[col_gt(PhysExpr::Param(0)), col_lt(PhysExpr::Param(1))], 0);
        assert_eq!(lo, Some(PhysExpr::Param(0)));
        assert_eq!(hi, Some(PhysExpr::Param(1)));
        // A literal bound wins the slot; the param conjunct stays in the
        // residual filter (the probe may over-read, never under-read).
        let (lo, hi) = extract_range(
            &[
                col_gt(PhysExpr::Param(0)),
                col_gt(PhysExpr::Literal(Value::Int(5))),
            ],
            0,
        );
        assert_eq!(lo, Some(PhysExpr::Literal(Value::Int(5))));
        assert_eq!(hi, None);
        // BETWEEN with param bounds contributes both slots.
        let between = PhysExpr::Between {
            expr: Box::new(PhysExpr::Col(0)),
            lo: Box::new(PhysExpr::Param(2)),
            hi: Box::new(PhysExpr::Param(3)),
            negated: false,
        };
        let (lo, hi) = extract_range(&[between], 0);
        assert_eq!(lo, Some(PhysExpr::Param(2)));
        assert_eq!(hi, Some(PhysExpr::Param(3)));
    }

    #[test]
    fn aggregate_plan_shape() {
        let c = setup();
        let q = plan(
            &c,
            "select taxon_id, count(*) from organism group by taxon_id order by 2 desc limit 3",
            OptimizerOptions::default(),
        );
        let s = q.root.to_string();
        assert!(s.contains("Aggregate") && s.contains("Sort") && s.contains("Limit"));
        assert_eq!(q.output_names, vec!["taxon_id", "count"]);
    }
}
