//! Physical expressions: resolved, offset-addressed and directly evaluable
//! against executor rows.

use std::fmt;

use ingot_common::{Error, Result, Row, Value};
use ingot_sql::{BinOp, UnOp};

/// An executable expression. Column references are flat offsets into the
/// operator's input row (the optimizer computes them for the join order it
/// chose).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysExpr {
    /// Literal value.
    Literal(Value),
    /// Prepared-statement parameter marker, 0-based (`$1` binds slot 0).
    /// Plans containing `Param` are templates: [`PhysExpr::substitute`]
    /// replaces every marker with a bound literal before execution.
    Param(usize),
    /// Input-row column at a flat offset.
    Col(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<PhysExpr>,
        /// Right operand.
        right: Box<PhysExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<PhysExpr>,
    },
    /// `IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<PhysExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `[NOT] BETWEEN`.
    Between {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// Lower bound.
        lo: Box<PhysExpr>,
        /// Upper bound.
        hi: Box<PhysExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `[NOT] IN (…)`.
    InList {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// Candidates.
        list: Vec<PhysExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `[NOT] LIKE`.
    Like {
        /// Tested expression.
        expr: Box<PhysExpr>,
        /// Pattern with `%` / `_` wildcards.
        pattern: String,
        /// Negated form.
        negated: bool,
    },
    /// Scalar function call (`abs`, `length`, `upper`, `lower`).
    Call {
        /// Function name (lower-case).
        func: String,
        /// Arguments.
        args: Vec<PhysExpr>,
    },
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`.
    Count,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// One aggregate computation in an `Aggregate` operator.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input expression; `None` for `COUNT(*)`.
    pub input: Option<PhysExpr>,
    /// `DISTINCT` aggregation.
    pub distinct: bool,
}

impl PhysExpr {
    /// Evaluate against an input row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            PhysExpr::Literal(v) => Ok(v.clone()),
            PhysExpr::Param(i) => Err(Error::execution(format!(
                "unbound parameter ${} (plan template executed without substitution)",
                i + 1
            ))),
            PhysExpr::Col(i) => {
                if *i >= row.len() {
                    return Err(Error::execution(format!(
                        "column offset {i} out of range (row width {})",
                        row.len()
                    )));
                }
                Ok(row.get(*i).clone())
            }
            PhysExpr::Binary { op, left, right } => {
                let l = left.eval(row)?;
                // Short-circuit AND/OR with three-valued logic.
                match op {
                    BinOp::And => {
                        return eval_and(&l, || right.eval(row));
                    }
                    BinOp::Or => {
                        return eval_or(&l, || right.eval(row));
                    }
                    _ => {}
                }
                let r = right.eval(row)?;
                eval_binary(*op, &l, &r)
            }
            PhysExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match (op, v) {
                    (_, Value::Null) => Ok(Value::Null),
                    (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                    (UnOp::Neg, Value::Float(f)) => Ok(Value::Float(-f)),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (op, v) => Err(Error::type_error(format!("cannot apply {op:?} to {v}"))),
                }
            }
            PhysExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            PhysExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = lo.eval(row)?;
                let hi = hi.eval(row)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let inside = v >= lo && v <= hi;
                Ok(Value::Bool(inside != *negated))
            }
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for cand in list {
                    let c = cand.eval(row)?;
                    if c.is_null() {
                        saw_null = true;
                    } else if values_equal(&v, &c) {
                        return Ok(Value::Bool(!*negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            PhysExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern) != *negated)),
                    other => Err(Error::type_error(format!(
                        "LIKE needs a string, got {other}"
                    ))),
                }
            }
            PhysExpr::Call { func, args } => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval(row)).collect::<Result<_>>()?;
                eval_scalar_fn(func, &vals)
            }
        }
    }

    /// Evaluate as a predicate: NULL counts as false (SQL WHERE semantics).
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(Error::type_error(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }

    /// The literal value, if this expression is a constant.
    pub fn as_literal(&self) -> Option<&Value> {
        match self {
            PhysExpr::Literal(v) => Some(v),
            _ => None,
        }
    }

    /// Collect all column offsets referenced.
    pub fn columns(&self, out: &mut Vec<usize>) {
        match self {
            PhysExpr::Literal(_) | PhysExpr::Param(_) => {}
            PhysExpr::Col(i) => out.push(*i),
            PhysExpr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            PhysExpr::Unary { expr, .. } => expr.columns(out),
            PhysExpr::IsNull { expr, .. } => expr.columns(out),
            PhysExpr::Between { expr, lo, hi, .. } => {
                expr.columns(out);
                lo.columns(out);
                hi.columns(out);
            }
            PhysExpr::InList { expr, list, .. } => {
                expr.columns(out);
                for e in list {
                    e.columns(out);
                }
            }
            PhysExpr::Like { expr, .. } => expr.columns(out),
            PhysExpr::Call { args, .. } => {
                for a in args {
                    a.columns(out);
                }
            }
        }
    }

    /// Rewrite every column offset through `map` (used when the optimizer
    /// re-bases expressions onto an operator's local row layout).
    pub fn remap(&self, map: &dyn Fn(usize) -> usize) -> PhysExpr {
        match self {
            PhysExpr::Literal(v) => PhysExpr::Literal(v.clone()),
            PhysExpr::Param(i) => PhysExpr::Param(*i),
            PhysExpr::Col(i) => PhysExpr::Col(map(*i)),
            PhysExpr::Binary { op, left, right } => PhysExpr::Binary {
                op: *op,
                left: Box::new(left.remap(map)),
                right: Box::new(right.remap(map)),
            },
            PhysExpr::Unary { op, expr } => PhysExpr::Unary {
                op: *op,
                expr: Box::new(expr.remap(map)),
            },
            PhysExpr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(expr.remap(map)),
                negated: *negated,
            },
            PhysExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => PhysExpr::Between {
                expr: Box::new(expr.remap(map)),
                lo: Box::new(lo.remap(map)),
                hi: Box::new(hi.remap(map)),
                negated: *negated,
            },
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => PhysExpr::InList {
                expr: Box::new(expr.remap(map)),
                list: list.iter().map(|e| e.remap(map)).collect(),
                negated: *negated,
            },
            PhysExpr::Like {
                expr,
                pattern,
                negated,
            } => PhysExpr::Like {
                expr: Box::new(expr.remap(map)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            PhysExpr::Call { func, args } => PhysExpr::Call {
                func: func.clone(),
                args: args.iter().map(|a| a.remap(map)).collect(),
            },
        }
    }

    /// True if the expression contains at least one [`PhysExpr::Param`].
    pub fn has_params(&self) -> bool {
        match self {
            PhysExpr::Param(_) => true,
            PhysExpr::Literal(_) | PhysExpr::Col(_) => false,
            PhysExpr::Binary { left, right, .. } => left.has_params() || right.has_params(),
            PhysExpr::Unary { expr, .. }
            | PhysExpr::IsNull { expr, .. }
            | PhysExpr::Like { expr, .. } => expr.has_params(),
            PhysExpr::Between { expr, lo, hi, .. } => {
                expr.has_params() || lo.has_params() || hi.has_params()
            }
            PhysExpr::InList { expr, list, .. } => {
                expr.has_params() || list.iter().any(PhysExpr::has_params)
            }
            PhysExpr::Call { args, .. } => args.iter().any(PhysExpr::has_params),
        }
    }

    /// Replace every [`PhysExpr::Param`] with the corresponding bound value.
    /// The caller checks arity up front; an out-of-range slot here means the
    /// plan template and its declared parameter count disagree.
    pub fn substitute(&self, params: &[Value]) -> Result<PhysExpr> {
        Ok(match self {
            PhysExpr::Param(i) => match params.get(*i) {
                Some(v) => PhysExpr::Literal(v.clone()),
                None => {
                    return Err(Error::execution(format!(
                        "unbound parameter ${} ({} value(s) supplied)",
                        i + 1,
                        params.len()
                    )))
                }
            },
            PhysExpr::Literal(v) => PhysExpr::Literal(v.clone()),
            PhysExpr::Col(i) => PhysExpr::Col(*i),
            PhysExpr::Binary { op, left, right } => PhysExpr::Binary {
                op: *op,
                left: Box::new(left.substitute(params)?),
                right: Box::new(right.substitute(params)?),
            },
            PhysExpr::Unary { op, expr } => PhysExpr::Unary {
                op: *op,
                expr: Box::new(expr.substitute(params)?),
            },
            PhysExpr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(expr.substitute(params)?),
                negated: *negated,
            },
            PhysExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => PhysExpr::Between {
                expr: Box::new(expr.substitute(params)?),
                lo: Box::new(lo.substitute(params)?),
                hi: Box::new(hi.substitute(params)?),
                negated: *negated,
            },
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => PhysExpr::InList {
                expr: Box::new(expr.substitute(params)?),
                list: list
                    .iter()
                    .map(|e| e.substitute(params))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            PhysExpr::Like {
                expr,
                pattern,
                negated,
            } => PhysExpr::Like {
                expr: Box::new(expr.substitute(params)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            PhysExpr::Call { func, args } => PhysExpr::Call {
                func: func.clone(),
                args: args
                    .iter()
                    .map(|a| a.substitute(params))
                    .collect::<Result<_>>()?,
            },
        })
    }
}

fn bool_of(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        _ => None,
    }
}

fn eval_and(l: &Value, rf: impl FnOnce() -> Result<Value>) -> Result<Value> {
    match bool_of(l) {
        Some(false) => Ok(Value::Bool(false)),
        lb => {
            let r = rf()?;
            match (lb, bool_of(&r)) {
                (_, Some(false)) => Ok(Value::Bool(false)),
                (Some(true), Some(true)) => Ok(Value::Bool(true)),
                _ => Ok(Value::Null),
            }
        }
    }
}

fn eval_or(l: &Value, rf: impl FnOnce() -> Result<Value>) -> Result<Value> {
    match bool_of(l) {
        Some(true) => Ok(Value::Bool(true)),
        lb => {
            let r = rf()?;
            match (lb, bool_of(&r)) {
                (_, Some(true)) => Ok(Value::Bool(true)),
                (Some(false), Some(false)) => Ok(Value::Bool(false)),
                _ => Ok(Value::Null),
            }
        }
    }
}

/// Numeric-aware equality (Int 2 == Float 2.0).
pub fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        _ => a == b,
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use Value::*;
    if l.is_null() || r.is_null() {
        return Ok(Null);
    }
    if op.is_comparison() {
        let ord = l.cmp(r);
        let b = match op {
            BinOp::Eq => ord == std::cmp::Ordering::Equal,
            BinOp::Neq => ord != std::cmp::Ordering::Equal,
            BinOp::Lt => ord == std::cmp::Ordering::Less,
            BinOp::Le => ord != std::cmp::Ordering::Greater,
            BinOp::Gt => ord == std::cmp::Ordering::Greater,
            BinOp::Ge => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Bool(b));
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => match (l, r) {
            (Int(a), Int(b)) => {
                let b = *b;
                let a = *a;
                Ok(match op {
                    BinOp::Add => Int(a.wrapping_add(b)),
                    BinOp::Sub => Int(a.wrapping_sub(b)),
                    BinOp::Mul => Int(a.wrapping_mul(b)),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(Error::execution("division by zero"));
                        }
                        Int(a / b)
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            return Err(Error::execution("modulo by zero"));
                        }
                        Int(a % b)
                    }
                    _ => unreachable!(),
                })
            }
            (Str(a), Str(b)) if op == BinOp::Add => Ok(Str(format!("{a}{b}"))),
            _ => {
                let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                    return Err(Error::type_error(format!("cannot compute {l} {op:?} {r}")));
                };
                Ok(match op {
                    BinOp::Add => Float(a + b),
                    BinOp::Sub => Float(a - b),
                    BinOp::Mul => Float(a * b),
                    BinOp::Div => {
                        if b == 0.0 {
                            return Err(Error::execution("division by zero"));
                        }
                        Float(a / b)
                    }
                    BinOp::Mod => Float(a % b),
                    _ => unreachable!(),
                })
            }
        },
        BinOp::And | BinOp::Or => unreachable!("handled by caller"),
        _ => unreachable!(),
    }
}

fn eval_scalar_fn(func: &str, args: &[Value]) -> Result<Value> {
    let arg = |i: usize| -> Result<&Value> {
        args.get(i)
            .ok_or_else(|| Error::type_error(format!("{func}: missing argument {i}")))
    };
    match func {
        "abs" => match arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            other => Err(Error::type_error(format!("abs({other}) is not numeric"))),
        },
        "length" => match arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => Ok(Value::Int(s.len() as i64)),
            other => Err(Error::type_error(format!(
                "length({other}) is not a string"
            ))),
        },
        "upper" => match arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
            other => Err(Error::type_error(format!("upper({other}) is not a string"))),
        },
        "lower" => match arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
            other => Err(Error::type_error(format!("lower({other}) is not a string"))),
        },
        other => Err(Error::unsupported(format!("unknown function '{other}'"))),
    }
}

/// SQL `LIKE` matching with `%` (any run) and `_` (any one char).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // Collapse consecutive %.
                let p = &p[1..];
                if p.is_empty() {
                    return true;
                }
                (0..=s.len()).any(|i| rec(&s[i..], p))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::new(vec![
            Value::Int(10),
            Value::Str("NF0042".into()),
            Value::Null,
            Value::Float(2.5),
        ])
    }

    fn lit(v: Value) -> PhysExpr {
        PhysExpr::Literal(v)
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = PhysExpr::Binary {
            op: BinOp::Mul,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(lit(Value::Int(3))),
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(30));
        let cmp = PhysExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(e),
            right: Box::new(lit(Value::Float(29.5))),
        };
        assert_eq!(cmp.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagation_three_valued() {
        // NULL = NULL → NULL, and WHERE treats it as false.
        let e = PhysExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PhysExpr::Col(2)),
            right: Box::new(PhysExpr::Col(2)),
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&row()).unwrap());
        // FALSE AND NULL → FALSE; TRUE OR NULL → TRUE.
        let f_and_null = PhysExpr::Binary {
            op: BinOp::And,
            left: Box::new(lit(Value::Bool(false))),
            right: Box::new(lit(Value::Null)),
        };
        assert_eq!(f_and_null.eval(&row()).unwrap(), Value::Bool(false));
        let t_or_null = PhysExpr::Binary {
            op: BinOp::Or,
            left: Box::new(lit(Value::Bool(true))),
            right: Box::new(lit(Value::Null)),
        };
        assert_eq!(t_or_null.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn is_null_between_in() {
        let isn = PhysExpr::IsNull {
            expr: Box::new(PhysExpr::Col(2)),
            negated: false,
        };
        assert_eq!(isn.eval(&row()).unwrap(), Value::Bool(true));
        let btw = PhysExpr::Between {
            expr: Box::new(PhysExpr::Col(0)),
            lo: Box::new(lit(Value::Int(5))),
            hi: Box::new(lit(Value::Int(15))),
            negated: false,
        };
        assert_eq!(btw.eval(&row()).unwrap(), Value::Bool(true));
        let inl = PhysExpr::InList {
            expr: Box::new(PhysExpr::Col(0)),
            list: vec![lit(Value::Int(1)), lit(Value::Int(10))],
            negated: true,
        };
        assert_eq!(inl.eval(&row()).unwrap(), Value::Bool(false));
        // NOT IN with a NULL candidate and no match → NULL.
        let inl_null = PhysExpr::InList {
            expr: Box::new(PhysExpr::Col(0)),
            list: vec![lit(Value::Null)],
            negated: true,
        };
        assert_eq!(inl_null.eval(&row()).unwrap(), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("NF0042", "NF%"));
        assert!(like_match("NF0042", "%42"));
        assert!(like_match("NF0042", "NF__42"));
        assert!(like_match("NF0042", "%F0%"));
        assert!(!like_match("NF0042", "NG%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "abc"));
    }

    #[test]
    fn division_errors() {
        let e = PhysExpr::Binary {
            op: BinOp::Div,
            left: Box::new(lit(Value::Int(1))),
            right: Box::new(lit(Value::Int(0))),
        };
        assert!(e.eval(&row()).is_err());
    }

    #[test]
    fn scalar_functions() {
        let len = PhysExpr::Call {
            func: "length".into(),
            args: vec![PhysExpr::Col(1)],
        };
        assert_eq!(len.eval(&row()).unwrap(), Value::Int(6));
        let abs = PhysExpr::Call {
            func: "abs".into(),
            args: vec![lit(Value::Int(-3))],
        };
        assert_eq!(abs.eval(&row()).unwrap(), Value::Int(3));
        let bad = PhysExpr::Call {
            func: "nosuch".into(),
            args: vec![],
        };
        assert!(bad.eval(&row()).is_err());
    }

    #[test]
    fn remap_and_columns() {
        let e = PhysExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PhysExpr::Col(2)),
            right: Box::new(PhysExpr::Col(5)),
        };
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(cols, vec![2, 5]);
        let shifted = e.remap(&|i| i - 2);
        let mut cols2 = Vec::new();
        shifted.columns(&mut cols2);
        assert_eq!(cols2, vec![0, 3]);
    }

    #[test]
    fn params_substitute_and_refuse_raw_eval() {
        let e = PhysExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(PhysExpr::Param(0)),
        };
        assert!(e.has_params());
        // Executing a template without substitution is an error, not a NULL.
        assert!(e.eval(&row()).is_err());
        let bound = e.substitute(&[Value::Int(10)]).unwrap();
        assert!(!bound.has_params());
        assert_eq!(bound.eval(&row()).unwrap(), Value::Bool(true));
        // Too few values → arity failure at substitution time.
        assert!(e.substitute(&[]).is_err());
        // Substitution leaves non-param expressions untouched.
        let plain = PhysExpr::Col(3);
        assert_eq!(plain.substitute(&[]).unwrap(), plain);
    }

    #[test]
    fn string_concat() {
        let e = PhysExpr::Binary {
            op: BinOp::Add,
            left: Box::new(lit(Value::Str("a".into()))),
            right: Box::new(lit(Value::Str("b".into()))),
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Str("ab".into()));
    }
}
