//! The binder: resolves names against the catalog and produces
//! offset-addressed expressions.
//!
//! Binding is where the paper's parse-stage sensors fire: everything the
//! monitor logs about a statement's *references* — tables, attributes,
//! histogram availability, candidate indexes — is a by-product of name
//! resolution and is returned as [`BindArtifacts`] so the engine can hand it
//! to the monitor without a second catalog pass.

use ingot_catalog::Catalog;
use ingot_common::{Error, IndexId, Result, Row, Schema, TableId, Value};
use ingot_sql::{Expr, OrderItem, SelectItem, SelectStmt, Statement};

use crate::expr::{AggFunc, AggSpec, PhysExpr};

/// What the parse/bind sensors log (Fig 2: "Tables, Attributes, Histograms,
/// Available Indexes").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BindArtifacts {
    /// Referenced tables `(id, name)`.
    pub tables: Vec<(TableId, String)>,
    /// Referenced attributes `(table, column position, column name)`.
    pub attributes: Vec<(TableId, usize, String)>,
    /// Attributes among the referenced ones that have histograms.
    pub histograms: Vec<(TableId, usize)>,
    /// Indexes available on the referenced tables (including virtual ones
    /// during what-if runs).
    pub indexes: Vec<IndexId>,
}

/// One base table occurrence in `FROM` (aliases make occurrences distinct).
#[derive(Debug, Clone)]
pub struct BoundTable {
    /// The catalog table.
    pub table: TableId,
    /// Alias (or table name when unaliased).
    pub alias: String,
    /// The table's schema.
    pub schema: Schema,
    /// True for provider-backed (IMA) virtual tables.
    pub is_virtual: bool,
}

/// A WHERE/ON conjunct with the set of FROM-tables it references.
#[derive(Debug, Clone)]
pub struct Conjunct {
    /// The predicate, column offsets in the *global* layout (FROM order).
    pub expr: PhysExpr,
    /// Bitmask over `BoundSelect::tables` indexes.
    pub tables: u64,
}

/// A bound SELECT.
#[derive(Debug, Clone)]
pub struct BoundSelect {
    /// FROM tables in syntactic order.
    pub tables: Vec<BoundTable>,
    /// All conjuncts from WHERE and JOIN ON clauses.
    pub conjuncts: Vec<Conjunct>,
    /// Projections over the input layout: base layout for plain queries,
    /// `[group keys ‖ aggregates]` for aggregate queries.
    pub projections: Vec<(PhysExpr, String)>,
    /// Hidden trailing projections used only by ORDER BY.
    pub hidden_sort_cols: usize,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Group-key expressions over the base layout (empty for plain queries).
    pub group_by: Vec<PhysExpr>,
    /// Aggregates over the base layout.
    pub aggregates: Vec<AggSpec>,
    /// HAVING over the aggregate output layout.
    pub having: Option<PhysExpr>,
    /// Sort keys as offsets into the projection output (visible + hidden).
    pub order_by: Vec<(usize, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
    /// OFFSET.
    pub offset: Option<u64>,
}

impl BoundSelect {
    /// True when the query aggregates (GROUP BY or aggregate functions).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty() || !self.aggregates.is_empty()
    }
}

/// INSERT payload: constant rows are folded and constraint-checked at bind
/// time (errors surface before any lock is taken); rows containing parameter
/// markers stay as expressions and are evaluated + checked per execution.
#[derive(Debug, Clone)]
pub enum InsertRows {
    /// Fully-evaluated rows in schema order, already `check_row`-validated.
    Const(Vec<Row>),
    /// Schema-width expression rows awaiting parameter substitution.
    Dynamic(Vec<Vec<PhysExpr>>),
}

impl InsertRows {
    /// Number of rows to insert.
    pub fn len(&self) -> usize {
        match self {
            InsertRows::Const(r) => r.len(),
            InsertRows::Dynamic(r) => r.len(),
        }
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A bound statement.
#[derive(Debug, Clone)]
pub enum BoundStatement {
    /// SELECT.
    Select(BoundSelect),
    /// INSERT.
    Insert {
        /// Target table.
        table: TableId,
        /// Row payload (constant or parameterised).
        rows: InsertRows,
    },
    /// UPDATE; `sets` and `filter` are over the table's own layout.
    Update {
        /// Target table.
        table: TableId,
        /// `(column position, new-value expression)`.
        sets: Vec<(usize, PhysExpr)>,
        /// Row filter.
        filter: Option<PhysExpr>,
    },
    /// DELETE; `filter` is over the table's own layout.
    Delete {
        /// Target table.
        table: TableId,
        /// Row filter.
        filter: Option<PhysExpr>,
    },
}

/// Binds statements against a catalog snapshot.
pub struct Binder<'a> {
    catalog: &'a Catalog,
    artifacts: BindArtifacts,
}

impl<'a> Binder<'a> {
    /// A binder over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Binder {
            catalog,
            artifacts: BindArtifacts::default(),
        }
    }

    /// Bind a DML/query statement. DDL statements are handled directly by
    /// the engine and rejected here.
    pub fn bind(mut self, stmt: &Statement) -> Result<(BoundStatement, BindArtifacts)> {
        let bound = match stmt {
            Statement::Select(s) => BoundStatement::Select(self.bind_select(s)?),
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.bind_insert(table, columns.as_deref(), rows)?,
            Statement::Update {
                table,
                sets,
                filter,
            } => self.bind_update(table, sets, filter.as_ref())?,
            Statement::Delete { table, filter } => self.bind_delete(table, filter.as_ref())?,
            other => {
                return Err(Error::binder(format!(
                    "statement is not bindable DML: {other:?}"
                )))
            }
        };
        Ok((bound, self.artifacts))
    }

    fn note_table(&mut self, id: TableId, name: &str) {
        if !self.artifacts.tables.iter().any(|(t, _)| *t == id) {
            self.artifacts.tables.push((id, name.to_owned()));
            // All indexes on a referenced table are "available indexes".
            for idx in self.catalog.indexes_of(id) {
                if !self.artifacts.indexes.contains(&idx.meta.id) {
                    self.artifacts.indexes.push(idx.meta.id);
                }
            }
        }
    }

    fn note_attribute(&mut self, id: TableId, col: usize, name: &str) {
        if !self
            .artifacts
            .attributes
            .iter()
            .any(|(t, c, _)| *t == id && *c == col)
        {
            self.artifacts.attributes.push((id, col, name.to_owned()));
            if let Ok(entry) = self.catalog.table(id) {
                if entry.stats.as_ref().is_some_and(|s| s.has_histogram(col)) {
                    self.artifacts.histograms.push((id, col));
                }
            }
        }
    }

    // ---- SELECT ------------------------------------------------------------

    fn bind_select(&mut self, s: &SelectStmt) -> Result<BoundSelect> {
        // 1. Collect FROM tables (comma list + join chains, flattened).
        let mut tables: Vec<BoundTable> = Vec::new();
        let mut join_preds: Vec<&Expr> = Vec::new();
        for tref in &s.from {
            self.push_table(&mut tables, &tref.name, tref.alias.as_deref())?;
            for j in &tref.joins {
                self.push_table(&mut tables, &j.name, j.alias.as_deref())?;
                join_preds.push(&j.on);
            }
        }
        if tables.is_empty() {
            // SELECT without FROM: a single empty "dual" row.
            return self.bind_tableless_select(s);
        }

        // 2. Conjuncts from JOIN ON and WHERE.
        let mut conjuncts = Vec::new();
        for on in join_preds {
            for c in on.conjuncts() {
                conjuncts.push(self.bind_conjunct(c, &tables)?);
            }
        }
        if let Some(f) = &s.filter {
            for c in f.conjuncts() {
                conjuncts.push(self.bind_conjunct(c, &tables)?);
            }
        }
        // Transitive closure over equalities: `a.x = b.y AND a.x = 5`
        // implies `b.y = 5`, which turns the inner side of a join into a
        // keyed probe (Ingres' optimizer performs the same constant
        // propagation).
        saturate_equalities(&mut conjuncts, &tables);

        // 3. Aggregate detection.
        let has_agg = !s.group_by.is_empty()
            || s.items.iter().any(|it| match it {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                _ => false,
            })
            || s.having.as_ref().is_some_and(contains_aggregate);

        let mut group_by = Vec::new();
        for g in &s.group_by {
            group_by.push(self.bind_expr(g, &tables)?);
        }

        let mut aggregates: Vec<AggSpec> = Vec::new();
        let mut agg_keys: Vec<Expr> = Vec::new(); // AST of each registered agg

        // 4. Projections.
        let mut projections: Vec<(PhysExpr, String)> = Vec::new();
        let mut proj_asts: Vec<Option<Expr>> = Vec::new(); // for ORDER BY matching
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    if has_agg {
                        return Err(Error::binder("SELECT * is invalid with aggregation"));
                    }
                    let mut off = 0;
                    for t in &tables {
                        for (ci, col) in t.schema.columns().iter().enumerate() {
                            projections.push((PhysExpr::Col(off + ci), col.name.clone()));
                            proj_asts.push(None);
                            self.note_attribute(t.table, ci, &col.name);
                        }
                        off += t.schema.len();
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    if has_agg {
                        return Err(Error::binder("SELECT t.* is invalid with aggregation"));
                    }
                    let mut off = 0;
                    let mut found = false;
                    for t in &tables {
                        if t.alias == *q {
                            for (ci, col) in t.schema.columns().iter().enumerate() {
                                projections.push((PhysExpr::Col(off + ci), col.name.clone()));
                                proj_asts.push(None);
                                self.note_attribute(t.table, ci, &col.name);
                            }
                            found = true;
                        }
                        off += t.schema.len();
                    }
                    if !found {
                        return Err(Error::binder(format!("unknown qualifier '{q}'")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let phys = if has_agg {
                        self.bind_agg_expr(
                            expr,
                            &tables,
                            &s.group_by,
                            &group_by,
                            &mut aggregates,
                            &mut agg_keys,
                        )?
                    } else {
                        self.bind_expr(expr, &tables)?
                    };
                    let name = alias.clone().unwrap_or_else(|| display_name(expr));
                    projections.push((phys, name));
                    proj_asts.push(Some(expr.clone()));
                }
            }
        }

        // 5. HAVING (aggregate output layout).
        let having = match &s.having {
            Some(h) if has_agg => Some(self.bind_agg_expr(
                h,
                &tables,
                &s.group_by,
                &group_by,
                &mut aggregates,
                &mut agg_keys,
            )?),
            Some(_) => return Err(Error::binder("HAVING requires aggregation")),
            None => None,
        };

        // 6. ORDER BY: match against aliases / ordinals / projection ASTs;
        //    otherwise bind as a hidden projection column.
        let mut order_by: Vec<(usize, bool)> = Vec::new();
        let mut hidden = 0usize;
        for OrderItem { expr, desc } in &s.order_by {
            let pos = self.resolve_order_target(
                expr,
                &mut projections,
                &proj_asts,
                &tables,
                has_agg,
                &s.group_by,
                &group_by,
                &mut aggregates,
                &mut agg_keys,
                &mut hidden,
            )?;
            order_by.push((pos, *desc));
        }

        Ok(BoundSelect {
            tables,
            conjuncts,
            projections,
            hidden_sort_cols: hidden,
            distinct: s.distinct,
            group_by,
            aggregates,
            having,
            order_by,
            limit: s.limit,
            offset: s.offset,
        })
    }

    fn bind_tableless_select(&mut self, s: &SelectStmt) -> Result<BoundSelect> {
        let mut projections = Vec::new();
        for item in &s.items {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(Error::binder("SELECT * requires a FROM clause"));
            };
            let phys = self.bind_expr(expr, &[])?;
            projections.push((phys, alias.clone().unwrap_or_else(|| display_name(expr))));
        }
        Ok(BoundSelect {
            tables: Vec::new(),
            conjuncts: match &s.filter {
                Some(f) => vec![Conjunct {
                    expr: self.bind_expr(f, &[])?,
                    tables: 0,
                }],
                None => Vec::new(),
            },
            projections,
            hidden_sort_cols: 0,
            distinct: s.distinct,
            group_by: Vec::new(),
            aggregates: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: s.limit,
            offset: s.offset,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_order_target(
        &mut self,
        expr: &Expr,
        projections: &mut Vec<(PhysExpr, String)>,
        proj_asts: &[Option<Expr>],
        tables: &[BoundTable],
        has_agg: bool,
        group_asts: &[Expr],
        group_by: &[PhysExpr],
        aggregates: &mut Vec<AggSpec>,
        agg_keys: &mut Vec<Expr>,
        hidden: &mut usize,
    ) -> Result<usize> {
        // Ordinal: ORDER BY 2.
        if let Expr::Literal(Value::Int(n)) = expr {
            let n = *n;
            if n >= 1 && (n as usize) <= proj_asts.len() {
                return Ok(n as usize - 1);
            }
            return Err(Error::binder(format!("ORDER BY position {n} out of range")));
        }
        // Alias or textual match with a projection.
        if let Expr::Column { table: None, name } = expr {
            if let Some(pos) = projections.iter().position(|(_, a)| a == name) {
                return Ok(pos);
            }
        }
        if let Some(pos) = proj_asts.iter().position(|a| a.as_ref() == Some(expr)) {
            return Ok(pos);
        }
        // Bind as a hidden column.
        let phys = if has_agg {
            self.bind_agg_expr(expr, tables, group_asts, group_by, aggregates, agg_keys)?
        } else {
            self.bind_expr(expr, tables)?
        };
        let pos = projections.len();
        projections.push((phys, format!("$sort{}", *hidden)));
        *hidden += 1;
        Ok(pos)
    }

    fn push_table(
        &mut self,
        tables: &mut Vec<BoundTable>,
        name: &str,
        alias: Option<&str>,
    ) -> Result<()> {
        let alias = alias.unwrap_or(name).to_ascii_lowercase();
        if tables.iter().any(|t| t.alias == alias) {
            return Err(Error::binder(format!("duplicate table alias '{alias}'")));
        }
        match self.catalog.resolve_relation(name)? {
            ingot_catalog::Relation::Base(entry) => {
                self.note_table(entry.meta.id, &entry.meta.name);
                tables.push(BoundTable {
                    table: entry.meta.id,
                    alias,
                    schema: entry.meta.schema.clone(),
                    is_virtual: false,
                });
            }
            ingot_catalog::Relation::Virtual(def) => {
                tables.push(BoundTable {
                    table: def.id,
                    alias,
                    schema: def.schema.clone(),
                    is_virtual: true,
                });
            }
        }
        Ok(())
    }

    fn bind_conjunct(&mut self, e: &Expr, tables: &[BoundTable]) -> Result<Conjunct> {
        let phys = self.bind_expr(e, tables)?;
        let mut cols = Vec::new();
        phys.columns(&mut cols);
        let mut mask = 0u64;
        for c in cols {
            mask |= 1 << table_of_offset(tables, c);
        }
        Ok(Conjunct {
            expr: phys,
            tables: mask,
        })
    }

    /// Resolve a column reference to `(table index, column index, offset)`.
    fn resolve_column(
        &mut self,
        qualifier: Option<&str>,
        name: &str,
        tables: &[BoundTable],
    ) -> Result<usize> {
        let mut hit: Option<usize> = None;
        let mut off = 0usize;
        for t in tables {
            if qualifier.is_none_or(|q| q == t.alias) {
                if let Some(ci) = t.schema.index_of(name) {
                    if hit.is_some() {
                        return Err(Error::binder(format!("ambiguous column '{name}'")));
                    }
                    hit = Some(off + ci);
                    self.note_attribute(t.table, ci, name);
                }
            }
            off += t.schema.len();
        }
        hit.ok_or_else(|| match qualifier {
            Some(q) => Error::binder(format!("unknown column '{q}.{name}'")),
            None => Error::binder(format!("unknown column '{name}'")),
        })
    }

    /// Bind an expression over the base (FROM-order) layout. Aggregates are
    /// rejected here.
    fn bind_expr(&mut self, e: &Expr, tables: &[BoundTable]) -> Result<PhysExpr> {
        Ok(match e {
            Expr::Literal(v) => PhysExpr::Literal(v.clone()),
            Expr::Param(i) => PhysExpr::Param(*i),
            Expr::Column { table, name } => {
                PhysExpr::Col(self.resolve_column(table.as_deref(), name, tables)?)
            }
            Expr::Binary { op, left, right } => PhysExpr::Binary {
                op: *op,
                left: Box::new(self.bind_expr(left, tables)?),
                right: Box::new(self.bind_expr(right, tables)?),
            },
            Expr::Unary { op, expr } => PhysExpr::Unary {
                op: *op,
                expr: Box::new(self.bind_expr(expr, tables)?),
            },
            Expr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(self.bind_expr(expr, tables)?),
                negated: *negated,
            },
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => PhysExpr::Between {
                expr: Box::new(self.bind_expr(expr, tables)?),
                lo: Box::new(self.bind_expr(lo, tables)?),
                hi: Box::new(self.bind_expr(hi, tables)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => PhysExpr::InList {
                expr: Box::new(self.bind_expr(expr, tables)?),
                list: list
                    .iter()
                    .map(|x| self.bind_expr(x, tables))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => PhysExpr::Like {
                expr: Box::new(self.bind_expr(expr, tables)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::CountStar => return Err(Error::binder("aggregate not allowed in this context")),
            Expr::Call { func, args, .. } => {
                if agg_func(func).is_some() {
                    return Err(Error::binder(format!(
                        "aggregate {func}() not allowed in this context"
                    )));
                }
                PhysExpr::Call {
                    func: func.clone(),
                    args: args
                        .iter()
                        .map(|a| self.bind_expr(a, tables))
                        .collect::<Result<_>>()?,
                }
            }
        })
    }

    /// Bind an expression in aggregate context: output layout is
    /// `[group keys ‖ aggregate results]`.
    fn bind_agg_expr(
        &mut self,
        e: &Expr,
        tables: &[BoundTable],
        group_asts: &[Expr],
        group_by: &[PhysExpr],
        aggregates: &mut Vec<AggSpec>,
        agg_keys: &mut Vec<Expr>,
    ) -> Result<PhysExpr> {
        // A group-key expression maps to its key slot.
        if let Some(gidx) = group_asts.iter().position(|g| g == e) {
            return Ok(PhysExpr::Col(gidx));
        }
        match e {
            Expr::CountStar => Ok(PhysExpr::Col(
                group_by.len() + register_agg(e, AggFunc::Count, None, false, aggregates, agg_keys),
            )),
            Expr::Call {
                func,
                args,
                distinct,
            } if agg_func(func).is_some() => {
                let f = agg_func(func).expect("checked");
                if args.len() != 1 {
                    return Err(Error::binder(format!("{func}() takes one argument")));
                }
                let input = self.bind_expr(&args[0], tables)?;
                Ok(PhysExpr::Col(
                    group_by.len()
                        + register_agg(e, f, Some(input), *distinct, aggregates, agg_keys),
                ))
            }
            Expr::Literal(v) => Ok(PhysExpr::Literal(v.clone())),
            Expr::Param(i) => Ok(PhysExpr::Param(*i)),
            Expr::Column { table, name } => {
                // Bare columns must be group keys (checked above by AST
                // equality; also accept qualified/unqualified mismatches by
                // comparing resolved offsets).
                let off = self.resolve_column(table.as_deref(), name, tables)?;
                if let Some(gidx) = group_by.iter().position(|g| g == &PhysExpr::Col(off)) {
                    return Ok(PhysExpr::Col(gidx));
                }
                Err(Error::binder(format!(
                    "column '{name}' must appear in GROUP BY or an aggregate"
                )))
            }
            Expr::Binary { op, left, right } => Ok(PhysExpr::Binary {
                op: *op,
                left: Box::new(
                    self.bind_agg_expr(left, tables, group_asts, group_by, aggregates, agg_keys)?,
                ),
                right: Box::new(
                    self.bind_agg_expr(right, tables, group_asts, group_by, aggregates, agg_keys)?,
                ),
            }),
            Expr::Unary { op, expr } => Ok(PhysExpr::Unary {
                op: *op,
                expr: Box::new(
                    self.bind_agg_expr(expr, tables, group_asts, group_by, aggregates, agg_keys)?,
                ),
            }),
            Expr::Call { func, args, .. } => Ok(PhysExpr::Call {
                func: func.clone(),
                args: args
                    .iter()
                    .map(|a| {
                        self.bind_agg_expr(a, tables, group_asts, group_by, aggregates, agg_keys)
                    })
                    .collect::<Result<_>>()?,
            }),
            other => Err(Error::binder(format!(
                "unsupported expression in aggregate context: {other:?}"
            ))),
        }
    }

    // ---- DML ------------------------------------------------------------------

    fn bind_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<Expr>],
    ) -> Result<BoundStatement> {
        let id = self.catalog.resolve_table(table)?;
        let entry = self.catalog.table(id)?;
        self.note_table(id, &entry.meta.name);
        let schema = entry.meta.schema.clone();
        // Map provided columns to schema positions.
        let positions: Vec<usize> = match columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    let pos = schema
                        .index_of(c)
                        .ok_or_else(|| Error::binder(format!("unknown column '{c}'")))?;
                    self.note_attribute(id, pos, c);
                    Ok(pos)
                })
                .collect::<Result<_>>()?,
            None => (0..schema.len()).collect(),
        };
        // Bind every value expression first; a single parameter marker
        // anywhere switches the whole INSERT to the dynamic (per-execution
        // evaluated) path. Constant inserts keep the eager path so
        // constraint violations surface at bind time.
        let mut bound_rows: Vec<Vec<PhysExpr>> = Vec::with_capacity(rows.len());
        let mut dynamic = false;
        for exprs in rows {
            if exprs.len() != positions.len() {
                return Err(Error::binder(format!(
                    "INSERT provides {} values for {} columns",
                    exprs.len(),
                    positions.len()
                )));
            }
            let mut row = vec![PhysExpr::Literal(Value::Null); schema.len()];
            for (e, &pos) in exprs.iter().zip(&positions) {
                let phys = self.bind_expr(e, &[])?;
                dynamic |= phys.has_params();
                row[pos] = phys;
            }
            bound_rows.push(row);
        }
        let rows = if dynamic {
            InsertRows::Dynamic(bound_rows)
        } else {
            let empty = Row::default();
            let mut out = Vec::with_capacity(bound_rows.len());
            for exprs in &bound_rows {
                let vals: Vec<Value> = exprs
                    .iter()
                    .map(|e| e.eval(&empty))
                    .collect::<Result<_>>()?;
                out.push(schema.check_row(&Row::new(vals))?);
            }
            InsertRows::Const(out)
        };
        Ok(BoundStatement::Insert { table: id, rows })
    }

    fn bind_update(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> Result<BoundStatement> {
        let id = self.catalog.resolve_table(table)?;
        let entry = self.catalog.table(id)?;
        self.note_table(id, &entry.meta.name);
        let bt = [BoundTable {
            table: id,
            alias: entry.meta.name.clone(),
            schema: entry.meta.schema.clone(),
            is_virtual: false,
        }];
        let mut bound_sets = Vec::with_capacity(sets.len());
        for (col, e) in sets {
            let pos = bt[0]
                .schema
                .index_of(col)
                .ok_or_else(|| Error::binder(format!("unknown column '{col}'")))?;
            self.note_attribute(id, pos, col);
            bound_sets.push((pos, self.bind_expr(e, &bt)?));
        }
        let filter = filter.map(|f| self.bind_expr(f, &bt)).transpose()?;
        Ok(BoundStatement::Update {
            table: id,
            sets: bound_sets,
            filter,
        })
    }

    fn bind_delete(&mut self, table: &str, filter: Option<&Expr>) -> Result<BoundStatement> {
        let id = self.catalog.resolve_table(table)?;
        let entry = self.catalog.table(id)?;
        self.note_table(id, &entry.meta.name);
        let bt = [BoundTable {
            table: id,
            alias: entry.meta.name.clone(),
            schema: entry.meta.schema.clone(),
            is_virtual: false,
        }];
        let filter = filter.map(|f| self.bind_expr(f, &bt)).transpose()?;
        Ok(BoundStatement::Delete { table: id, filter })
    }
}

/// Derive single-column equality conjuncts implied by column-equality
/// chains: equivalence classes over `Col = Col` conjuncts propagate every
/// `Col = literal` to all class members.
fn saturate_equalities(conjuncts: &mut Vec<Conjunct>, tables: &[BoundTable]) {
    use ingot_sql::BinOp;
    // Union-find over column offsets.
    let width: usize = tables.iter().map(|t| t.schema.len()).sum();
    let mut parent: Vec<usize> = (0..width).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    // Constants to propagate: literals and parameter markers alike — a
    // prepared `p.id = $1` seeds the same probe opportunities a literal
    // would.
    let mut constants: Vec<(usize, PhysExpr)> = Vec::new();
    for c in conjuncts.iter() {
        if let PhysExpr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = &c.expr
        {
            match (&**left, &**right) {
                (PhysExpr::Col(a), PhysExpr::Col(b)) => {
                    let (ra, rb) = (find(&mut parent, *a), find(&mut parent, *b));
                    parent[ra] = rb;
                }
                (PhysExpr::Col(a), e @ (PhysExpr::Literal(_) | PhysExpr::Param(_)))
                | (e @ (PhysExpr::Literal(_) | PhysExpr::Param(_)), PhysExpr::Col(a)) => {
                    constants.push((*a, e.clone()));
                }
                _ => {}
            }
        }
    }
    if constants.is_empty() {
        return;
    }
    let existing: std::collections::HashSet<(usize, String)> = constants
        .iter()
        .map(|(c, v)| (*c, format!("{v:?}")))
        .collect();
    let mut derived = Vec::new();
    for (col, v) in &constants {
        let root = find(&mut parent, *col);
        for other in 0..width {
            if other == *col || find(&mut parent, other) != root {
                continue;
            }
            if existing.contains(&(other, format!("{v:?}"))) {
                continue;
            }
            derived.push(Conjunct {
                expr: PhysExpr::Binary {
                    op: BinOp::Eq,
                    left: Box::new(PhysExpr::Col(other)),
                    right: Box::new(v.clone()),
                },
                tables: 1 << table_of_offset(tables, other),
            });
        }
    }
    conjuncts.extend(derived);
}

/// The table index that owns global offset `off`.
fn table_of_offset(tables: &[BoundTable], off: usize) -> usize {
    let mut acc = 0;
    for (i, t) in tables.iter().enumerate() {
        acc += t.schema.len();
        if off < acc {
            return i;
        }
    }
    tables.len().saturating_sub(1)
}

/// The offset at which table `idx` starts in the global layout.
pub fn table_offset(tables: &[BoundTable], idx: usize) -> usize {
    tables[..idx].iter().map(|t| t.schema.len()).sum()
}

fn register_agg(
    ast: &Expr,
    func: AggFunc,
    input: Option<PhysExpr>,
    distinct: bool,
    aggregates: &mut Vec<AggSpec>,
    agg_keys: &mut Vec<Expr>,
) -> usize {
    if let Some(pos) = agg_keys.iter().position(|k| k == ast) {
        return pos;
    }
    aggregates.push(AggSpec {
        func,
        input,
        distinct,
    });
    agg_keys.push(ast.clone());
    aggregates.len() - 1
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name {
        "count" => Some(AggFunc::Count),
        "sum" => Some(AggFunc::Sum),
        "avg" => Some(AggFunc::Avg),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        _ => None,
    }
}

fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::CountStar => true,
        Expr::Call { func, args, .. } => {
            agg_func(func).is_some() || args.iter().any(contains_aggregate)
        }
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Unary { expr, .. } => contains_aggregate(expr),
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::Between { expr, lo, hi, .. } => {
            contains_aggregate(expr) || contains_aggregate(lo) || contains_aggregate(hi)
        }
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Like { expr, .. } => contains_aggregate(expr),
        _ => false,
    }
}

fn display_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::CountStar => "count".to_owned(),
        Expr::Call { func, .. } => func.clone(),
        _ => "expr".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::{Column, DataType, EngineConfig, SimClock};
    use ingot_sql::parse_statement;
    use ingot_storage::StorageEngine;
    use std::sync::Arc;

    fn test_catalog() -> Catalog {
        let cfg = EngineConfig::default();
        let storage = StorageEngine::in_memory(&cfg, SimClock::new());
        let mut c = Catalog::new(Arc::clone(storage.pool()), 4);
        let protein = c
            .create_table(
                "protein",
                Schema::new(vec![
                    Column::not_null("nref_id", DataType::Str),
                    Column::new("name", DataType::Str),
                    Column::new("len", DataType::Int),
                ]),
                vec![0],
            )
            .unwrap();
        c.create_table(
            "organism",
            Schema::new(vec![
                Column::not_null("nref_id", DataType::Str),
                Column::new("taxon_id", DataType::Int),
            ]),
            vec![0],
        )
        .unwrap();
        c.create_index("protein_len", protein, vec![2], false)
            .unwrap();
        c
    }

    fn bind(c: &Catalog, sql: &str) -> (BoundStatement, BindArtifacts) {
        Binder::new(c).bind(&parse_statement(sql).unwrap()).unwrap()
    }

    #[test]
    fn simple_select_binds_offsets() {
        let c = test_catalog();
        let (b, art) = bind(&c, "select len from protein where nref_id = 'NF1'");
        let BoundStatement::Select(s) = b else {
            panic!()
        };
        assert_eq!(s.projections[0].0, PhysExpr::Col(2));
        assert_eq!(s.conjuncts.len(), 1);
        assert_eq!(s.conjuncts[0].tables, 1);
        assert_eq!(art.tables.len(), 1);
        assert_eq!(art.indexes.len(), 1);
        // nref_id and len both referenced.
        assert_eq!(art.attributes.len(), 2);
    }

    #[test]
    fn join_offsets_cross_tables() {
        let c = test_catalog();
        let (b, art) = bind(
            &c,
            "select p.len, o.taxon_id from protein p join organism o on p.nref_id = o.nref_id",
        );
        let BoundStatement::Select(s) = b else {
            panic!()
        };
        assert_eq!(s.tables.len(), 2);
        // organism.taxon_id is global offset 3 + 1 = 4.
        assert_eq!(s.projections[1].0, PhysExpr::Col(4));
        // The ON conjunct references both tables: mask 0b11.
        assert_eq!(s.conjuncts[0].tables, 0b11);
        assert_eq!(art.tables.len(), 2);
    }

    #[test]
    fn ambiguous_and_unknown_columns() {
        let c = test_catalog();
        let err = Binder::new(&c)
            .bind(
                &parse_statement(
                    "select nref_id from protein p join organism o on p.nref_id = o.nref_id",
                )
                .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Binder(m) if m.contains("ambiguous")));
        let err = Binder::new(&c)
            .bind(&parse_statement("select ghost from protein").unwrap())
            .unwrap_err();
        assert!(matches!(err, Error::Binder(_)));
    }

    #[test]
    fn aggregate_rewriting() {
        let c = test_catalog();
        let (b, _) = bind(
            &c,
            "select taxon_id, count(*) as n, avg(taxon_id) from organism \
             group by taxon_id having count(*) > 2 order by n desc",
        );
        let BoundStatement::Select(s) = b else {
            panic!()
        };
        assert!(s.is_aggregate());
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.aggregates.len(), 2); // count(*) deduplicated with having
                                           // Projections over [key, count, avg] layout.
        assert_eq!(s.projections[0].0, PhysExpr::Col(0));
        assert_eq!(s.projections[1].0, PhysExpr::Col(1));
        assert_eq!(s.projections[2].0, PhysExpr::Col(2));
        assert!(s.having.is_some());
        assert_eq!(s.order_by, vec![(1, true)]);
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        let c = test_catalog();
        let err = Binder::new(&c)
            .bind(
                &parse_statement("select nref_id, count(*) from organism group by taxon_id")
                    .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Binder(m) if m.contains("GROUP BY")));
    }

    #[test]
    fn order_by_hidden_column() {
        let c = test_catalog();
        let (b, _) = bind(&c, "select name from protein order by len desc");
        let BoundStatement::Select(s) = b else {
            panic!()
        };
        assert_eq!(s.hidden_sort_cols, 1);
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.order_by, vec![(1, true)]);
    }

    #[test]
    fn order_by_ordinal() {
        let c = test_catalog();
        let (b, _) = bind(&c, "select name, len from protein order by 2");
        let BoundStatement::Select(s) = b else {
            panic!()
        };
        assert_eq!(s.order_by, vec![(1, false)]);
        assert!(Binder::new(&c)
            .bind(&parse_statement("select name from protein order by 5").unwrap())
            .is_err());
    }

    #[test]
    fn insert_binding_coerces_and_checks() {
        let c = test_catalog();
        let (b, _) = bind(&c, "insert into protein (nref_id, len) values ('NF1', 10)");
        let BoundStatement::Insert {
            rows: InsertRows::Const(rows),
            ..
        } = b
        else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Str("NF1".into()));
        assert_eq!(rows[0].get(1), &Value::Null); // name defaulted
        assert_eq!(rows[0].get(2), &Value::Int(10));
        // NOT NULL violation.
        let err = Binder::new(&c)
            .bind(&parse_statement("insert into protein (name) values ('x')").unwrap())
            .unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
    }

    #[test]
    fn parameterised_insert_defers_evaluation() {
        let c = test_catalog();
        let (b, _) = bind(&c, "insert into protein (nref_id, len) values ($1, $2)");
        let BoundStatement::Insert {
            rows: InsertRows::Dynamic(rows),
            ..
        } = b
        else {
            panic!("expected dynamic rows")
        };
        // Schema-width expression row: [param, null-default, param].
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), 3);
        assert_eq!(rows[0][0], PhysExpr::Param(0));
        assert_eq!(rows[0][1], PhysExpr::Literal(Value::Null));
        assert_eq!(rows[0][2], PhysExpr::Param(1));
        // No constraint error at bind time even though $1 targets a NOT
        // NULL column — checking happens at execution with real values.
    }

    #[test]
    fn parameter_markers_bind_and_saturate() {
        let c = test_catalog();
        let (b, _) = bind(&c, "select len from protein where nref_id = $1");
        let BoundStatement::Select(s) = b else {
            panic!()
        };
        assert_eq!(
            s.conjuncts[0].expr,
            PhysExpr::Binary {
                op: ingot_sql::BinOp::Eq,
                left: Box::new(PhysExpr::Col(0)),
                right: Box::new(PhysExpr::Param(0)),
            }
        );
        // Param equality propagates across join equivalences like a literal.
        let (b, _) = bind(
            &c,
            "select p.len from protein p join organism o on p.nref_id = o.nref_id \
             where p.nref_id = $1",
        );
        let BoundStatement::Select(s) = b else {
            panic!()
        };
        let derived = s.conjuncts.iter().any(|cj| {
            cj.expr
                == PhysExpr::Binary {
                    op: ingot_sql::BinOp::Eq,
                    left: Box::new(PhysExpr::Col(3)),
                    right: Box::new(PhysExpr::Param(0)),
                }
        });
        assert!(derived, "expected o.nref_id = $1 to be derived");
    }

    #[test]
    fn update_delete_binding() {
        let c = test_catalog();
        let (b, _) = bind(&c, "update protein set len = len + 1 where nref_id = 'NF1'");
        let BoundStatement::Update { sets, filter, .. } = b else {
            panic!()
        };
        assert_eq!(sets[0].0, 2);
        assert!(filter.is_some());
        let (b, _) = bind(&c, "delete from protein");
        let BoundStatement::Delete { filter, .. } = b else {
            panic!()
        };
        assert!(filter.is_none());
    }

    #[test]
    fn tableless_select() {
        let c = test_catalog();
        let (b, _) = bind(&c, "select 1 + 2 as three");
        let BoundStatement::Select(s) = b else {
            panic!()
        };
        assert!(s.tables.is_empty());
        assert_eq!(s.projections[0].1, "three");
    }

    #[test]
    fn histogram_artifact_tracking() {
        let mut c = test_catalog();
        let t = c.resolve_table("protein").unwrap();
        // Insert a row so statistics have data, then collect.
        c.insert_row(
            t,
            &Row::new(vec![Value::Str("NF1".into()), Value::Null, Value::Int(5)]),
        )
        .unwrap();
        c.collect_statistics(t, &[2], 0).unwrap();
        let (_, art) = bind(&c, "select len from protein where len > 3");
        assert!(art.histograms.contains(&(t, 2)));
    }
}
