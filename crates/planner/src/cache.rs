//! The shared plan cache.
//!
//! Optimized plans are memoized under their normalized SQL template and the
//! catalog *schema epoch* they were planned against. Every DDL publish (and
//! `CREATE STATISTICS`, which changes what the optimizer would choose) bumps
//! the epoch, so a probe that finds an entry from an older epoch drops it
//! and reports a miss — a stale plan is never returned. Parameter markers
//! stay embedded in the cached template as [`crate::expr::PhysExpr::Param`]
//! nodes; execution substitutes bound values into a clone, leaving the
//! template reusable.
//!
//! The cache is engine-wide and shared by all sessions: one `Mutex` guards
//! the map (probes copy an `Arc` out and release it immediately), and the
//! hit/miss/eviction/invalidation counters are lock-free atomics so the
//! monitoring layer can read them without touching the map.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ingot_common::TableId;
use parking_lot::Mutex;

use crate::binder::BindArtifacts;
use crate::optimizer::PlannedStatement;

/// Everything a cache hit needs to execute without re-binding: the plan
/// template, the bind-time sensor artifacts, and the lock footprint.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The optimized template (may contain `Param` markers).
    pub planned: PlannedStatement,
    /// Bind artifacts captured when the template was planned (what the
    /// parse-stage monitor sensors log).
    pub artifacts: BindArtifacts,
    /// Tables to lock before execution: `(table, exclusive)`.
    pub lock_spec: Vec<(TableId, bool)>,
    /// Schema epoch the plan was optimized under.
    pub epoch: u64,
    /// Number of parameter slots the template declares.
    pub param_count: usize,
}

/// Counter snapshot for `ima$plan_cache` and the Prometheus exporter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Probes that returned a same-epoch entry.
    pub hits: u64,
    /// Probes that found nothing usable (includes epoch mismatches).
    pub misses: u64,
    /// Entries dropped to make room (LRU).
    pub evictions: u64,
    /// Entries dropped as stale: epoch mismatch on probe or explicit
    /// invalidation (DDL, `CREATE STATISTICS`, virtual-index changes).
    pub invalidations: u64,
    /// Live entries.
    pub entries: u64,
    /// Configured capacity (0 = caching disabled).
    pub capacity: u64,
}

struct Slot {
    plan: Arc<CachedPlan>,
    /// Recency stamp; smallest = least recently used.
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<String, Slot>,
    next_stamp: u64,
}

/// An LRU cache of optimized plan templates keyed by
/// `(normalized SQL, schema epoch)`.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` templates. Zero disables caching:
    /// probes always miss and inserts are dropped.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `template` (already normalized) for the given schema epoch.
    /// An entry from an older epoch is dropped on the spot — counted as an
    /// invalidation *and* a miss — so callers can treat `Some` as "safe to
    /// execute against a snapshot of this epoch".
    pub fn probe(&self, template: &str, epoch: u64) -> Option<Arc<CachedPlan>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        match inner.map.get(template) {
            Some(slot) if slot.plan.epoch == epoch => {
                inner.next_stamp += 1;
                let stamp = inner.next_stamp;
                let slot = inner.map.get_mut(template).expect("entry just seen");
                slot.stamp = stamp;
                let plan = Arc::clone(&slot.plan);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            Some(_) => {
                inner.map.remove(template);
                drop(inner);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly optimized template, evicting the least recently used
    /// entry when full. No-op when caching is disabled.
    pub fn insert(&self, template: String, plan: CachedPlan) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.next_stamp += 1;
        let stamp = inner.next_stamp;
        inner.map.insert(
            template,
            Slot {
                plan: Arc::new(plan),
                stamp,
            },
        );
        let mut evicted = 0u64;
        while inner.map.len() > self.capacity {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(k, _)| k.clone())
                .expect("map is non-empty");
            inner.map.remove(&lru);
            evicted += 1;
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drop every entry (DDL publish, `CREATE STATISTICS`, virtual-index
    /// registration). Each dropped entry counts as an invalidation.
    pub fn invalidate_all(&self) {
        let mut inner = self.inner.lock();
        let dropped = inner.map.len() as u64;
        inner.map.clear();
        drop(inner);
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

/// Normalize a statement's text into its cache key: surrounding whitespace
/// trimmed and interior whitespace runs collapsed to one space, except
/// inside string literals. `SELECT  x` and `select x` stay distinct keys —
/// keyword case rarely varies within one application, and conflating
/// templates only costs a duplicate cache entry, never a wrong plan.
pub fn normalize_template(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_str = false;
    let mut pending_space = false;
    for ch in sql.trim().chars() {
        if in_str {
            out.push(ch);
            if ch == '\'' {
                in_str = false;
            }
            continue;
        }
        if ch.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        if ch == '\'' {
            in_str = true;
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::Cost;

    fn plan(epoch: u64) -> CachedPlan {
        CachedPlan {
            planned: PlannedStatement::Delete {
                table: TableId(1),
                filter: None,
                est: Cost::ZERO,
            },
            artifacts: BindArtifacts::default(),
            lock_spec: vec![(TableId(1), true)],
            epoch,
            param_count: 0,
        }
    }

    #[test]
    fn hit_after_insert_and_miss_after_epoch_bump() {
        let cache = PlanCache::new(4);
        assert!(cache.probe("delete from t", 1).is_none());
        cache.insert("delete from t".into(), plan(1));
        let hit = cache.probe("delete from t", 1).expect("hit");
        assert_eq!(hit.epoch, 1);
        // Epoch moved on: entry is dropped, probe misses, and the drop is
        // counted as an invalidation.
        assert!(cache.probe("delete from t", 2).is_none());
        assert!(cache.probe("delete from t", 2).is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), plan(1));
        cache.insert("b".into(), plan(1));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.probe("a", 1).is_some());
        cache.insert("c".into(), plan(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.probe("a", 1).is_some());
        assert!(cache.probe("b", 1).is_none());
        assert!(cache.probe("c", 1).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidate_all_counts_dropped_entries() {
        let cache = PlanCache::new(8);
        cache.insert("a".into(), plan(1));
        cache.insert("b".into(), plan(1));
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 2);
        // Idempotent: nothing more to count.
        cache.invalidate_all();
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert("a".into(), plan(1));
        assert!(cache.probe("a", 1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().capacity, 0);
    }

    #[test]
    fn normalization_collapses_whitespace_outside_strings() {
        assert_eq!(
            normalize_template("  select   x\n from\tt  where s = 'a  b' "),
            "select x from t where s = 'a  b'"
        );
        assert_eq!(
            normalize_template("select 1"),
            normalize_template("select \n 1")
        );
        // Case is preserved: distinct keys, never a wrong plan.
        assert_ne!(
            normalize_template("SELECT 1"),
            normalize_template("select 1")
        );
    }
}
