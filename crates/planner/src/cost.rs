//! The cost model.
//!
//! Deliberately Ingres-shaped: costs decompose into CPU (tuples processed)
//! and disk I/O (page reads), and all estimation honesty depends on the
//! catalog's statistics. *Without* histograms the model falls back to magic
//! selectivity constants and a pages-based cardinality guess — producing the
//! systematic mis-estimates the paper's analyzer detects by comparing
//! estimated to actual costs (Fig 6), and fixes by recommending
//! `CREATE STATISTICS`.

use ingot_catalog::TableEntry;
use ingot_common::{Cost, Value};
use ingot_sql::BinOp;

use crate::expr::PhysExpr;

/// Rows-per-page guess used when a table has no collected statistics (the
/// catalog always knows page counts; it does not know live row counts until
/// `CREATE STATISTICS`).
pub const DEFAULT_ROWS_PER_PAGE: f64 = 40.0;
/// Default selectivity of an equality predicate without a histogram.
pub const DEFAULT_EQ_SEL: f64 = 0.01;
/// Default selectivity of a range predicate without a histogram.
pub const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
/// Default selectivity of a BETWEEN without a histogram.
pub const DEFAULT_BETWEEN_SEL: f64 = 0.25;
/// Default selectivity of a LIKE.
pub const DEFAULT_LIKE_SEL: f64 = 0.1;
/// Default selectivity of anything unrecognised.
pub const DEFAULT_MISC_SEL: f64 = 0.5;
/// Index entries per B-Tree leaf page (estimate for probe costing).
pub const INDEX_ENTRIES_PER_LEAF: f64 = 250.0;
/// How much one *random* page access costs relative to one sequential page
/// in optimizer I/O units. Keeps the plan choices consistent with the disk
/// model's random/sequential pricing.
pub const RANDOM_IO_WEIGHT: f64 = 4.0;

/// Estimated cardinality of a table: collected statistics when present,
/// otherwise a pages-based guess.
pub fn table_cardinality(entry: &TableEntry) -> f64 {
    match &entry.stats {
        Some(s) => (s.row_count as f64).max(1.0),
        None => {
            let pages = entry.heap.stats().total_pages() as f64;
            (pages * DEFAULT_ROWS_PER_PAGE).max(1.0)
        }
    }
}

/// Estimated distinct count of a column. Uses the histogram when present;
/// single-column primary keys are known unique from the catalog alone.
pub fn column_ndv(entry: &TableEntry, col: usize) -> f64 {
    if let Some(stats) = &entry.stats {
        if let Some(h) = stats.histogram(col) {
            return (h.distinct_count() as f64).max(1.0);
        }
    }
    if entry.meta.primary_key.len() == 1 && entry.meta.primary_key[0] == col {
        return table_cardinality(entry);
    }
    // Unknown: assume moderately selective.
    (table_cardinality(entry) / 10.0).clamp(1.0, 100.0)
}

/// Selectivity of one conjunct over a single table. `expr` uses the table's
/// local column offsets.
pub fn conjunct_selectivity(entry: &TableEntry, expr: &PhysExpr) -> f64 {
    match expr {
        PhysExpr::Binary { op, left, right } if op.is_comparison() => {
            // Normalise to (column, op, literal). A parameter marker has no
            // value at plan time, but the *shape* of the predicate is known:
            // an equality against an unknown value matches rows/ndv rows on
            // average, so prepared templates keep selective access paths.
            let (col, op, lit) = match (&**left, &**right) {
                (PhysExpr::Col(c), PhysExpr::Literal(v)) => (*c, *op, v),
                (PhysExpr::Literal(v), PhysExpr::Col(c)) => (*c, flip(*op), v),
                (PhysExpr::Col(c), PhysExpr::Param(_)) => {
                    return param_comparison_selectivity(entry, *c, *op)
                }
                (PhysExpr::Param(_), PhysExpr::Col(c)) => {
                    return param_comparison_selectivity(entry, *c, flip(*op))
                }
                _ => return DEFAULT_MISC_SEL,
            };
            let hist = entry.stats.as_ref().and_then(|s| s.histogram(col));
            match (op, hist) {
                (BinOp::Eq, Some(h)) => h.selectivity_eq(lit),
                (BinOp::Eq, None) => DEFAULT_EQ_SEL,
                (BinOp::Neq, Some(h)) => (1.0 - h.selectivity_eq(lit)).max(0.0),
                (BinOp::Neq, None) => 1.0 - DEFAULT_EQ_SEL,
                (BinOp::Lt, Some(h)) => h.selectivity_lt(lit),
                (BinOp::Le, Some(h)) => h.selectivity_le(lit),
                (BinOp::Gt, Some(h)) => (1.0 - h.selectivity_le(lit)).max(0.0),
                (BinOp::Ge, Some(h)) => (1.0 - h.selectivity_lt(lit)).max(0.0),
                (_, None) => DEFAULT_RANGE_SEL,
                _ => DEFAULT_MISC_SEL,
            }
        }
        PhysExpr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let sel = match (&**expr, lo.as_literal(), hi.as_literal()) {
                (PhysExpr::Col(c), Some(lo), Some(hi)) => {
                    match entry.stats.as_ref().and_then(|s| s.histogram(*c)) {
                        Some(h) => h.selectivity_between(lo, hi),
                        None => DEFAULT_BETWEEN_SEL,
                    }
                }
                _ => DEFAULT_BETWEEN_SEL,
            };
            if *negated {
                (1.0 - sel).max(0.0)
            } else {
                sel
            }
        }
        PhysExpr::InList {
            expr,
            list,
            negated,
        } => {
            let sel = match &**expr {
                PhysExpr::Col(c) => {
                    let hist = entry.stats.as_ref().and_then(|s| s.histogram(*c));
                    list.iter()
                        .map(|item| match (item.as_literal(), hist) {
                            (Some(v), Some(h)) => h.selectivity_eq(v),
                            _ => DEFAULT_EQ_SEL,
                        })
                        .sum::<f64>()
                }
                _ => DEFAULT_EQ_SEL * list.len() as f64,
            }
            .min(1.0);
            if *negated {
                (1.0 - sel).max(0.0)
            } else {
                sel
            }
        }
        PhysExpr::Like { negated, .. } => {
            if *negated {
                1.0 - DEFAULT_LIKE_SEL
            } else {
                DEFAULT_LIKE_SEL
            }
        }
        PhysExpr::IsNull { expr, negated } => {
            let sel = match &**expr {
                PhysExpr::Col(c) => match entry.stats.as_ref().and_then(|s| s.histogram(*c)) {
                    Some(h) => {
                        let total = (h.row_count() + h.null_count()).max(1) as f64;
                        h.null_count() as f64 / total
                    }
                    None => 0.05,
                },
                _ => 0.05,
            };
            if *negated {
                (1.0 - sel).max(0.0)
            } else {
                sel
            }
        }
        PhysExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => conjunct_selectivity(entry, left) * conjunct_selectivity(entry, right),
        PhysExpr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => {
            let a = conjunct_selectivity(entry, left);
            let b = conjunct_selectivity(entry, right);
            (a + b - a * b).min(1.0)
        }
        PhysExpr::Literal(Value::Bool(true)) => 1.0,
        PhysExpr::Literal(Value::Bool(false)) => 0.0,
        _ => DEFAULT_MISC_SEL,
    }
}

/// Selectivity of `col <op> $n`: the bound value is unknown at plan time,
/// so equality averages over the column's distinct values (a unique column
/// yields one row for *any* binding) and range shapes take the same default
/// an unhistogrammed literal would.
fn param_comparison_selectivity(entry: &TableEntry, col: usize, op: BinOp) -> f64 {
    let eq = (1.0 / column_ndv(entry, col)).clamp(0.0, 1.0);
    match op {
        BinOp::Eq => eq,
        BinOp::Neq => (1.0 - eq).max(0.0),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => DEFAULT_RANGE_SEL,
        _ => DEFAULT_MISC_SEL,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Cost of a full sequential scan.
pub fn seq_scan_cost(entry: &TableEntry) -> Cost {
    let pages = entry.heap.stats().total_pages() as f64;
    Cost::new(table_cardinality(entry), pages)
}

/// Cost of probing an index expected to match `matching` rows out of a table
/// with `pages` heap pages: tree descent + leaf pages + one random heap
/// fetch per match (capped at a full scan's page count — beyond that the
/// optimizer should have chosen the scan anyway).
pub fn index_probe_cost(entry: &TableEntry, matching: f64) -> Cost {
    let card = table_cardinality(entry);
    let height = (card.max(2.0).log(INDEX_ENTRIES_PER_LEAF)).ceil().max(1.0);
    let leaf_pages = (matching / INDEX_ENTRIES_PER_LEAF).ceil();
    let heap_pages = entry.heap.stats().total_pages() as f64;
    let fetches = matching.min(heap_pages * 2.0);
    Cost::new(matching, height + leaf_pages + RANDOM_IO_WEIGHT * fetches)
}

/// Cost of a clustered primary-key lookup.
pub fn pk_lookup_cost(entry: &TableEntry) -> Cost {
    let card = table_cardinality(entry);
    let height = (card.max(2.0).log(INDEX_ENTRIES_PER_LEAF)).ceil().max(1.0);
    Cost::new(1.0, height + 1.0)
}

/// Join-output cardinality for an equi-join between `(left_entry, left_col)`
/// and `(right_entry, right_col)`.
pub fn equi_join_cardinality(
    left_rows: f64,
    right_rows: f64,
    left_ndv: f64,
    right_ndv: f64,
) -> f64 {
    (left_rows * right_rows / left_ndv.max(right_ndv).max(1.0)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_catalog::Catalog;
    use ingot_common::{Column, DataType, EngineConfig, Row, Schema, SimClock};
    use ingot_storage::StorageEngine;
    use std::sync::Arc;

    fn setup(with_stats: bool) -> Catalog {
        let cfg = EngineConfig::default();
        let storage = StorageEngine::in_memory(&cfg, SimClock::new());
        let mut c = Catalog::new(Arc::clone(storage.pool()), 4);
        let t = c
            .create_table(
                "t",
                Schema::new(vec![
                    Column::not_null("id", DataType::Int),
                    Column::new("grp", DataType::Int),
                ]),
                vec![0],
            )
            .unwrap();
        for i in 0..6000 {
            c.insert_row(t, &Row::new(vec![Value::Int(i), Value::Int(i % 10)]))
                .unwrap();
        }
        if with_stats {
            c.collect_statistics(t, &[], 0).unwrap();
        }
        c
    }

    fn eq_pred(col: usize, v: i64) -> PhysExpr {
        PhysExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PhysExpr::Col(col)),
            right: Box::new(PhysExpr::Literal(Value::Int(v))),
        }
    }

    #[test]
    fn stats_sharpen_cardinality() {
        let no_stats = setup(false);
        let with_stats = setup(true);
        let t = no_stats.resolve_table("t").unwrap();
        let guess = table_cardinality(no_stats.table(t).unwrap());
        let known = table_cardinality(with_stats.table(t).unwrap());
        assert_eq!(known, 6000.0);
        // The guess is pages-based and generally off.
        assert_ne!(guess, known);
    }

    #[test]
    fn histogram_beats_default_selectivity() {
        let with_stats = setup(true);
        let t = with_stats.resolve_table("t").unwrap();
        let e = with_stats.table(t).unwrap();
        // grp = 5 matches 10 % of rows.
        let sel = conjunct_selectivity(e, &eq_pred(1, 5));
        assert!((sel - 0.1).abs() < 0.03, "sel {sel}");
        let _ = sel;
        // Without stats: the magic constant.
        let no_stats = setup(false);
        let e = no_stats
            .table(no_stats.resolve_table("t").unwrap())
            .unwrap();
        assert_eq!(conjunct_selectivity(e, &eq_pred(1, 5)), DEFAULT_EQ_SEL);
    }

    #[test]
    fn pk_ndv_known_without_stats() {
        let c = setup(false);
        let e = c.table(c.resolve_table("t").unwrap()).unwrap();
        assert_eq!(column_ndv(e, 0), table_cardinality(e));
        assert!(column_ndv(e, 1) <= 100.0);
    }

    #[test]
    fn index_probe_beats_scan_for_selective_predicates() {
        let c = setup(true);
        let e = c.table(c.resolve_table("t").unwrap()).unwrap();
        let scan = seq_scan_cost(e);
        let probe = index_probe_cost(e, 1.0);
        assert!(probe.cheaper_than(&scan));
        // An unselective probe should not beat the scan.
        let wide = index_probe_cost(e, 6000.0);
        assert!(scan.cheaper_than(&wide));
    }

    #[test]
    fn join_cardinality_fk_shape() {
        // FK join: |L| rows each matching one of |R| keys.
        let out = equi_join_cardinality(10_000.0, 100.0, 10_000.0, 100.0);
        assert_eq!(out, 100.0 * 10_000.0 / 10_000.0);
    }

    #[test]
    fn param_predicates_get_shape_based_selectivity() {
        let c = setup(true);
        let e = c.table(c.resolve_table("t").unwrap()).unwrap();
        let cmp = |op| PhysExpr::Binary {
            op,
            left: Box::new(PhysExpr::Col(1)),
            right: Box::new(PhysExpr::Param(0)),
        };
        // An equality against a parameter averages over the column's
        // distinct values (grp has 10), not the 0.5 "unknown" catch-all.
        assert_eq!(conjunct_selectivity(e, &cmp(BinOp::Eq)), 0.1);
        assert_eq!(conjunct_selectivity(e, &cmp(BinOp::Lt)), DEFAULT_RANGE_SEL);
        assert_eq!(conjunct_selectivity(e, &cmp(BinOp::Neq)), 0.9);
        // A unique column yields one row for any binding.
        let pk = PhysExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(PhysExpr::Param(0)),
        };
        assert_eq!(conjunct_selectivity(e, &pk), 1.0 / 6000.0);
        // Param on the left normalises the same way.
        let flipped = PhysExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PhysExpr::Param(0)),
            right: Box::new(PhysExpr::Col(1)),
        };
        assert_eq!(conjunct_selectivity(e, &flipped), 0.1);
    }

    #[test]
    fn or_and_combinators() {
        let c = setup(true);
        let e = c.table(c.resolve_table("t").unwrap()).unwrap();
        let a = eq_pred(1, 5);
        let b = eq_pred(1, 6);
        let or = PhysExpr::Binary {
            op: BinOp::Or,
            left: Box::new(a.clone()),
            right: Box::new(b.clone()),
        };
        let and = PhysExpr::Binary {
            op: BinOp::And,
            left: Box::new(a.clone()),
            right: Box::new(b),
        };
        let sa = conjunct_selectivity(e, &a);
        assert!(conjunct_selectivity(e, &or) > sa);
        assert!(conjunct_selectivity(e, &and) < sa);
    }
}
