#![forbid(unsafe_code)]
//! Query planning: name resolution (binder), cost estimation and plan
//! selection.
//!
//! Two properties of the paper shape this crate:
//!
//! * **Requirement ii)** — "for all cost based decisions the internal cost
//!   model of the DBMS should be used": the analyzer never invents its own
//!   cost formulas; it calls [`optimize`] in *what-if* mode, in which
//!   hypothetical ("virtual") indexes registered in the catalog participate
//!   in access-path selection exactly like real ones (after AutoAdmin \[14\]).
//! * **The parse/optimize sensors of Fig 2** — binding returns
//!   [`BindArtifacts`] (referenced tables, attributes, available indexes) and
//!   optimization returns estimated CPU/IO costs plus the set of indexes the
//!   chosen plan uses, so the monitor can log them "right at the source".

pub mod binder;
pub mod cache;
pub mod cost;
pub mod expr;
pub mod optimizer;
pub mod physical;

pub use binder::{BindArtifacts, Binder, BoundSelect, BoundStatement, BoundTable, InsertRows};
pub use cache::{normalize_template, CachedPlan, PlanCache, PlanCacheStats};
pub use expr::{AggFunc, AggSpec, PhysExpr};
pub use optimizer::{optimize, optimize_select, OptimizerOptions, PlannedStatement};
pub use physical::{PhysPlan, PlanNode, ProbeSource, ProbeSpec};
