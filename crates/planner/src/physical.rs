//! Physical plans.

use std::fmt;

use ingot_common::{Cost, IndexId, Result, TableId, Value};

use crate::expr::{AggSpec, PhysExpr};

/// How an index scan locates its entries.
///
/// Probe keys are row-free expressions — literals in ad-hoc plans, possibly
/// [`PhysExpr::Param`] markers in cached plan templates. The executor
/// evaluates them against an empty row after parameter substitution, so a
/// prepared point query keeps its index/PK access path across executions.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeSpec {
    /// Equality on a prefix of the index columns.
    Eq(Vec<PhysExpr>),
    /// Range on the first index column (inclusive bounds).
    Range {
        /// Lower bound.
        lo: Option<PhysExpr>,
        /// Upper bound.
        hi: Option<PhysExpr>,
    },
}

/// How a [`PhysPlan::ProbeJoin`] reaches the inner table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeSource {
    /// Clustered primary tree, key prefix = the join column.
    PrimaryTree,
    /// A secondary index whose leading column is the join column.
    Index(IndexId, String),
}

/// A plan operator with its children.
#[derive(Debug, Clone)]
pub enum PhysPlan {
    /// One empty row (`SELECT` without `FROM`).
    DualScan,
    /// Provider-backed (IMA) virtual-table scan: rows come from memory.
    VirtualScan {
        /// The virtual table.
        table: TableId,
        /// For display.
        table_name: String,
        /// Row width.
        width: usize,
        /// Pushed-down predicate.
        filter: Option<PhysExpr>,
    },
    /// Full table scan (sequential I/O over main + overflow pages).
    SeqScan {
        /// Scanned table.
        table: TableId,
        /// For display.
        table_name: String,
        /// Width of the emitted rows.
        width: usize,
        /// Pushed-down predicate over the table's own layout.
        filter: Option<PhysExpr>,
    },
    /// Secondary-index probe followed by heap fetches.
    IndexScan {
        /// Base table.
        table: TableId,
        /// For display.
        table_name: String,
        /// The probing index.
        index: IndexId,
        /// For display.
        index_name: String,
        /// Row width.
        width: usize,
        /// Probe specification.
        probe: ProbeSpec,
        /// Residual predicate over the table's own layout.
        filter: Option<PhysExpr>,
    },
    /// Clustered primary-key lookup (BTree storage structure).
    PkLookup {
        /// Base table.
        table: TableId,
        /// For display.
        table_name: String,
        /// Row width.
        width: usize,
        /// Primary-key expressions (row-free; see [`ProbeSpec`]): the full
        /// key (unique lookup) or a leading prefix of it (clustered range
        /// probe).
        key: Vec<PhysExpr>,
        /// Residual predicate.
        filter: Option<PhysExpr>,
    },
    /// Index nested-loop join: for each outer row, probe the inner table
    /// through its clustered primary tree or a secondary index on the join
    /// column — Ingres' "indexes added to the list of joining tables".
    ProbeJoin {
        /// Outer input.
        left: Box<PlanNode>,
        /// Inner table.
        table: TableId,
        /// For display.
        table_name: String,
        /// Inner row width.
        width: usize,
        /// Offset of the join key in the outer row.
        left_key: usize,
        /// The probe structure.
        source: ProbeSource,
        /// Residual predicate over the concatenated layout (outer ‖ inner).
        filter: Option<PhysExpr>,
    },
    /// Nested-loop join (inner side re-scanned per outer row).
    NestedLoopJoin {
        /// Outer input.
        left: Box<PlanNode>,
        /// Inner input.
        right: Box<PlanNode>,
        /// Join predicate over the concatenated layout.
        on: Option<PhysExpr>,
    },
    /// Hash join on equi-key columns.
    HashJoin {
        /// Build side.
        left: Box<PlanNode>,
        /// Probe side.
        right: Box<PlanNode>,
        /// Key offsets into the left row.
        left_keys: Vec<usize>,
        /// Key offsets into the right row.
        right_keys: Vec<usize>,
        /// Residual predicate over the concatenated layout.
        filter: Option<PhysExpr>,
    },
    /// Standalone filter.
    Filter {
        /// Input.
        input: Box<PlanNode>,
        /// Predicate.
        pred: PhysExpr,
    },
    /// Projection.
    Project {
        /// Input.
        input: Box<PlanNode>,
        /// Output expressions over the input layout.
        exprs: Vec<PhysExpr>,
    },
    /// Hash aggregation. Output layout: group keys then aggregate values.
    Aggregate {
        /// Input.
        input: Box<PlanNode>,
        /// Group keys over the input layout.
        group_by: Vec<PhysExpr>,
        /// Aggregates over the input layout.
        aggs: Vec<AggSpec>,
        /// HAVING over the output layout.
        having: Option<PhysExpr>,
    },
    /// Full sort.
    Sort {
        /// Input.
        input: Box<PlanNode>,
        /// `(input offset, descending)` keys.
        keys: Vec<(usize, bool)>,
    },
    /// Order-preserving duplicate elimination over whole rows.
    Distinct {
        /// Input.
        input: Box<PlanNode>,
    },
    /// LIMIT/OFFSET.
    Limit {
        /// Input.
        input: Box<PlanNode>,
        /// Maximum rows (`None` = unlimited, used for pure OFFSET).
        limit: Option<u64>,
        /// Rows to skip.
        offset: u64,
    },
}

/// A plan node annotated with the optimizer's estimates.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// The operator.
    pub op: PhysPlan,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated cumulative cost (this operator + children).
    pub est_cost: Cost,
}

impl PlanNode {
    /// Number of columns this node emits.
    pub fn width(&self) -> usize {
        match &self.op {
            PhysPlan::DualScan => 0,
            PhysPlan::SeqScan { width, .. }
            | PhysPlan::VirtualScan { width, .. }
            | PhysPlan::IndexScan { width, .. }
            | PhysPlan::PkLookup { width, .. } => *width,
            PhysPlan::NestedLoopJoin { left, right, .. }
            | PhysPlan::HashJoin { left, right, .. } => left.width() + right.width(),
            PhysPlan::ProbeJoin { left, width, .. } => left.width() + width,
            PhysPlan::Filter { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Distinct { input }
            | PhysPlan::Limit { input, .. } => input.width(),
            PhysPlan::Project { exprs, .. } => exprs.len(),
            PhysPlan::Aggregate { group_by, aggs, .. } => group_by.len() + aggs.len(),
        }
    }

    /// Stable operator name, e.g. `"HashJoin"` — the identity tracing spans
    /// and `EXPLAIN ANALYZE` label plan nodes with.
    pub fn op_name(&self) -> &'static str {
        match &self.op {
            PhysPlan::DualScan => "Dual",
            PhysPlan::VirtualScan { .. } => "VirtualScan",
            PhysPlan::SeqScan { .. } => "SeqScan",
            PhysPlan::IndexScan { .. } => "IndexScan",
            PhysPlan::PkLookup { .. } => "PkLookup",
            PhysPlan::ProbeJoin { .. } => "ProbeJoin",
            PhysPlan::NestedLoopJoin { .. } => "NestedLoopJoin",
            PhysPlan::HashJoin { .. } => "HashJoin",
            PhysPlan::Filter { .. } => "Filter",
            PhysPlan::Project { .. } => "Project",
            PhysPlan::Aggregate { .. } => "Aggregate",
            PhysPlan::Sort { .. } => "Sort",
            PhysPlan::Distinct { .. } => "Distinct",
            PhysPlan::Limit { .. } => "Limit",
        }
    }

    /// Operator-specific detail suffix (leading space included when
    /// non-empty), e.g. `" on protein via protein_pk eq(1)"`. Shared by the
    /// `EXPLAIN` renderer and the tracing span labels.
    pub fn op_detail(&self) -> String {
        match &self.op {
            PhysPlan::DualScan
            | PhysPlan::NestedLoopJoin { .. }
            | PhysPlan::Filter { .. }
            | PhysPlan::Distinct { .. } => String::new(),
            PhysPlan::VirtualScan { table_name, .. } => format!(" on {table_name}"),
            PhysPlan::SeqScan {
                table_name, filter, ..
            } => format!(
                " on {table_name}{}",
                if filter.is_some() { " [filtered]" } else { "" }
            ),
            PhysPlan::IndexScan {
                table_name,
                index_name,
                probe,
                ..
            } => {
                let p = match probe {
                    ProbeSpec::Eq(v) => format!("eq({})", v.len()),
                    ProbeSpec::Range { .. } => "range".to_owned(),
                };
                format!(" on {table_name} via {index_name} {p}")
            }
            PhysPlan::PkLookup { table_name, .. } => format!(" on {table_name}"),
            PhysPlan::ProbeJoin {
                table_name, source, ..
            } => {
                let via = match source {
                    ProbeSource::PrimaryTree => "primary tree".to_owned(),
                    ProbeSource::Index(_, name) => format!("index {name}"),
                };
                format!(" into {table_name} via {via}")
            }
            PhysPlan::HashJoin { left_keys, .. } => format!(" on {} key(s)", left_keys.len()),
            PhysPlan::Project { exprs, .. } => format!(" [{} col(s)]", exprs.len()),
            PhysPlan::Aggregate { group_by, aggs, .. } => {
                format!(" [{} key(s), {} agg(s)]", group_by.len(), aggs.len())
            }
            PhysPlan::Sort { keys, .. } => format!(" [{} key(s)]", keys.len()),
            PhysPlan::Limit { limit, offset, .. } => format!(" [{limit:?} offset {offset}]"),
        }
    }

    fn fmt_rec(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        writeln!(
            f,
            "{pad}{}{}  (rows≈{:.0}, {})",
            self.op_name(),
            self.op_detail(),
            self.est_rows,
            self.est_cost
        )?;
        match &self.op {
            PhysPlan::DualScan
            | PhysPlan::VirtualScan { .. }
            | PhysPlan::SeqScan { .. }
            | PhysPlan::IndexScan { .. }
            | PhysPlan::PkLookup { .. } => {}
            PhysPlan::ProbeJoin { left, .. } => {
                left.fmt_rec(f, indent + 1)?;
            }
            PhysPlan::NestedLoopJoin { left, right, .. }
            | PhysPlan::HashJoin { left, right, .. } => {
                left.fmt_rec(f, indent + 1)?;
                right.fmt_rec(f, indent + 1)?;
            }
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Aggregate { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Distinct { input }
            | PhysPlan::Limit { input, .. } => {
                input.fmt_rec(f, indent + 1)?;
            }
        }
        Ok(())
    }

    /// Collect the indexes the plan uses (for the optimizer sensor).
    pub fn collect_indexes(&self, out: &mut Vec<IndexId>) {
        match &self.op {
            PhysPlan::IndexScan { index, .. } if !out.contains(index) => {
                out.push(*index);
            }
            PhysPlan::NestedLoopJoin { left, right, .. }
            | PhysPlan::HashJoin { left, right, .. } => {
                left.collect_indexes(out);
                right.collect_indexes(out);
            }
            PhysPlan::ProbeJoin { left, source, .. } => {
                if let ProbeSource::Index(id, _) = source {
                    if !out.contains(id) {
                        out.push(*id);
                    }
                }
                left.collect_indexes(out);
            }
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Aggregate { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Distinct { input }
            | PhysPlan::Limit { input, .. } => input.collect_indexes(out),
            _ => {}
        }
    }

    /// Clone the tree with every [`PhysExpr::Param`] replaced by its bound
    /// value — how a cached plan template becomes executable. Estimates are
    /// carried over unchanged: the template was costed with generic parameter
    /// selectivities, and re-costing is exactly what the plan cache avoids.
    pub fn substitute_params(&self, params: &[Value]) -> Result<PlanNode> {
        let sub = |e: &PhysExpr| e.substitute(params);
        let sub_opt = |e: &Option<PhysExpr>| -> Result<Option<PhysExpr>> {
            e.as_ref().map(|e| e.substitute(params)).transpose()
        };
        let op = match &self.op {
            PhysPlan::DualScan => PhysPlan::DualScan,
            PhysPlan::VirtualScan {
                table,
                table_name,
                width,
                filter,
            } => PhysPlan::VirtualScan {
                table: *table,
                table_name: table_name.clone(),
                width: *width,
                filter: sub_opt(filter)?,
            },
            PhysPlan::SeqScan {
                table,
                table_name,
                width,
                filter,
            } => PhysPlan::SeqScan {
                table: *table,
                table_name: table_name.clone(),
                width: *width,
                filter: sub_opt(filter)?,
            },
            PhysPlan::IndexScan {
                table,
                table_name,
                index,
                index_name,
                width,
                probe,
                filter,
            } => PhysPlan::IndexScan {
                table: *table,
                table_name: table_name.clone(),
                index: *index,
                index_name: index_name.clone(),
                width: *width,
                probe: match probe {
                    ProbeSpec::Eq(keys) => {
                        ProbeSpec::Eq(keys.iter().map(sub).collect::<Result<_>>()?)
                    }
                    ProbeSpec::Range { lo, hi } => ProbeSpec::Range {
                        lo: sub_opt(lo)?,
                        hi: sub_opt(hi)?,
                    },
                },
                filter: sub_opt(filter)?,
            },
            PhysPlan::PkLookup {
                table,
                table_name,
                width,
                key,
                filter,
            } => PhysPlan::PkLookup {
                table: *table,
                table_name: table_name.clone(),
                width: *width,
                key: key.iter().map(sub).collect::<Result<_>>()?,
                filter: sub_opt(filter)?,
            },
            PhysPlan::ProbeJoin {
                left,
                table,
                table_name,
                width,
                left_key,
                source,
                filter,
            } => PhysPlan::ProbeJoin {
                left: Box::new(left.substitute_params(params)?),
                table: *table,
                table_name: table_name.clone(),
                width: *width,
                left_key: *left_key,
                source: source.clone(),
                filter: sub_opt(filter)?,
            },
            PhysPlan::NestedLoopJoin { left, right, on } => PhysPlan::NestedLoopJoin {
                left: Box::new(left.substitute_params(params)?),
                right: Box::new(right.substitute_params(params)?),
                on: sub_opt(on)?,
            },
            PhysPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                filter,
            } => PhysPlan::HashJoin {
                left: Box::new(left.substitute_params(params)?),
                right: Box::new(right.substitute_params(params)?),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
                filter: sub_opt(filter)?,
            },
            PhysPlan::Filter { input, pred } => PhysPlan::Filter {
                input: Box::new(input.substitute_params(params)?),
                pred: pred.substitute(params)?,
            },
            PhysPlan::Project { input, exprs } => PhysPlan::Project {
                input: Box::new(input.substitute_params(params)?),
                exprs: exprs.iter().map(sub).collect::<Result<_>>()?,
            },
            PhysPlan::Aggregate {
                input,
                group_by,
                aggs,
                having,
            } => PhysPlan::Aggregate {
                input: Box::new(input.substitute_params(params)?),
                group_by: group_by.iter().map(sub).collect::<Result<_>>()?,
                aggs: aggs
                    .iter()
                    .map(|a| {
                        Ok(AggSpec {
                            func: a.func,
                            input: a.input.as_ref().map(|e| e.substitute(params)).transpose()?,
                            distinct: a.distinct,
                        })
                    })
                    .collect::<Result<_>>()?,
                having: sub_opt(having)?,
            },
            PhysPlan::Sort { input, keys } => PhysPlan::Sort {
                input: Box::new(input.substitute_params(params)?),
                keys: keys.clone(),
            },
            PhysPlan::Distinct { input } => PhysPlan::Distinct {
                input: Box::new(input.substitute_params(params)?),
            },
            PhysPlan::Limit {
                input,
                limit,
                offset,
            } => PhysPlan::Limit {
                input: Box::new(input.substitute_params(params)?),
                limit: *limit,
                offset: *offset,
            },
        };
        Ok(PlanNode {
            op,
            est_rows: self.est_rows,
            est_cost: self.est_cost,
        })
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_rec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> PlanNode {
        PlanNode {
            op: PhysPlan::SeqScan {
                table: TableId(1),
                table_name: "protein".into(),
                width: 3,
                filter: None,
            },
            est_rows: 100.0,
            est_cost: Cost::new(100.0, 10.0),
        }
    }

    #[test]
    fn width_computation() {
        let l = leaf();
        assert_eq!(l.width(), 3);
        let join = PlanNode {
            op: PhysPlan::HashJoin {
                left: Box::new(leaf()),
                right: Box::new(leaf()),
                left_keys: vec![0],
                right_keys: vec![0],
                filter: None,
            },
            est_rows: 100.0,
            est_cost: Cost::ZERO,
        };
        assert_eq!(join.width(), 6);
        let proj = PlanNode {
            op: PhysPlan::Project {
                input: Box::new(join),
                exprs: vec![PhysExpr::Col(0), PhysExpr::Col(5)],
            },
            est_rows: 100.0,
            est_cost: Cost::ZERO,
        };
        assert_eq!(proj.width(), 2);
    }

    #[test]
    fn display_renders_tree() {
        let join = PlanNode {
            op: PhysPlan::NestedLoopJoin {
                left: Box::new(leaf()),
                right: Box::new(leaf()),
                on: None,
            },
            est_rows: 10000.0,
            est_cost: Cost::new(1.0, 2.0),
        };
        let s = join.to_string();
        assert!(s.contains("NestedLoopJoin"));
        assert!(s.contains("SeqScan on protein"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn collect_indexes_dedups() {
        let scan = PlanNode {
            op: PhysPlan::IndexScan {
                table: TableId(1),
                table_name: "t".into(),
                index: IndexId(7),
                index_name: "i".into(),
                width: 1,
                probe: ProbeSpec::Eq(vec![PhysExpr::Literal(Value::Int(1))]),
                filter: None,
            },
            est_rows: 1.0,
            est_cost: Cost::ZERO,
        };
        let join = PlanNode {
            op: PhysPlan::NestedLoopJoin {
                left: Box::new(scan.clone()),
                right: Box::new(scan),
                on: None,
            },
            est_rows: 1.0,
            est_cost: Cost::ZERO,
        };
        let mut out = Vec::new();
        join.collect_indexes(&mut out);
        assert_eq!(out, vec![IndexId(7)]);
    }

    #[test]
    fn substitute_params_patches_probe_keys_and_filters() {
        let templ = PlanNode {
            op: PhysPlan::Filter {
                input: Box::new(PlanNode {
                    op: PhysPlan::PkLookup {
                        table: TableId(1),
                        table_name: "t".into(),
                        width: 2,
                        key: vec![PhysExpr::Param(0)],
                        filter: None,
                    },
                    est_rows: 1.0,
                    est_cost: Cost::new(1.0, 1.0),
                }),
                pred: PhysExpr::Binary {
                    op: ingot_sql::BinOp::Gt,
                    left: Box::new(PhysExpr::Col(1)),
                    right: Box::new(PhysExpr::Param(1)),
                },
            },
            est_rows: 1.0,
            est_cost: Cost::new(2.0, 1.0),
        };
        let bound = templ
            .substitute_params(&[Value::Int(42), Value::Int(7)])
            .unwrap();
        match &bound.op {
            PhysPlan::Filter { input, pred } => {
                match &input.op {
                    PhysPlan::PkLookup { key, .. } => {
                        assert_eq!(key, &vec![PhysExpr::Literal(Value::Int(42))]);
                    }
                    other => panic!("unexpected input op {other:?}"),
                }
                match pred {
                    PhysExpr::Binary { right, .. } => {
                        assert_eq!(**right, PhysExpr::Literal(Value::Int(7)));
                    }
                    other => panic!("unexpected pred {other:?}"),
                }
            }
            other => panic!("unexpected op {other:?}"),
        }
        // Estimates survive substitution untouched.
        assert_eq!(bound.est_cost, templ.est_cost);
        // Missing values surface as an error, never a silent NULL.
        assert!(templ.substitute_params(&[Value::Int(1)]).is_err());
    }
}
