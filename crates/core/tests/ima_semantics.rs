//! IMA boundary semantics: virtual tables are read-only relations that can
//! join with base tables but never accept DML or DDL.

use ingot_common::EngineConfig;
use ingot_core::Engine;

fn engine() -> std::sync::Arc<Engine> {
    let e = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let s = e.open_session();
    s.execute("create table t (a int)").unwrap();
    s.execute("insert into t values (1)").unwrap();
    drop(s);
    e
}

#[test]
fn ima_tables_reject_dml() {
    let e = engine();
    let s = e.open_session();
    assert!(s
        .execute("insert into ima$statements values ('x', 'y', 1, 0, 0)")
        .is_err());
    assert!(s
        .execute("update ima$statements set frequency = 0")
        .is_err());
    assert!(s.execute("delete from ima$workload").is_err());
    assert!(s.execute("drop table ima$workload").is_err());
    assert!(s.execute("modify ima$workload to btree").is_err());
    assert!(s.execute("create index bad on ima$workload (seq)").is_err());
    assert!(s.execute("create statistics on ima$workload").is_err());
}

#[test]
fn ima_name_collisions_are_rejected() {
    let e = engine();
    let s = e.open_session();
    let err = s.execute("create table ima$workload (a int)").unwrap_err();
    assert!(err.to_string().contains("already exists"), "{err}");
}

#[test]
fn ima_joins_with_base_tables() {
    let e = engine();
    let s = e.open_session();
    // Self-referential observability: count workload rows per table name by
    // joining ima$references with ima$tables.
    let r = s
        .execute(
            "select tt.table_name, count(*) from ima$references r \
             join ima$tables tt on r.table_id = tt.table_id \
             group by tt.table_name order by tt.table_name",
        )
        .unwrap();
    assert!(!r.rows.is_empty());
    assert_eq!(r.rows[0].get(0).as_str(), Some("t"));
}

#[test]
fn ima_aggregation_and_ordering() {
    let e = engine();
    let s = e.open_session();
    for i in 0..20 {
        s.execute(&format!("select a from t where a = {}", i % 4))
            .unwrap();
    }
    let r = s
        .execute(
            "select max(frequency), min(frequency), count(*) from ima$statements \
             where query_text like 'select a%'",
        )
        .unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(5));
    assert_eq!(r.rows[0].get(1).as_int(), Some(5));
    assert_eq!(r.rows[0].get(2).as_int(), Some(4));
}

#[test]
fn explain_on_ima_shows_virtual_scan() {
    let e = engine();
    let s = e.open_session();
    let r = s.execute("explain select * from ima$workload").unwrap();
    let text: String = r
        .rows
        .iter()
        .map(|row| row.get(0).as_str().unwrap().to_owned())
        .collect();
    assert!(text.contains("VirtualScan"), "{text}");
}

#[test]
fn ima_reads_cost_no_physical_io() {
    let e = engine();
    let s = e.open_session();
    // Warm up so catalog pages are resident, then check an IMA-only query.
    s.execute("select count(*) from ima$workload").unwrap();
    let before = e.io_stats();
    let r = s.execute("select count(*) from ima$statements").unwrap();
    assert!(r.rows[0].get(0).as_int().unwrap() > 0);
    let delta = e.io_stats().delta_since(&before);
    assert_eq!(delta.total(), 0, "IMA reads must not touch the disk layer");
}
