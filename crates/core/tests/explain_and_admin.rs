//! EXPLAIN rendering and administrative statement behaviour.

use ingot_common::EngineConfig;
use ingot_core::Engine;

fn engine() -> std::sync::Arc<Engine> {
    let e = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let s = e.open_session();
    s.execute("create table t (id int not null primary key, v int)")
        .unwrap();
    for i in 0..2000 {
        s.execute(&format!("insert into t values ({i}, {})", i % 10))
            .unwrap();
    }
    drop(s);
    e
}

fn explain(e: &std::sync::Arc<Engine>, sql: &str) -> String {
    let s = e.open_session();
    s.execute(&format!("explain {sql}"))
        .unwrap()
        .rows
        .iter()
        .map(|r| r.get(0).as_str().unwrap().to_owned())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn explain_dml_is_readable() {
    let e = engine();
    let up = explain(&e, "update t set v = 0 where id = 5");
    assert!(up.contains("Update t"), "{up}");
    assert!(up.contains("filtered"), "{up}");
    let del = explain(&e, "delete from t");
    assert!(del.contains("Delete from t"), "{del}");
    assert!(!del.contains("filtered"), "{del}");
    let ins = explain(&e, "insert into t values (9999, 1)");
    assert!(
        ins.contains("Insert into t") && ins.contains("1 row"),
        "{ins}"
    );
}

#[test]
fn explain_shows_plan_change_after_tuning() {
    let e = engine();
    let before = explain(&e, "select v from t where id = 77");
    assert!(before.contains("SeqScan"), "{before}");
    let s = e.open_session();
    s.execute("create statistics on t").unwrap();
    s.execute("modify t to btree").unwrap();
    let after = explain(&e, "select v from t where id = 77");
    assert!(after.contains("PkLookup"), "{after}");
}

#[test]
fn explain_does_not_execute() {
    let e = engine();
    let s = e.open_session();
    let before = s.execute("select count(*) from t").unwrap();
    s.execute("explain delete from t").unwrap();
    let after = s.execute("select count(*) from t").unwrap();
    assert_eq!(before.rows, after.rows, "EXPLAIN must not run the DML");
}

#[test]
fn set_statements_are_accepted() {
    let e = engine();
    let s = e.open_session();
    // SET parses and is accepted (session knobs are currently advisory).
    s.execute("set monitor_resolution = 100").unwrap();
    s.execute("set lock_timeout = 'long'").unwrap();
}

#[test]
fn drop_table_then_recreate() {
    let e = engine();
    let s = e.open_session();
    s.execute("drop table t").unwrap();
    assert!(s.execute("select * from t").is_err());
    s.execute("create table t (id int)").unwrap();
    s.execute("insert into t values (1)").unwrap();
    let r = s.execute("select count(*) from t").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(1));
}

#[test]
fn drop_index_restores_scans() {
    let e = engine();
    let s = e.open_session();
    s.execute("create index t_v on t (v)").unwrap();
    s.execute("create statistics on t").unwrap();
    s.execute("drop index t_v").unwrap();
    let plan = explain(&e, "select id from t where v = 3");
    assert!(plan.contains("SeqScan"), "{plan}");
    // And the query still answers correctly.
    let r = s.execute("select count(*) from t where v = 3").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(200));
}
