//! Property-based end-to-end tests: the planned-and-executed result of a
//! query must equal a naive in-memory evaluation of the same predicate, for
//! every storage structure and index configuration.

use ingot_common::EngineConfig;
use ingot_core::Engine;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Pred {
    col: &'static str,
    op: &'static str,
    v: i64,
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    (
        prop_oneof![Just("a"), Just("b")],
        prop_oneof![
            Just("="),
            Just("<"),
            Just("<="),
            Just(">"),
            Just(">="),
            Just("<>")
        ],
        -50i64..150,
    )
        .prop_map(|(col, op, v)| Pred { col, op, v })
}

fn matches(p: &Pred, a: i64, b: i64) -> bool {
    let x = if p.col == "a" { a } else { b };
    match p.op {
        "=" => x == p.v,
        "<" => x < p.v,
        "<=" => x <= p.v,
        ">" => x > p.v,
        ">=" => x >= p.v,
        _ => x != p.v,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Filtered scans agree with a naive model across heap/btree/indexed
    /// configurations of the same data.
    #[test]
    fn query_results_match_model(
        rows in prop::collection::vec((0i64..100, 0i64..100), 1..120),
        preds in prop::collection::vec(arb_pred(), 1..3),
        to_btree in any::<bool>(),
        with_index in any::<bool>(),
    ) {
        let engine = Engine::builder().config(EngineConfig::monitoring()).build().unwrap();
        let s = engine.open_session();
        s.execute("create table t (id int not null primary key, a int, b int)").unwrap();
        for (i, (a, b)) in rows.iter().enumerate() {
            s.execute(&format!("insert into t values ({i}, {a}, {b})")).unwrap();
        }
        if with_index {
            s.execute("create index t_a on t (a)").unwrap();
            s.execute("create statistics on t").unwrap();
        }
        if to_btree {
            s.execute("modify t to btree").unwrap();
        }
        let where_clause = preds
            .iter()
            .map(|p| format!("{} {} {}", p.col, p.op, p.v))
            .collect::<Vec<_>>()
            .join(" and ");
        let r = s
            .execute(&format!("select id from t where {where_clause} order by id"))
            .unwrap();
        let got: Vec<i64> = r.rows.iter().map(|row| row.get(0).as_int().unwrap()).collect();
        let expected: Vec<i64> = rows
            .iter()
            .enumerate()
            .filter(|(_, (a, b))| preds.iter().all(|p| matches(p, *a, *b)))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Aggregates agree with the model.
    #[test]
    fn aggregates_match_model(rows in prop::collection::vec((0i64..8, -100i64..100), 1..150)) {
        let engine = Engine::builder().config(EngineConfig::monitoring()).build().unwrap();
        let s = engine.open_session();
        s.execute("create table t (g int, v int)").unwrap();
        for (g, v) in &rows {
            s.execute(&format!("insert into t values ({g}, {v})")).unwrap();
        }
        let r = s
            .execute("select g, count(*), sum(v), min(v), max(v) from t group by g order by g")
            .unwrap();
        use std::collections::BTreeMap;
        let mut model: BTreeMap<i64, (i64, i64, i64, i64)> = BTreeMap::new();
        for &(g, v) in &rows {
            let e = model.entry(g).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 += 1;
            e.1 += v;
            e.2 = e.2.min(v);
            e.3 = e.3.max(v);
        }
        prop_assert_eq!(r.rows.len(), model.len());
        for (row, (g, (n, sum, min, max))) in r.rows.iter().zip(model) {
            prop_assert_eq!(row.get(0).as_int().unwrap(), g);
            prop_assert_eq!(row.get(1).as_int().unwrap(), n);
            prop_assert_eq!(row.get(2).as_int().unwrap(), sum);
            prop_assert_eq!(row.get(3).as_int().unwrap(), min);
            prop_assert_eq!(row.get(4).as_int().unwrap(), max);
        }
    }

    /// Join output matches the model under every physical configuration the
    /// optimizer can pick (hash join, probe join via pk, probe join via
    /// secondary index).
    #[test]
    fn joins_match_model(
        left in prop::collection::vec(0i64..30, 1..60),
        right_keys in prop::collection::vec(0i64..30, 1..60),
        keyed in any::<bool>(),
    ) {
        let engine = Engine::builder().config(EngineConfig::monitoring()).build().unwrap();
        let s = engine.open_session();
        s.execute("create table l (k int, lv int)").unwrap();
        s.execute("create table r (id int not null primary key, k int)").unwrap();
        for (i, k) in left.iter().enumerate() {
            s.execute(&format!("insert into l values ({k}, {i})")).unwrap();
        }
        for (i, k) in right_keys.iter().enumerate() {
            s.execute(&format!("insert into r values ({i}, {k})")).unwrap();
        }
        if keyed {
            s.execute("create index r_k on r (k)").unwrap();
            s.execute("create statistics on l").unwrap();
            s.execute("create statistics on r").unwrap();
        }
        let res = s
            .execute("select l.lv, r.id from l join r on l.k = r.k order by l.lv, r.id")
            .unwrap();
        let mut expected = Vec::new();
        for (li, lk) in left.iter().enumerate() {
            for (ri, rk) in right_keys.iter().enumerate() {
                if lk == rk {
                    expected.push((li as i64, ri as i64));
                }
            }
        }
        expected.sort();
        let got: Vec<(i64, i64)> = res
            .rows
            .iter()
            .map(|r| (r.get(0).as_int().unwrap(), r.get(1).as_int().unwrap()))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Executing a prepared template with bound parameters returns exactly
    /// what the equivalent literal SQL returns — across predicates, repeat
    /// counts (exercising cold plans and cache hits) and physical layouts.
    #[test]
    fn prepared_equals_textual(
        rows in prop::collection::vec((0i64..100, 0i64..100), 1..80),
        preds in prop::collection::vec(arb_pred(), 1..3),
        binds in prop::collection::vec(-50i64..150, 1..4),
        keyed in any::<bool>(),
    ) {
        let engine = Engine::builder().config(EngineConfig::monitoring()).build().unwrap();
        let s = engine.open_session();
        s.execute("create table t (id int not null primary key, a int, b int)").unwrap();
        for (i, (a, b)) in rows.iter().enumerate() {
            s.execute(&format!("insert into t values ({i}, {a}, {b})")).unwrap();
        }
        if keyed {
            s.execute("create index t_a on t (a)").unwrap();
            s.execute("create statistics on t").unwrap();
        }
        // `a = $1 and b < $2 and …`: one marker per predicate, the bound
        // value drawn independently of the literal run's value range.
        let where_params = preds
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{} {} ${}", p.col, p.op, i + 1))
            .collect::<Vec<_>>()
            .join(" and ");
        let prepared = s
            .prepare(&format!("select id from t where {where_params} order by id"))
            .unwrap();
        prop_assert_eq!(prepared.param_count(), preds.len());
        for bound in &binds {
            let params: Vec<ingot_common::Value> =
                preds.iter().map(|_| ingot_common::Value::Int(*bound)).collect();
            let via_prepared = prepared.execute(&params).unwrap();
            let where_literal = preds
                .iter()
                .map(|p| format!("{} {} {bound}", p.col, p.op))
                .collect::<Vec<_>>()
                .join(" and ");
            let via_text = s
                .execute(&format!("select id from t where {where_literal} order by id"))
                .unwrap();
            let got: Vec<i64> =
                via_prepared.rows.iter().map(|r| r.get(0).as_int().unwrap()).collect();
            let want: Vec<i64> =
                via_text.rows.iter().map(|r| r.get(0).as_int().unwrap()).collect();
            prop_assert_eq!(got, want);
        }
    }

    /// The monitor records exactly one workload entry per executed
    /// statement, whatever the statement mix.
    #[test]
    fn monitor_accounting_is_exact(n_selects in 1u64..40, n_inserts in 1u64..40) {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring().with_statement_capacity(10_000))
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        for i in 0..n_inserts {
            s.execute(&format!("insert into t values ({i})")).unwrap();
        }
        for i in 0..n_selects {
            s.execute(&format!("select a from t where a = {}", i % 7)).unwrap();
        }
        let m = engine.monitor().unwrap();
        prop_assert_eq!(m.statements_recorded(), 1 + n_inserts + n_selects);
        prop_assert_eq!(m.workload().len() as u64, 1 + n_inserts + n_selects);
        let freq: u64 = m.statements().iter().map(|st| st.frequency).sum();
        prop_assert_eq!(freq, 1 + n_inserts + n_selects);
    }
}
