//! The records held in the monitor's ring buffers — the Fig 3 schema.

use ingot_common::{Cost, IndexId, StmtHash, TableId};

/// One unique statement (`statements` table of Fig 3).
#[derive(Debug, Clone)]
pub struct StatementInfo {
    /// Hash of the statement text — the key referencing all other tables.
    pub hash: StmtHash,
    /// The statement text.
    pub text: String,
    /// Times this statement executed since it entered the buffer.
    pub frequency: u64,
    /// Monotonic nanos of first execution.
    pub first_seen_ns: u64,
    /// Monotonic nanos of latest execution.
    pub last_seen_ns: u64,
}

/// One execution (`workload` table of Fig 3).
#[derive(Debug, Clone)]
pub struct WorkloadRecord {
    /// Statement key.
    pub hash: StmtHash,
    /// Global execution sequence number.
    pub seq: u64,
    /// Optimiser CPU time (nanoseconds spent planning).
    pub opt_time_ns: u64,
    /// Optimiser disk I/O (always 0 here: our catalogs are memory-resident,
    /// kept for schema fidelity).
    pub opt_io: u64,
    /// Execution CPU: tuples processed.
    pub exec_cpu: u64,
    /// Execution disk I/O: physical page reads + writes.
    pub exec_io: u64,
    /// Estimated cost from the optimizer.
    pub est: Cost,
    /// Wall-clock to execute, nanoseconds.
    pub wallclock_ns: u64,
    /// Nanoseconds spent inside monitoring code for this statement (the
    /// monitor's self-timing, which produces Fig 5 without a profiler).
    pub monitor_ns: u64,
    /// Monotonic timestamp (nanos) of statement start.
    pub at_ns: u64,
    /// Simulated-clock seconds of statement start.
    pub at_sim_secs: u64,
}

/// What kind of object a `references` row points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefObject {
    /// A base table.
    Table,
    /// An attribute (column), `object_id` = column position.
    Attribute,
    /// An index.
    Index,
}

impl RefObject {
    /// Stable textual tag used in the IMA relation.
    pub fn tag(self) -> &'static str {
        match self {
            RefObject::Table => "table",
            RefObject::Attribute => "attribute",
            RefObject::Index => "index",
        }
    }
}

/// One object reference of a statement (`references` table of Fig 3).
#[derive(Debug, Clone)]
pub struct ReferenceRecord {
    /// Statement key.
    pub hash: StmtHash,
    /// Object kind.
    pub object: RefObject,
    /// Object id (table id raw / column position / index id raw).
    pub object_id: u64,
    /// Owning table.
    pub table: TableId,
}

/// Frequency and storage info of a referenced table (`tables` of Fig 3).
#[derive(Debug, Clone)]
pub struct TableUsage {
    /// Table id.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Statements that referenced the table.
    pub frequency: u64,
    /// Storage structure at last reference ("HEAP"/"BTREE").
    pub storage: String,
    /// Main data pages at last reference.
    pub data_pages: u64,
    /// Overflow pages at last reference.
    pub overflow_pages: u64,
    /// Live rows at last reference.
    pub rows: u64,
}

/// Frequency info of a referenced index (`indexes` of Fig 3).
#[derive(Debug, Clone)]
pub struct IndexUsage {
    /// Index id.
    pub id: IndexId,
    /// Index name.
    pub name: String,
    /// Owning table.
    pub table: TableId,
    /// Times the optimizer *used* this index in a chosen plan.
    pub frequency: u64,
    /// Pages at last reference.
    pub pages: u64,
}

/// Frequency info of a referenced attribute (`attributes` of Fig 3).
#[derive(Debug, Clone)]
pub struct AttributeUsage {
    /// Owning table.
    pub table: TableId,
    /// Column position.
    pub column: usize,
    /// Column name.
    pub name: String,
    /// Statements that referenced the attribute.
    pub frequency: u64,
    /// Whether a histogram existed at last reference.
    pub has_histogram: bool,
}

/// One system-wide statistics sample (`statistics` of Fig 3).
#[derive(Debug, Clone, Default)]
pub struct StatSample {
    /// Monotonic nanos of the sample.
    pub at_ns: u64,
    /// Simulated-clock seconds of the sample.
    pub at_sim_secs: u64,
    /// Open sessions.
    pub sessions: u64,
    /// Peak concurrent sessions ("maximum sessions").
    pub max_sessions: u64,
    /// Locks currently granted.
    pub locks_held: u64,
    /// Transactions currently blocked on a lock.
    pub lock_waiting: u64,
    /// Cumulative lock waits.
    pub lock_waits_total: u64,
    /// Cumulative deadlocks.
    pub deadlocks_total: u64,
    /// Active transactions.
    pub active_txns: u64,
    /// Buffer-cache hits (cumulative).
    pub cache_hits: u64,
    /// Buffer-cache misses (cumulative).
    pub cache_misses: u64,
    /// Physical page reads (cumulative).
    pub physical_reads: u64,
    /// Physical page writes (cumulative).
    pub physical_writes: u64,
    /// Statements executed so far.
    pub statements_executed: u64,
}
