//! The monitor: local sensors + ring buffers.
//!
//! The design follows §IV-A of the paper: the monitor "does not call the
//! DBMS modules such as the optimizer or parser but is part of each of those
//! modules" — concretely, the engine's statement path creates a
//! [`StatementSensor`] and feeds it with values the stages already have in
//! hand (text, bind artifacts, estimated costs, actual costs). No extra
//! thread, no extra catalog or disk access.
//!
//! Every sensor call times itself against a monotonic clock, so the share of
//! monitoring time per statement (Fig 5) falls out of the recorded data
//! without external profiling.

pub mod records;

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use ingot_common::{Cost, EngineConfig, IndexId, MonotonicClock, StmtHash, TableId};
use parking_lot::Mutex;

pub use ingot_common::RingBuffer;
pub use records::{
    AttributeUsage, IndexUsage, RefObject, ReferenceRecord, StatSample, StatementInfo, TableUsage,
    WorkloadRecord,
};

/// Per-table detail the engine snapshots at bind time (it holds the catalog
/// lock anyway — "this data is logged right at its source").
#[derive(Debug, Clone)]
pub struct TableDetail {
    /// Table id.
    pub id: TableId,
    /// Name.
    pub name: String,
    /// Storage structure tag.
    pub storage: String,
    /// Main pages.
    pub data_pages: u64,
    /// Overflow pages.
    pub overflow_pages: u64,
    /// Live rows.
    pub rows: u64,
}

/// Per-attribute detail snapshotted at bind time.
#[derive(Debug, Clone)]
pub struct AttributeDetail {
    /// Owning table.
    pub table: TableId,
    /// Column position.
    pub column: usize,
    /// Column name.
    pub name: String,
    /// Histogram present?
    pub has_histogram: bool,
}

/// Per-index detail snapshotted at optimize time.
#[derive(Debug, Clone)]
pub struct IndexDetail {
    /// Index id.
    pub id: IndexId,
    /// Name.
    pub name: String,
    /// Owning table.
    pub table: TableId,
    /// Pages.
    pub pages: u64,
}

/// The in-flight sensor state of one statement.
#[derive(Debug)]
pub struct StatementSensor {
    start_ns: u64,
    hash: StmtHash,
    text: String,
    tables: Vec<TableDetail>,
    attributes: Vec<AttributeDetail>,
    used_indexes: Vec<IndexDetail>,
    est: Cost,
    opt_time_ns: u64,
    opt_io: u64,
    exec_cpu: u64,
    exec_io: u64,
    /// Nanoseconds spent inside sensor code so far.
    self_ns: u64,
}

impl StatementSensor {
    /// Attribute externally measured monitoring work (e.g. the engine's
    /// catalog-detail snapshotting done on the monitor's behalf) to this
    /// statement's self-time.
    pub fn add_self_time(&mut self, ns: u64) {
        self.self_ns += ns;
    }
}

/// Interior state guarded by one mutex — a statement record touches several
/// structures and single-lock recording keeps the hot path to one
/// lock/unlock pair.
struct MonitorState {
    statements: HashMap<StmtHash, StatementInfo>,
    /// Insertion order of statement hashes for ring eviction.
    statement_order: VecDeque<StmtHash>,
    workload: RingBuffer<WorkloadRecord>,
    references: RingBuffer<ReferenceRecord>,
    tables: HashMap<TableId, TableUsage>,
    indexes: HashMap<IndexId, IndexUsage>,
    attributes: HashMap<(TableId, usize), AttributeUsage>,
    statistics: RingBuffer<StatSample>,
    /// Statement hashes evicted because the statement ring reached capacity.
    statement_evictions: u64,
}

/// Point-in-time health snapshot of the monitor itself: self-cost counters
/// plus ring-buffer fill and wrap state, exported via `ima$monitor_health`.
#[derive(Debug, Clone, Default)]
pub struct MonitorHealth {
    /// Total nanoseconds spent in monitoring code.
    pub self_time_ns: u64,
    /// Total sensor calls.
    pub sensor_calls: u64,
    /// Statements recorded over the monitor's lifetime.
    pub statements_recorded: u64,
    /// Distinct statements currently held / capacity / evicted so far.
    pub statements_len: usize,
    pub statements_capacity: usize,
    pub statement_evictions: u64,
    /// Workload ring: held / capacity / total ever pushed.
    pub workload_len: usize,
    pub workload_capacity: usize,
    pub workload_total: u64,
    /// References ring: held / capacity / total ever pushed.
    pub references_len: usize,
    pub references_capacity: usize,
    pub references_total: u64,
    /// Statistics ring: held / capacity / total ever pushed.
    pub statistics_len: usize,
    pub statistics_capacity: usize,
    pub statistics_total: u64,
}

/// The monitor. One per engine instance (when enabled).
pub struct Monitor {
    clock: MonotonicClock,
    statement_capacity: usize,
    state: Mutex<MonitorState>,
    /// Total nanoseconds spent in monitoring code.
    self_time_ns: AtomicU64,
    /// Total sensor function calls.
    sensor_calls: AtomicU64,
    /// Total statements recorded.
    statements_recorded: AtomicU64,
}

impl Monitor {
    /// Build a monitor from the engine configuration.
    pub fn new(config: &EngineConfig, clock: MonotonicClock) -> Self {
        Monitor {
            clock,
            statement_capacity: config.monitor_statement_capacity.max(1),
            state: Mutex::new(MonitorState {
                statements: HashMap::with_capacity(config.monitor_statement_capacity.min(4096)),
                statement_order: VecDeque::new(),
                workload: RingBuffer::new(config.monitor_workload_capacity),
                references: RingBuffer::new(config.monitor_reference_capacity),
                tables: HashMap::new(),
                indexes: HashMap::new(),
                attributes: HashMap::new(),
                statistics: RingBuffer::new(config.monitor_statistics_capacity),
                statement_evictions: 0,
            }),
            self_time_ns: AtomicU64::new(0),
            sensor_calls: AtomicU64::new(0),
            statements_recorded: AtomicU64::new(0),
        }
    }

    /// The monitor's clock (shared with the engine's wall-clock sensors).
    pub fn clock(&self) -> &MonotonicClock {
        &self.clock
    }

    // ---- sensors -----------------------------------------------------------

    /// Query-interface sensor: wall-clock start + statement text hash.
    #[inline]
    pub fn begin_statement(&self, text: &str) -> StatementSensor {
        let t0 = self.clock.now_nanos();
        let hash = StmtHash::of(text);
        let sensor = StatementSensor {
            start_ns: t0,
            hash,
            text: text.to_owned(),
            tables: Vec::new(),
            attributes: Vec::new(),
            used_indexes: Vec::new(),
            est: Cost::ZERO,
            opt_time_ns: 0,
            opt_io: 0,
            exec_cpu: 0,
            exec_io: 0,
            self_ns: 0,
        };
        self.sensor_calls.fetch_add(1, Ordering::Relaxed);
        let mut sensor = sensor;
        sensor.self_ns += self.clock.now_nanos() - t0;
        sensor
    }

    /// Parser/binder sensor: referenced tables and attributes (with their
    /// catalog details, already known to the binder).
    #[inline]
    pub fn parsed(
        &self,
        sensor: &mut StatementSensor,
        tables: Vec<TableDetail>,
        attributes: Vec<AttributeDetail>,
    ) {
        let t0 = self.clock.now_nanos();
        sensor.tables = tables;
        sensor.attributes = attributes;
        self.sensor_calls.fetch_add(1, Ordering::Relaxed);
        sensor.self_ns += self.clock.now_nanos() - t0;
    }

    /// Optimiser sensor: estimated costs, used indexes, planning time, and
    /// pages read on the optimizer's behalf (catalog statistics, virtual
    /// what-if probes).
    #[inline]
    pub fn optimized(
        &self,
        sensor: &mut StatementSensor,
        est: Cost,
        used_indexes: Vec<IndexDetail>,
        opt_time_ns: u64,
        opt_io: u64,
    ) {
        let t0 = self.clock.now_nanos();
        sensor.est = est;
        sensor.used_indexes = used_indexes;
        sensor.opt_time_ns = opt_time_ns;
        sensor.opt_io = opt_io;
        self.sensor_calls.fetch_add(1, Ordering::Relaxed);
        sensor.self_ns += self.clock.now_nanos() - t0;
    }

    /// Execution sensor: actual costs (tuples processed, physical I/O).
    #[inline]
    pub fn executed(&self, sensor: &mut StatementSensor, cpu_tuples: u64, io_pages: u64) {
        let t0 = self.clock.now_nanos();
        sensor.exec_cpu = cpu_tuples;
        sensor.exec_io = io_pages;
        self.sensor_calls.fetch_add(1, Ordering::Relaxed);
        sensor.self_ns += self.clock.now_nanos() - t0;
    }

    /// Result sensor: wall-clock stop; writes the statement into the ring
    /// buffers.
    pub fn record(&self, mut sensor: StatementSensor, sim_secs: u64) {
        let t0 = self.clock.now_nanos();
        self.sensor_calls.fetch_add(1, Ordering::Relaxed);
        self.statements_recorded.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        let state = &mut *st;

        // statements table (+ references on first sight).
        let is_new = !state.statements.contains_key(&sensor.hash);
        if is_new {
            if state.statement_order.len() == self.statement_capacity {
                if let Some(evict) = state.statement_order.pop_front() {
                    state.statements.remove(&evict);
                    state.statement_evictions += 1;
                }
            }
            state.statement_order.push_back(sensor.hash);
            state.statements.insert(
                sensor.hash,
                StatementInfo {
                    hash: sensor.hash,
                    text: std::mem::take(&mut sensor.text),
                    frequency: 1,
                    first_seen_ns: sensor.start_ns,
                    last_seen_ns: sensor.start_ns,
                },
            );
            for t in &sensor.tables {
                state.references.push(ReferenceRecord {
                    hash: sensor.hash,
                    object: RefObject::Table,
                    object_id: u64::from(t.id.raw()),
                    table: t.id,
                });
            }
            for a in &sensor.attributes {
                state.references.push(ReferenceRecord {
                    hash: sensor.hash,
                    object: RefObject::Attribute,
                    object_id: a.column as u64,
                    table: a.table,
                });
            }
            for i in &sensor.used_indexes {
                state.references.push(ReferenceRecord {
                    hash: sensor.hash,
                    object: RefObject::Index,
                    object_id: u64::from(i.id.raw()),
                    table: i.table,
                });
            }
        } else if let Some(info) = state.statements.get_mut(&sensor.hash) {
            info.frequency += 1;
            info.last_seen_ns = sensor.start_ns;
        }

        // Object usage tables.
        for t in &sensor.tables {
            let u = state.tables.entry(t.id).or_insert_with(|| TableUsage {
                id: t.id,
                name: t.name.clone(),
                frequency: 0,
                storage: t.storage.clone(),
                data_pages: 0,
                overflow_pages: 0,
                rows: 0,
            });
            u.frequency += 1;
            u.storage.clone_from(&t.storage);
            u.data_pages = t.data_pages;
            u.overflow_pages = t.overflow_pages;
            u.rows = t.rows;
        }
        for a in &sensor.attributes {
            let u = state
                .attributes
                .entry((a.table, a.column))
                .or_insert_with(|| AttributeUsage {
                    table: a.table,
                    column: a.column,
                    name: a.name.clone(),
                    frequency: 0,
                    has_histogram: false,
                });
            u.frequency += 1;
            u.has_histogram = a.has_histogram;
        }
        for i in &sensor.used_indexes {
            let u = state.indexes.entry(i.id).or_insert_with(|| IndexUsage {
                id: i.id,
                name: i.name.clone(),
                table: i.table,
                frequency: 0,
                pages: 0,
            });
            u.frequency += 1;
            u.pages = i.pages;
        }

        // workload table: wall-clock stop is the record instant.
        let now = self.clock.now_nanos();
        let monitor_ns = sensor.self_ns + (now - t0);
        let seq = state.workload.total_pushed();
        state.workload.push(WorkloadRecord {
            hash: sensor.hash,
            seq,
            opt_time_ns: sensor.opt_time_ns,
            opt_io: sensor.opt_io,
            exec_cpu: sensor.exec_cpu,
            exec_io: sensor.exec_io,
            est: sensor.est,
            wallclock_ns: now.saturating_sub(sensor.start_ns),
            monitor_ns,
            at_ns: sensor.start_ns,
            at_sim_secs: sim_secs,
        });
        drop(st);
        self.self_time_ns.fetch_add(monitor_ns, Ordering::Relaxed);
    }

    /// Statistics sensor: record a system-wide sample.
    pub fn record_statistics(&self, sample: StatSample) {
        let t0 = self.clock.now_nanos();
        self.sensor_calls.fetch_add(1, Ordering::Relaxed);
        self.state.lock().statistics.push(sample);
        self.self_time_ns
            .fetch_add(self.clock.now_nanos() - t0, Ordering::Relaxed);
    }

    // ---- snapshot accessors (IMA providers, daemon, tests) ------------------

    /// Snapshot of the `statements` buffer (insertion order).
    pub fn statements(&self) -> Vec<StatementInfo> {
        let st = self.state.lock();
        st.statement_order
            .iter()
            .filter_map(|h| st.statements.get(h).cloned())
            .collect()
    }

    /// Snapshot of the `workload` buffer (oldest first).
    pub fn workload(&self) -> Vec<WorkloadRecord> {
        self.state.lock().workload.iter().cloned().collect()
    }

    /// Snapshot of the `references` buffer.
    pub fn references(&self) -> Vec<ReferenceRecord> {
        self.state.lock().references.iter().cloned().collect()
    }

    /// Snapshot of table usage.
    pub fn tables(&self) -> Vec<TableUsage> {
        let mut v: Vec<TableUsage> = self.state.lock().tables.values().cloned().collect();
        v.sort_by_key(|t| t.id);
        v
    }

    /// Snapshot of index usage.
    pub fn indexes(&self) -> Vec<IndexUsage> {
        let mut v: Vec<IndexUsage> = self.state.lock().indexes.values().cloned().collect();
        v.sort_by_key(|i| i.id);
        v
    }

    /// Snapshot of attribute usage.
    pub fn attributes(&self) -> Vec<AttributeUsage> {
        let mut v: Vec<AttributeUsage> = self.state.lock().attributes.values().cloned().collect();
        v.sort_by_key(|a| (a.table, a.column));
        v
    }

    /// Snapshot of the `statistics` buffer.
    pub fn statistics(&self) -> Vec<StatSample> {
        self.state.lock().statistics.iter().cloned().collect()
    }

    /// Total time spent in monitoring code, nanoseconds.
    pub fn self_time_ns(&self) -> u64 {
        self.self_time_ns.load(Ordering::Relaxed)
    }

    /// Total sensor calls.
    pub fn sensor_calls(&self) -> u64 {
        self.sensor_calls.load(Ordering::Relaxed)
    }

    /// Statements recorded over the monitor's lifetime.
    pub fn statements_recorded(&self) -> u64 {
        self.statements_recorded.load(Ordering::Relaxed)
    }

    /// Snapshot the monitor's own health: self-cost counters and ring-buffer
    /// fill/wrap state (the `ima$monitor_health` provider).
    pub fn health(&self) -> MonitorHealth {
        let st = self.state.lock();
        MonitorHealth {
            self_time_ns: self.self_time_ns.load(Ordering::Relaxed),
            sensor_calls: self.sensor_calls.load(Ordering::Relaxed),
            statements_recorded: self.statements_recorded.load(Ordering::Relaxed),
            statements_len: st.statement_order.len(),
            statements_capacity: self.statement_capacity,
            statement_evictions: st.statement_evictions,
            workload_len: st.workload.len(),
            workload_capacity: st.workload.capacity(),
            workload_total: st.workload.total_pushed(),
            references_len: st.references.len(),
            references_capacity: st.references.capacity(),
            references_total: st.references.total_pushed(),
            statistics_len: st.statistics.len(),
            statistics_capacity: st.statistics.capacity(),
            statistics_total: st.statistics.total_pushed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(stmt_cap: usize) -> Monitor {
        let cfg = EngineConfig::default().with_statement_capacity(stmt_cap);
        Monitor::new(&cfg, MonotonicClock::new())
    }

    fn run_statement(m: &Monitor, text: &str) {
        let mut s = m.begin_statement(text);
        m.parsed(
            &mut s,
            vec![TableDetail {
                id: TableId(1),
                name: "protein".into(),
                storage: "HEAP".into(),
                data_pages: 8,
                overflow_pages: 3,
                rows: 100,
            }],
            vec![AttributeDetail {
                table: TableId(1),
                column: 0,
                name: "nref_id".into(),
                has_histogram: false,
            }],
        );
        m.optimized(&mut s, Cost::new(10.0, 2.0), vec![], 1000, 3);
        m.executed(&mut s, 100, 5);
        m.record(s, 0);
    }

    #[test]
    fn statement_dedup_and_frequency() {
        let m = monitor(10);
        run_statement(&m, "select 1");
        run_statement(&m, "select 1");
        run_statement(&m, "select 2");
        let stmts = m.statements();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].frequency, 2);
        assert_eq!(m.workload().len(), 3);
        assert_eq!(m.statements_recorded(), 3);
    }

    #[test]
    fn statement_ring_wraps_at_capacity() {
        // The paper: "the monitoring can capture up to 1000 different
        // statements until the buffer wraps around".
        let m = monitor(5);
        for i in 0..8 {
            run_statement(&m, &format!("select {i}"));
        }
        let stmts = m.statements();
        assert_eq!(stmts.len(), 5);
        assert!(stmts[0].text.contains('3'), "oldest kept must be #3");
        assert!(stmts[4].text.contains('7'));
        let h = m.health();
        assert_eq!(h.statements_len, 5);
        assert_eq!(h.statements_capacity, 5);
        assert_eq!(h.statement_evictions, 3);
        assert_eq!(h.workload_total, 8);
        assert_eq!(h.references_len, h.references_total as usize);
    }

    #[test]
    fn workload_records_costs() {
        let m = monitor(10);
        run_statement(&m, "select 1");
        let w = &m.workload()[0];
        assert_eq!(w.exec_cpu, 100);
        assert_eq!(w.exec_io, 5);
        assert_eq!(w.est, Cost::new(10.0, 2.0));
        assert_eq!(w.opt_time_ns, 1000);
        assert_eq!(w.opt_io, 3);
        assert!(w.monitor_ns > 0);
        assert!(w.wallclock_ns >= w.monitor_ns);
    }

    #[test]
    fn references_only_on_first_sight() {
        let m = monitor(10);
        run_statement(&m, "select 1");
        let before = m.references().len();
        run_statement(&m, "select 1");
        assert_eq!(m.references().len(), before);
        assert_eq!(before, 2); // 1 table + 1 attribute
    }

    #[test]
    fn usage_frequencies_accumulate() {
        let m = monitor(10);
        run_statement(&m, "select 1");
        run_statement(&m, "select 2");
        let tables = m.tables();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].frequency, 2);
        assert_eq!(tables[0].overflow_pages, 3);
        let attrs = m.attributes();
        assert_eq!(attrs[0].frequency, 2);
    }

    #[test]
    fn statistics_samples() {
        let m = monitor(10);
        m.record_statistics(StatSample {
            locks_held: 7,
            ..Default::default()
        });
        assert_eq!(m.statistics().len(), 1);
        assert_eq!(m.statistics()[0].locks_held, 7);
    }

    #[test]
    fn self_time_accumulates() {
        let m = monitor(10);
        run_statement(&m, "select 1");
        assert!(m.self_time_ns() > 0);
        assert!(m.sensor_calls() >= 5);
    }
}
