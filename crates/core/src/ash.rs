//! Active Session History: periodic sampling of what every session is doing.
//!
//! Cumulative wait counters (`ima$wait_events`) say how much time the system
//! as a whole lost per event; they cannot say *which statements* were losing
//! it, or when. Oracle's answer — adopted here — is the Active Session
//! History: sample every active session on a fixed interval, recording the
//! statement template it is running and the wait event it is inside (or "on
//! CPU"), into a bounded ring. The ring approximates the full timeline at
//! 1/interval resolution for a fraction of the cost of tracing everything,
//! and grouping samples by `(template, event)` reconstructs each template's
//! wait profile — exactly the evidence the analyzer's wait-profile rules
//! need.
//!
//! The sampler is **cooperative**: [`AshSampler::sample_if_due`] is invoked
//! from statement begin/end and from the storage daemon's poll, never from a
//! dedicated thread. A successful compare-exchange on the last-sample
//! timestamp elects exactly one caller to take the sample, so concurrent
//! statements race benignly. Idle engines simply stop sampling — an empty
//! timeline costs nothing, which is also what keeps the subsystem inside the
//! paper's ~2 % overhead envelope.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ingot_common::waits::SessionWaits;
use ingot_common::{MonotonicClock, RingBuffer, StmtHash};
use parking_lot::Mutex;

/// What a session is currently executing (live state read by the sampler).
#[derive(Debug, Clone)]
pub struct CurrentStatement {
    /// Statement hash (of the raw text, matching `ima$statements`).
    pub hash: StmtHash,
    /// Whitespace-normalized template (matching the plan cache key).
    pub template: String,
    /// When execution began, wall-clock nanoseconds.
    pub start_ns: u64,
}

/// Per-session slot in the sampler's registry: the session's wait-accounting
/// sink plus its current statement, published at statement begin and cleared
/// at statement end.
#[derive(Debug)]
pub struct ActiveSession {
    session_id: u64,
    waits: Arc<SessionWaits>,
    current: Mutex<Option<CurrentStatement>>,
}

impl ActiveSession {
    fn new(session_id: u64, recent_waits: usize) -> Self {
        ActiveSession {
            session_id,
            waits: Arc::new(SessionWaits::new(recent_waits)),
            current: Mutex::new(None),
        }
    }

    /// The session this slot belongs to.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The session's wait-accounting sink (bound to the executing thread
    /// for the duration of each statement).
    pub fn waits(&self) -> &Arc<SessionWaits> {
        &self.waits
    }

    /// Publish the statement this session is now executing.
    pub fn begin_statement(&self, hash: StmtHash, template: String, start_ns: u64) {
        *self.current.lock() = Some(CurrentStatement {
            hash,
            template,
            start_ns,
        });
    }

    /// Clear the current statement (execution finished).
    pub fn end_statement(&self) {
        *self.current.lock() = None;
    }

    /// The statement currently executing, if any.
    pub fn current_statement(&self) -> Option<CurrentStatement> {
        self.current.lock().clone()
    }
}

/// One ASH sample: a session observed mid-statement at an instant.
#[derive(Debug, Clone)]
pub struct AshSample {
    /// When the sample was taken, wall-clock nanoseconds.
    pub at_ns: u64,
    /// The sampled session.
    pub session_id: u64,
    /// Hash of the running statement.
    pub hash: StmtHash,
    /// Template of the running statement.
    pub template: String,
    /// How long the statement had been running at sample time.
    pub elapsed_ns: u64,
    /// Name of the wait event the session was inside, or [`ON_CPU`].
    pub event: &'static str,
}

/// The event name recorded when a sampled session is not inside any wait.
pub const ON_CPU: &str = "OnCpu";

/// Recent-wait ring capacity given to each session slot.
const SESSION_RECENT_WAITS: usize = 64;

/// The cooperative ASH sampler: a registry of live sessions plus the
/// bounded sample ring behind `ima$ash`.
#[derive(Debug)]
pub struct AshSampler {
    clock: MonotonicClock,
    interval_ns: u64,
    last_sample_ns: AtomicU64,
    samples_taken: AtomicU64,
    sessions: Mutex<HashMap<u64, Arc<ActiveSession>>>,
    ring: Mutex<RingBuffer<AshSample>>,
}

impl AshSampler {
    /// A sampler on `clock` taking at most one sample per `interval_ns`
    /// into a ring of `ring_capacity` samples.
    pub fn new(clock: MonotonicClock, interval_ns: u64, ring_capacity: usize) -> Self {
        AshSampler {
            clock,
            interval_ns: interval_ns.max(1),
            last_sample_ns: AtomicU64::new(0),
            samples_taken: AtomicU64::new(0),
            sessions: Mutex::new(HashMap::new()),
            ring: Mutex::new(RingBuffer::new(ring_capacity)),
        }
    }

    /// The configured minimum spacing between samples, nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Samples taken since construction (monotonic; the ring may have
    /// dropped older ones).
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken.load(Ordering::Relaxed)
    }

    /// Total samples ever pushed into the history ring.
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().total_pushed()
    }

    /// Register `session_id` and return its slot. Called by
    /// `Engine::open_session`.
    pub fn register_session(&self, session_id: u64) -> Arc<ActiveSession> {
        let slot = Arc::new(ActiveSession::new(session_id, SESSION_RECENT_WAITS));
        self.sessions.lock().insert(session_id, Arc::clone(&slot));
        slot
    }

    /// Drop `session_id`'s slot. Called by `Session::drop`.
    pub fn deregister_session(&self, session_id: u64) {
        self.sessions.lock().remove(&session_id);
    }

    /// Live view of every session currently executing a statement — the
    /// rows of `ima$active_sessions`, computed at read time.
    pub fn active_snapshot(&self) -> Vec<AshSample> {
        let now = self.clock.now_nanos();
        self.snapshot_at(now)
    }

    /// Take a sample now if at least one interval has elapsed since the
    /// last. Exactly one concurrent caller wins the election; the rest (and
    /// too-early callers) return `false` without touching the ring.
    pub fn sample_if_due(&self, now_ns: u64) -> bool {
        let last = self.last_sample_ns.load(Ordering::Relaxed);
        if now_ns.saturating_sub(last) < self.interval_ns {
            return false;
        }
        if self
            .last_sample_ns
            .compare_exchange(last, now_ns, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return false; // another caller won this tick
        }
        self.sample_now(now_ns);
        true
    }

    /// Unconditionally take one sample at `now_ns` (tests, forced flushes).
    pub fn sample_now(&self, now_ns: u64) {
        let rows = self.snapshot_at(now_ns);
        if rows.is_empty() {
            // An all-idle instant still counts as a sample (the cadence
            // proptest keys off samples_taken), it just records no rows.
            self.samples_taken.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut ring = self.ring.lock();
        for row in rows {
            ring.push(row);
        }
        drop(ring);
        self.samples_taken.fetch_add(1, Ordering::Relaxed);
    }

    /// The history ring, oldest first — the rows of `ima$ash`.
    pub fn history(&self) -> Vec<AshSample> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Timestamp of the newest history row (0 while the ring is empty) — a
    /// high-water mark for incremental consumers that avoids cloning the
    /// ring just to learn nothing changed.
    pub fn latest_recorded_ns(&self) -> u64 {
        self.ring.lock().iter().last().map_or(0, |s| s.at_ns)
    }

    /// History-ring capacity.
    pub fn ring_capacity(&self) -> usize {
        self.ring.lock().capacity()
    }

    fn snapshot_at(&self, now_ns: u64) -> Vec<AshSample> {
        let sessions = self.sessions.lock();
        let mut rows: Vec<AshSample> = sessions
            .values()
            .filter_map(|slot| {
                let current = slot.current_statement()?;
                let event = slot
                    .waits()
                    .current_wait()
                    .map(|(e, _)| e.name())
                    .unwrap_or(ON_CPU);
                Some(AshSample {
                    at_ns: now_ns,
                    session_id: slot.session_id(),
                    hash: current.hash,
                    template: current.template,
                    elapsed_ns: now_ns.saturating_sub(current.start_ns),
                    event,
                })
            })
            .collect();
        rows.sort_by_key(|r| r.session_id);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::waits::WaitEvent;

    fn sampler(interval_ns: u64, cap: usize) -> AshSampler {
        AshSampler::new(MonotonicClock::new(), interval_ns, cap)
    }

    #[test]
    fn idle_engine_samples_no_rows() {
        let s = sampler(10, 16);
        assert!(s.sample_if_due(100));
        assert_eq!(s.samples_taken(), 1);
        assert!(s.history().is_empty());
    }

    #[test]
    fn active_statement_is_sampled_with_wait_state() {
        let s = sampler(10, 16);
        let slot = s.register_session(5);
        slot.begin_statement(StmtHash::of("select 1"), "select 1".into(), 1_000);
        s.sample_now(3_000);
        let h = s.history();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].session_id, 5);
        assert_eq!(h[0].event, ON_CPU);
        assert_eq!(h[0].elapsed_ns, 2_000);
        assert_eq!(h[0].template, "select 1");
        // Mid-wait the sample records the event name.
        slot.waits().counters(); // touch
        let registry = Arc::new(ingot_common::waits::WaitRegistry::new(4));
        let bound = ingot_common::waits::bind_session(5, Arc::clone(slot.waits()), registry);
        let guard = ingot_common::waits::WaitGuard::begin(None, WaitEvent::LockWaitX);
        s.sample_now(4_000);
        drop(guard);
        drop(bound);
        let h = s.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h[1].event, "LockWaitX");
        slot.end_statement();
        s.sample_now(5_000);
        assert_eq!(s.history().len(), 2, "idle sessions record no rows");
    }

    #[test]
    fn cadence_is_rate_limited_and_election_is_single_winner() {
        let s = sampler(100, 1024);
        let slot = s.register_session(1);
        slot.begin_statement(StmtHash::of("q"), "q".into(), 0);
        let mut taken = 0;
        for now in 0..1_000 {
            if s.sample_if_due(now) {
                taken += 1;
            }
        }
        // last_sample starts at 0, so the first due tick is now=100, then
        // 200 … 900: 9 samples from 1000 1ns-spaced calls.
        assert_eq!(taken, 9);
        assert_eq!(s.samples_taken(), 9);
    }

    #[test]
    fn ring_stays_bounded() {
        let s = sampler(1, 8);
        let slot = s.register_session(2);
        slot.begin_statement(StmtHash::of("q"), "q".into(), 0);
        for now in 1..100 {
            s.sample_now(now);
        }
        assert_eq!(s.history().len(), 8);
        assert_eq!(s.ring_capacity(), 8);
        assert_eq!(s.total_recorded(), 99);
    }

    #[test]
    fn deregister_removes_slot() {
        let s = sampler(1, 8);
        let slot = s.register_session(3);
        slot.begin_statement(StmtHash::of("q"), "q".into(), 0);
        s.deregister_session(3);
        s.sample_now(10);
        assert!(s.history().is_empty());
    }
}
