//! The engine facade: sessions, the sensor-instrumented statement path, and
//! the administration surface used by the daemon and analyzer.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ingot_catalog::{Catalog, SharedCatalog, StorageStructure, VersionChange, WriteAs};
use ingot_common::waits::{bind_session, WaitRegistry, WaitTotal};
use ingot_common::{
    Column, Connection, Cost, EngineConfig, Error, IndexId, MonotonicClock, PreparedStatement,
    Result, Row, Schema, SessionId, SimClock, Snapshot, StmtHash, TableId, TxnId, Value,
    WalFsyncMode,
};
use ingot_executor::{
    dml::insert_one, execute_plan_snapshot, execute_plan_traced_snapshot, execute_statement_ctx,
    execute_statement_traced_ctx, DmlCtx, DmlObserver,
};
use ingot_planner::{
    normalize_template, optimize, BindArtifacts, Binder, BoundStatement, CachedPlan,
    OptimizerOptions, PlanCache, PlanCacheStats, PlannedStatement,
};
use ingot_sql::{param_count, parse_statement, ColumnDef, Statement};
use ingot_storage::{
    decode_row, encode_row, BufferStats, IoStats, Lsn, RowId, StorageEngine, Wal, WalEntry,
    WalRecord, WalStats,
};
use ingot_trace::{
    render_operator_tree, MetricKind, MetricsSnapshot, Sample, Stage, TraceBuilder, TraceConfig,
    Tracer,
};
use ingot_txn::{AbortCause, LockManager, LockMode, Resource, TxnManager};
use parking_lot::Mutex;

use crate::ash::{ActiveSession, AshSampler};
use crate::ima::{
    register_concurrency_tables, register_ima_tables, register_monitor_health_table,
    register_plan_cache_table, register_trace_tables, register_wait_tables, register_wal_table,
};
use crate::monitor::{
    AttributeDetail, IndexDetail, Monitor, StatSample, StatementSensor, TableDetail,
};

/// Capacity of the engine-global recent-wait ring behind `ima$wait_events`'
/// sibling history (`WaitRegistry::recent`).
const WAIT_RECENT_CAPACITY: usize = 1024;

/// Concurrent-session counters ("Current sessions, Maximum sessions" in the
/// Fig 3 statistics table).
#[derive(Debug, Default)]
pub struct SessionCounters {
    current: AtomicU64,
    peak: AtomicU64,
    next_id: AtomicU64,
}

impl SessionCounters {
    fn open(&self) -> SessionId {
        let cur = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(cur, Ordering::Relaxed);
        SessionId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    fn close(&self) {
        self.current.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently open sessions.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Peak concurrent sessions.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

pub use ingot_common::conn::StatementResult;

/// Result of a what-if estimation (no execution, no monitoring).
#[derive(Debug, Clone)]
pub struct EstimateResult {
    /// Estimated cost of the chosen plan.
    pub est: Cost,
    /// Indexes the chosen plan would use.
    pub used_indexes: Vec<IndexId>,
    /// True when a virtual index was chosen.
    pub uses_virtual: bool,
    /// Rendered plan tree.
    pub plan: String,
    /// Physical pages read while binding and optimizing this estimate
    /// (catalog statistics, virtual-index what-if probes).
    pub probe_io: u64,
}

/// One transaction's write-side state: whether a `Begin` record was appended
/// to the WAL (first mutation does it lazily) and the [`VersionChange`]s its
/// mutations produced. At commit the changes are stamped with the commit
/// timestamp; on abort they are undone newest-first (the transaction still
/// holds row-exclusive locks on every chain it touched, so undo cannot race
/// other writers).
#[derive(Debug, Default)]
struct TxnUndo {
    began: bool,
    ops: Vec<VersionChange>,
}

/// An Ingot engine instance: one database, one buffer pool, optional
/// integrated monitoring.
pub struct Engine {
    config: EngineConfig,
    sim_clock: SimClock,
    wall: MonotonicClock,
    storage: StorageEngine,
    wal: Arc<Wal>,
    catalog: SharedCatalog,
    monitor: Option<Arc<Monitor>>,
    tracer: Option<Arc<Tracer>>,
    locks: Arc<LockManager>,
    txns: Arc<TxnManager>,
    sessions: Arc<SessionCounters>,
    plan_cache: Arc<PlanCache>,
    statements_executed: AtomicU64,
    /// Per-transaction WAL/undo state, keyed by live transaction id.
    undo: Mutex<HashMap<TxnId, TxnUndo>>,
    /// Serialises [`Engine::checkpoint`] callers (daemon + admin paths).
    checkpoint_serial: Mutex<()>,
    /// Wait-event accounting; present when monitoring + wait events are on.
    waits: Option<Arc<WaitRegistry>>,
    /// The ASH sampler; present exactly when `waits` is.
    ash: Option<Arc<AshSampler>>,
    /// Swappable row source behind `ima$connections`. The virtual table is
    /// registered once (first [`Engine::attach_connections_provider`]) with a
    /// closure reading this slot, so a restarted in-process server re-attaches
    /// its fresh registry instead of leaving the table serving stale rows.
    conn_provider: Arc<Mutex<Option<ingot_catalog::VirtualProvider>>>,
}

/// Configures and builds an [`Engine`]. Obtained via [`Engine::builder`].
///
/// The storage backing is chosen by at most one of [`path`](Self::path)
/// (file-backed pages under a directory) and [`backend`](Self::backend)
/// (an arbitrary [`ingot_storage::DiskBackend`], e.g. a fault-injection
/// wrapper); with neither, pages live in memory.
///
/// ```
/// use ingot_common::EngineConfig;
/// use ingot_core::Engine;
///
/// let engine = Engine::builder()
///     .config(EngineConfig::monitoring())
///     .plan_cache_capacity(64)
///     .build()
///     .unwrap();
/// let session = engine.open_session();
/// # drop(session);
/// ```
pub struct EngineBuilder {
    config: EngineConfig,
    clock: Option<SimClock>,
    backend: Option<Box<dyn ingot_storage::DiskBackend>>,
    path: Option<std::path::PathBuf>,
}

impl EngineBuilder {
    /// Use `config` instead of [`EngineConfig::default`].
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Share an external simulated clock (benchmarks coordinate the main
    /// engine and the workload DB through one clock).
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Back pages with real files under `dir` — used for the workload
    /// database, so the storage daemon's periodic appends genuinely hit the
    /// disk (the paper's "Daemon" setup). Mutually exclusive with
    /// [`backend`](Self::backend).
    pub fn path(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.path = Some(dir.into());
        self
    }

    /// Back pages with an arbitrary disk backend — fault-injection wrappers
    /// in robustness tests, custom stores. Mutually exclusive with
    /// [`path`](Self::path).
    pub fn backend(mut self, backend: Box<dyn ingot_storage::DiskBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Override the shared plan cache's capacity (templates held). Zero
    /// disables plan caching entirely.
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.plan_cache_capacity = capacity;
        self
    }

    /// Build the engine. Fails when both a path and a backend were given,
    /// when the durability configuration is inconsistent, when opening a
    /// file-backed store fails, or when crash recovery finds a log that
    /// contradicts the checkpoint image.
    pub fn build(self) -> Result<Arc<Engine>> {
        if self.backend.is_some() && self.path.is_some() {
            return Err(Error::unsupported(
                "EngineBuilder: .path() and .backend() are mutually exclusive",
            ));
        }
        if self.config.wal_fsync_mode == WalFsyncMode::Group
            && self.config.group_commit_window_us == 0
        {
            return Err(Error::unsupported(
                "EngineBuilder: wal_fsync_mode=group needs group_commit_window_us > 0 \
                 (use wal_fsync_mode=always for one unbatched fsync per commit)",
            ));
        }
        if self.config.monitor_enabled && self.config.wait_events_enabled {
            if self.config.ash_sample_interval_ms == 0 {
                return Err(Error::unsupported(
                    "EngineBuilder: wait_events_enabled needs ash_sample_interval_ms > 0 \
                     (set wait_events_enabled=false to drop the subsystem entirely)",
                ));
            }
            if self.config.ash_ring_capacity == 0 {
                return Err(Error::unsupported(
                    "EngineBuilder: wait_events_enabled needs ash_ring_capacity > 0 \
                     (set wait_events_enabled=false to drop the subsystem entirely)",
                ));
            }
        }
        let clock = self.clock.unwrap_or_default();
        let (storage, wal) = if let Some(dir) = self.path {
            // Crash recovery, part 1: restore the page files to the last
            // durable checkpoint (recovery manifest), then open the WAL,
            // salvaging its valid prefix and truncating any torn tail.
            // Part 2 — replaying committed transactions on top of the
            // checkpoint image — runs below, once an engine exists to
            // re-execute replayed DDL.
            ingot_storage::recover(&dir)?;
            let wal = Wal::open_in_dir(&dir, &self.config)?;
            (
                StorageEngine::file_backed(dir, &self.config, clock.clone())?,
                wal,
            )
        } else if let Some(backend) = self.backend {
            (
                StorageEngine::with_backend(backend, &self.config, clock.clone()),
                Wal::in_memory(&self.config),
            )
        } else {
            (
                StorageEngine::in_memory(&self.config, clock.clone()),
                Wal::in_memory(&self.config),
            )
        };
        let engine = Engine::with_storage(self.config, clock, storage, wal)?;
        engine.replay_wal()?;
        // New commit timestamps must start above every stamp already in the
        // data pages — checkpointed versions as well as replayed ones.
        let max_ts = {
            let catalog = engine.catalog.read();
            catalog
                .tables()
                .map(|t| t.heap.max_commit_ts())
                .max()
                .unwrap_or(0)
        };
        engine.txns.restore_commit_seq(max_ts);
        Ok(engine)
    }
}

impl Engine {
    /// Start configuring an engine. The builder is the one construction
    /// path: storage backing, clock sharing and plan-cache sizing are all
    /// expressed on it, and [`EngineBuilder::build`] returns the instance.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            config: EngineConfig::default(),
            clock: None,
            backend: None,
            path: None,
        }
    }

    fn with_storage(
        config: EngineConfig,
        sim_clock: SimClock,
        storage: StorageEngine,
        wal: Wal,
    ) -> Result<Arc<Engine>> {
        let wall = MonotonicClock::new();
        let wal = Arc::new(wal);
        let mut catalog = Catalog::new(Arc::clone(storage.pool()), config.heap_main_pages);
        // Crash recovery, part 2a: re-attach the schema recorded in the
        // checkpoint manifest so WAL replay (part 2b, in `build`) finds its
        // tables. Base tables come back before any `ima$…` registration.
        if let Some(blob) = storage.checkpoint_meta()? {
            catalog.attach_schema(&blob)?;
        }
        let monitor = config
            .monitor_enabled
            .then(|| Arc::new(Monitor::new(&config, wall)));
        // Tracing rides on the monitoring infrastructure: no monitor, no
        // tracer (the "Original" setup stays untouched).
        let tracer = monitor.is_some().then(|| {
            Arc::new(Tracer::new(
                wall,
                &TraceConfig {
                    enabled: config.trace_enabled,
                    statement_capacity: config.trace_statement_capacity,
                    trace_capacity: config.trace_ring_capacity,
                },
            ))
        });
        let locks = Arc::new(LockManager::new(Duration::from_millis(
            config.lock_timeout_ms,
        )));
        let txns = Arc::new(TxnManager::new());
        let sessions = Arc::new(SessionCounters::default());
        let plan_cache = Arc::new(PlanCache::new(config.plan_cache_capacity));
        // Wait events + ASH ride on the monitor, like tracing: the
        // "Original" setup never constructs a registry and every guard on
        // the instrumented paths stays a no-op.
        let (waits, ash) = if monitor.is_some() && config.wait_events_enabled {
            let registry = Arc::new(WaitRegistry::with_clock(wall, WAIT_RECENT_CAPACITY));
            locks.set_wait_registry(Arc::clone(&registry));
            wal.set_wait_registry(Arc::clone(&registry));
            storage.pool().set_wait_registry(Arc::clone(&registry));
            txns.set_wait_registry(Arc::clone(&registry));
            let sampler = Arc::new(AshSampler::new(
                wall,
                config.ash_sample_interval_ms.saturating_mul(1_000_000),
                config.ash_ring_capacity,
            ));
            (Some(registry), Some(sampler))
        } else {
            (None, None)
        };
        if let Some(m) = &monitor {
            register_ima_tables(&mut catalog, m)?;
            register_monitor_health_table(&mut catalog, m)?;
            register_concurrency_tables(&mut catalog, &locks, &txns, &sessions)?;
            register_plan_cache_table(&mut catalog, &plan_cache)?;
            register_wal_table(&mut catalog, &wal)?;
        }
        if let (Some(registry), Some(sampler)) = (&waits, &ash) {
            register_wait_tables(&mut catalog, registry, sampler)?;
        }
        if let Some(t) = &tracer {
            register_trace_tables(&mut catalog, t)?;
        }
        Ok(Arc::new(Engine {
            locks,
            txns,
            sessions,
            plan_cache,
            statements_executed: AtomicU64::new(0),
            sim_clock,
            wall,
            storage,
            wal,
            catalog: SharedCatalog::new(catalog),
            monitor,
            tracer,
            config,
            undo: Mutex::new(HashMap::new()),
            checkpoint_serial: Mutex::new(()),
            waits,
            ash,
            conn_provider: Arc::new(Mutex::new(None)),
        }))
    }

    /// Crash recovery, part 2b: replay the salvaged WAL on top of the
    /// checkpoint image — all DDL, plus the data mutations of transactions
    /// whose `Commit` record reached the disk. Loser transactions (no commit
    /// record) are discarded: the no-steal buffer pool guarantees none of
    /// their pages were flushed, so skipping their records *is* the undo.
    /// Runs exactly once, from [`EngineBuilder::build`].
    fn replay_wal(self: &Arc<Self>) -> Result<()> {
        let entries = self.wal.take_recovered();
        if entries.is_empty() {
            return Ok(());
        }
        // Records at or below the newest Checkpoint record whose epoch made
        // it into the recovery manifest are already reflected in the page
        // files (a crash between manifest install and log truncation leaves
        // both the checkpoint record and everything before it in the log).
        let installed = self.storage.checkpoint_epoch();
        let mut low_water: Lsn = 0;
        // Winner transactions mapped to the commit timestamp their versions
        // were stamped with pre-crash: replay reconstructs version chains
        // with the same stamps, so post-recovery snapshots agree with
        // pre-crash ones.
        let mut committed: HashMap<TxnId, u64> = HashMap::new();
        for e in &entries {
            match e.record {
                WalRecord::Checkpoint { epoch } if epoch <= installed => {
                    low_water = low_water.max(e.lsn);
                }
                WalRecord::Commit { txn, commit_ts } => {
                    committed.insert(txn, commit_ts);
                    self.txns.restore_commit_seq(commit_ts);
                }
                _ => {}
            }
        }
        self.wal.set_replaying(true);
        let replayed = self.replay_entries(&entries, low_water, &committed);
        self.wal.set_replaying(false);
        let (records, txns) = replayed?;
        self.wal.record_replay(records, txns);
        Ok(())
    }

    fn replay_entries(
        self: &Arc<Self>,
        entries: &[WalEntry],
        low_water: Lsn,
        committed: &HashMap<TxnId, u64>,
    ) -> Result<(u64, u64)> {
        let session = self.open_session();
        let mut records = 0u64;
        let mut txns: HashSet<TxnId> = HashSet::new();
        for e in entries.iter().filter(|e| e.lsn > low_water) {
            match &e.record {
                // Transaction bookkeeping carries no data to redo.
                WalRecord::Begin { .. }
                | WalRecord::Commit { .. }
                | WalRecord::Abort { .. }
                | WalRecord::Checkpoint { .. } => {}
                // DDL is logged only after it succeeded originally, so
                // re-executing it must succeed too; a failure means log and
                // checkpoint image disagree, and replay stops loudly rather
                // than continue against a wrong schema.
                WalRecord::Ddl { sql } => {
                    session.execute(sql).map_err(|err| {
                        Error::storage(format!("WAL replay: DDL `{sql}` failed: {err}"))
                    })?;
                    records += 1;
                }
                // Winner data records replay as already-committed versions,
                // stamped with the transaction's logged commit timestamp —
                // per-row WAL order matches commit order (row locks release
                // only after stamping), so the rebuilt chains match the
                // pre-crash ones.
                WalRecord::Insert { txn, table, row } if committed.contains_key(txn) => {
                    let Some(&cts) = committed.get(txn) else {
                        continue;
                    };
                    let catalog = self.catalog.read();
                    let id = catalog.resolve_table(table)?;
                    catalog.insert_row_v(id, &decode_row(row)?, WriteAs::Committed(cts))?;
                    records += 1;
                    txns.insert(*txn);
                }
                WalRecord::Delete { txn, table, old } if committed.contains_key(txn) => {
                    let Some(&cts) = committed.get(txn) else {
                        continue;
                    };
                    let catalog = self.catalog.read();
                    let id = catalog.resolve_table(table)?;
                    let rid = find_row_by_image(&catalog, id, &decode_row(old)?)?;
                    catalog.delete_row_v(id, rid, WriteAs::Committed(cts))?;
                    records += 1;
                    txns.insert(*txn);
                }
                WalRecord::Update {
                    txn,
                    table,
                    old,
                    new,
                } if committed.contains_key(txn) => {
                    let Some(&cts) = committed.get(txn) else {
                        continue;
                    };
                    let catalog = self.catalog.read();
                    let id = catalog.resolve_table(table)?;
                    let rid = find_row_by_image(&catalog, id, &decode_row(old)?)?;
                    catalog.update_row_v(id, rid, &decode_row(new)?, WriteAs::Committed(cts))?;
                    records += 1;
                    txns.insert(*txn);
                }
                // A data record of a loser transaction: discard.
                WalRecord::Insert { .. } | WalRecord::Delete { .. } | WalRecord::Update { .. } => {}
            }
        }
        Ok((records, txns.len() as u64))
    }

    /// Open a session.
    pub fn open_session(self: &Arc<Self>) -> Session {
        let id = self.sessions.open();
        let ash = self.ash.as_ref().map(|s| s.register_session(id.raw()));
        Session {
            id,
            engine: Arc::clone(self),
            txn: Mutex::new(None),
            snap: Mutex::new(None),
            ash,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The monitor, when this instance was built with monitoring.
    pub fn monitor(&self) -> Option<&Arc<Monitor>> {
        self.monitor.as_ref()
    }

    /// The tracer, when this instance was built with monitoring (tracing
    /// rides on the monitor; it may still be disabled at runtime).
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Flip runtime tracing on or off (also reachable as `SET trace = on`).
    /// No-op on an unmonitored instance.
    pub fn set_tracing(&self, on: bool) {
        if let Some(t) = &self.tracer {
            t.set_enabled(on);
        }
    }

    /// Is runtime tracing currently enabled?
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.as_ref().is_some_and(|t| t.enabled())
    }

    /// The wait-event registry, when the wait subsystem is wired in
    /// (monitoring + `wait_events_enabled`).
    pub fn wait_registry(&self) -> Option<&Arc<WaitRegistry>> {
        self.waits.as_ref()
    }

    /// The ASH sampler, when the wait subsystem is wired in. The daemon
    /// calls [`AshSampler::sample_if_due`] through this on every poll so an
    /// otherwise-idle engine still gets its timeline sampled.
    pub fn ash_sampler(&self) -> Option<&Arc<AshSampler>> {
        self.ash.as_ref()
    }

    /// Attach (or replace) the row source behind the `ima$connections`
    /// virtual table. Called by a server embedding this engine when it
    /// starts accepting connections; the table itself is registered on the
    /// first attach and thereafter reads through a swappable slot, so a
    /// server restarted on the same engine serves fresh rows rather than a
    /// stale captured registry. No-op registration on an unmonitored engine
    /// (`ima$…` tables need the monitor's catalog surface).
    pub fn attach_connections_provider(
        &self,
        provider: ingot_catalog::VirtualProvider,
    ) -> Result<()> {
        let mut slot = self.conn_provider.lock();
        let first = slot.is_none();
        *slot = Some(provider);
        drop(slot);
        if first && self.monitor.is_some() {
            let hook = Arc::clone(&self.conn_provider);
            let mut catalog = self.catalog.write();
            // A previous attach/detach cycle may have left the table
            // registered; only that duplicate is expected — anything else
            // would silently lose ima$connections.
            match crate::ima::register_connections_table(
                &mut catalog,
                Arc::new(move || hook.lock().as_ref().map(|p| p()).unwrap_or_default()),
            ) {
                Ok(()) => {}
                Err(ingot_common::Error::Catalog(msg)) if msg.contains("already exists") => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Detach the `ima$connections` row source: the table stays registered
    /// but reports an empty fleet until the next attach.
    pub fn detach_connections_provider(&self) {
        *self.conn_provider.lock() = None;
    }

    /// The shared simulated clock.
    pub fn sim_clock(&self) -> &SimClock {
        &self.sim_clock
    }

    /// The engine's wall clock.
    pub fn wall_clock(&self) -> &MonotonicClock {
        &self.wall
    }

    /// The shared catalog (advanced use: analyzer, workload loaders).
    /// `read()` returns an immutable snapshot — cheap, never blocked by
    /// writers; `write()` opens a copy-on-write schema-change guard.
    pub fn catalog(&self) -> &SharedCatalog {
        &self.catalog
    }

    /// The lock manager (statistics sensor input).
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// The transaction manager.
    pub fn txns(&self) -> &Arc<TxnManager> {
        &self.txns
    }

    /// Session counters.
    pub fn sessions(&self) -> &Arc<SessionCounters> {
        &self.sessions
    }

    /// The shared plan cache (all sessions probe and fill the same one).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// Plan-cache counter snapshot (also queryable as `ima$plan_cache`).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Cumulative physical I/O of this instance.
    pub fn io_stats(&self) -> IoStats {
        self.storage.io_stats()
    }

    /// Buffer-pool counters.
    pub fn buffer_stats(&self) -> BufferStats {
        self.storage.buffer_stats()
    }

    /// Statements executed over the engine's lifetime.
    pub fn statements_executed(&self) -> u64 {
        self.statements_executed.load(Ordering::Relaxed)
    }

    /// Flush all dirty pages to the storage backend.
    ///
    /// Prefer [`Engine::checkpoint`]: a bare flush between checkpoints writes
    /// pages the recovery manifest does not describe, and crash recovery
    /// truncates data files back to the manifest state before replaying the
    /// WAL — redo correctness assumes pages move to disk only at checkpoints.
    /// Kept for buffer-pool experiments and tests.
    pub fn flush(&self) -> Result<()> {
        self.storage.flush()
    }

    /// Take a durable checkpoint: quiesce DML, cut the WAL, flush every dirty
    /// page, install the recovery manifest (with an embedded schema snapshot)
    /// and truncate the log to the cut. Returns the checkpoint epoch (0 for
    /// backends without checkpoints).
    ///
    /// The quiesce step waits (bounded) for in-flight transactions to drain
    /// while parking new `begin`s, so the flushed pages and the WAL
    /// truncation point describe the same instant. A caller holding an open
    /// explicit transaction on the same thread would deadlock the drain and
    /// gets the quiesce timeout error instead.
    pub fn checkpoint(&self) -> Result<u64> {
        let _one_at_a_time = self.checkpoint_serial.lock();
        let _quiesced = self.txns.quiesce(Duration::from_secs(5))?;
        let epoch = self.storage.checkpoint_epoch() + 1;
        let cut = self.wal.append(&WalRecord::Checkpoint { epoch })?;
        self.wal.sync_to(cut)?;
        let schema = self.catalog.read().dump_schema();
        let installed = self.storage.checkpoint(&schema)?;
        // Everything at or below `cut` is now redundant. A crash inside
        // truncation leaves the full old log, which replay tolerates: the
        // manifest's epoch marks `cut` as the low-water mark.
        self.wal.truncate_to(cut, epoch)?;
        Ok(installed)
    }

    /// Garbage-collect dead versions: every version whose committed `end`
    /// lies at or below the oldest-active-snapshot watermark is invisible to
    /// all present and future snapshots and is physically reclaimed (chain
    /// relink + per-version index entry removal). Runs under a short
    /// transaction quiesce so no scan holds a row id into a chain being
    /// relinked; a busy engine returns the quiesce timeout instead (the
    /// daemon just retries next poll). Returns versions reclaimed.
    pub fn mvcc_gc(&self) -> Result<u64> {
        let _quiesced = self.txns.quiesce(Duration::from_millis(200))?;
        let watermark = self.txns.gc_watermark();
        let catalog = self.catalog.read();
        let ids: Vec<TableId> = catalog.tables().map(|t| t.meta.id).collect();
        let mut removed = 0u64;
        let (mut versions, mut chains, mut longest) = (0u64, 0u64, 0u64);
        for id in ids {
            removed += catalog.gc_table(id, watermark)?;
            let (v, c, l) = catalog.chain_stats(id)?;
            versions += v;
            chains += c;
            longest = longest.max(l);
        }
        drop(catalog);
        self.txns.note_gc(removed, watermark);
        self.txns.note_chain_shape(versions, chains, longest);
        Ok(removed)
    }

    /// The write-ahead log: crash scripting (fault plans), LSN watermarks
    /// and counters.
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// WAL counter snapshot (also queryable as `ima$wal`).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Total data pages (tables + indexes) — the Fig 7 size metric.
    pub fn total_data_pages(&self) -> u64 {
        self.catalog.read().total_data_pages()
    }

    /// Record one system-wide statistics sample (statistics sensor). Called
    /// by the storage daemon on its poll interval and by the engine itself
    /// every few statements.
    pub fn sample_statistics(&self) {
        let Some(monitor) = &self.monitor else { return };
        let locks = self.locks.stats();
        let buf = self.buffer_stats();
        let io = self.io_stats();
        monitor.record_statistics(StatSample {
            at_ns: self.wall.now_nanos(),
            at_sim_secs: self.sim_clock.now_secs(),
            sessions: self.sessions.current(),
            max_sessions: self.sessions.peak(),
            locks_held: locks.held,
            lock_waiting: locks.waiting,
            lock_waits_total: locks.waits_total,
            deadlocks_total: locks.deadlocks_total,
            active_txns: self.txns.active_count(),
            cache_hits: buf.hits,
            cache_misses: buf.misses,
            physical_reads: io.reads(),
            physical_writes: io.writes,
            statements_executed: self.statements_executed(),
        });
    }

    // ---- what-if interface (used by the analyzer) ----------------------------

    /// Register a virtual (hypothetical) index on `table(columns…)`.
    ///
    /// Invalidates the plan cache: registration publishes a new schema epoch
    /// anyway, but dropping the entries eagerly keeps `estimate(...,
    /// include_virtual = true)` from ever observing a cached non-virtual plan.
    pub fn add_virtual_index(&self, table: &str, columns: &[&str]) -> Result<IndexId> {
        let result = {
            let mut catalog = self.catalog.write();
            let id = catalog.resolve_table(table)?;
            let schema = catalog.table(id)?.meta.schema.clone();
            let cols: Vec<usize> = columns
                .iter()
                .map(|c| {
                    schema
                        .index_of(c)
                        .ok_or_else(|| Error::binder(format!("unknown column '{c}'")))
                })
                .collect::<Result<_>>()?;
            catalog.add_virtual_index(id, cols)
        };
        self.plan_cache.invalidate_all();
        result
    }

    /// Drop all virtual indexes (end of a what-if session). Invalidates the
    /// plan cache, mirroring [`Engine::add_virtual_index`].
    pub fn clear_virtual_indexes(&self) {
        self.catalog.write().clear_virtual_indexes();
        self.plan_cache.invalidate_all();
    }

    /// Estimate a statement without executing it, optionally letting virtual
    /// indexes compete (`include_virtual`). Not recorded by the monitor.
    pub fn estimate(&self, sql: &str, include_virtual: bool) -> Result<EstimateResult> {
        let stmt = parse_statement(sql)?;
        let catalog = self.catalog.read();
        let io_before = self.storage.io_stats().total();
        let (bound, _) = Binder::new(&catalog).bind(&stmt)?;
        let planned = optimize(&catalog, &bound, OptimizerOptions { include_virtual })?;
        let probe_io = self.storage.io_stats().total().saturating_sub(io_before);
        let (plan, uses_virtual) = match &planned {
            PlannedStatement::Query(q) => (q.root.to_string(), q.uses_virtual),
            other => (format!("{other:?}"), false),
        };
        Ok(EstimateResult {
            est: planned.estimated_cost(),
            used_indexes: planned.used_indexes().to_vec(),
            uses_virtual,
            plan,
            probe_io,
        })
    }

    /// Assemble a point-in-time [`MetricsSnapshot`] of the engine: execution
    /// counters, buffer-pool and I/O totals, lock-manager state, monitor and
    /// tracer self-cost, and the per-statement latency histograms as proper
    /// Prometheus histograms. The shell renders it with `\metrics`; the
    /// storage daemon flattens it into the workload DB.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.push(
            "ingot_statements_executed_total",
            "Statements executed since engine start.",
            MetricKind::Counter,
            vec![Sample::plain(self.statements_executed() as f64)],
        );
        snap.push(
            "ingot_sessions",
            "Open sessions (current) and high-water mark (peak).",
            MetricKind::Gauge,
            vec![
                Sample::labelled(
                    vec![("state".into(), "current".into())],
                    self.sessions.current() as f64,
                ),
                Sample::labelled(
                    vec![("state".into(), "peak".into())],
                    self.sessions.peak() as f64,
                ),
            ],
        );
        let buf = self.buffer_stats();
        snap.push(
            "ingot_buffer_pool_requests_total",
            "Buffer-pool page requests by outcome.",
            MetricKind::Counter,
            vec![
                Sample::labelled(vec![("outcome".into(), "hit".into())], buf.hits as f64),
                Sample::labelled(vec![("outcome".into(), "miss".into())], buf.misses as f64),
            ],
        );
        let io = self.io_stats();
        snap.push(
            "ingot_disk_pages_total",
            "Physical page transfers by kind.",
            MetricKind::Counter,
            vec![
                Sample::labelled(
                    vec![("kind".into(), "seq_read".into())],
                    io.seq_reads as f64,
                ),
                Sample::labelled(
                    vec![("kind".into(), "rand_read".into())],
                    io.rand_reads as f64,
                ),
                Sample::labelled(vec![("kind".into(), "write".into())], io.writes as f64),
            ],
        );
        let locks = self.locks.stats();
        snap.push(
            "ingot_locks_held",
            "Locks currently granted.",
            MetricKind::Gauge,
            vec![Sample::plain(locks.held as f64)],
        );
        snap.push(
            "ingot_lock_waits_total",
            "Lock requests that had to wait.",
            MetricKind::Counter,
            vec![Sample::plain(locks.waits_total as f64)],
        );
        snap.push(
            "ingot_deadlocks_total",
            "Deadlocks detected.",
            MetricKind::Counter,
            vec![Sample::plain(locks.deadlocks_total as f64)],
        );
        snap.push(
            "ingot_txn_commit_seq",
            "Highest published MVCC commit timestamp.",
            MetricKind::Gauge,
            vec![Sample::plain(self.txns.read_ts() as f64)],
        );
        snap.push(
            "ingot_txn_active_snapshots",
            "Registered read snapshots (each pins the GC watermark).",
            MetricKind::Gauge,
            vec![Sample::plain(self.txns.active_snapshots().len() as f64)],
        );
        snap.push(
            "ingot_txn_aborts_total",
            "Transactions aborted, by cause.",
            MetricKind::Counter,
            AbortCause::ALL
                .iter()
                .map(|&c| {
                    Sample::labelled(
                        vec![("cause".into(), c.name().into())],
                        self.txns.aborts_by_cause(c) as f64,
                    )
                })
                .collect(),
        );
        snap.push(
            "ingot_mvcc_validation_failures_total",
            "First-committer-wins validation failures at commit.",
            MetricKind::Counter,
            vec![Sample::plain(self.txns.validation_failures() as f64)],
        );
        snap.push(
            "ingot_mvcc_gc_total",
            "Version-chain garbage collection: sweeps run and versions reclaimed.",
            MetricKind::Counter,
            vec![
                Sample::labelled(
                    vec![("kind".into(), "runs".into())],
                    self.txns.gc_runs() as f64,
                ),
                Sample::labelled(
                    vec![("kind".into(), "versions_removed".into())],
                    self.txns.gc_versions_removed() as f64,
                ),
            ],
        );
        snap.push(
            "ingot_mvcc_gc_watermark",
            "Oldest-active-snapshot watermark of the most recent GC sweep.",
            MetricKind::Gauge,
            vec![Sample::plain(self.txns.gc_last_watermark() as f64)],
        );
        let pc = self.plan_cache.stats();
        snap.push(
            "ingot_plan_cache_events_total",
            "Plan-cache probe and maintenance events by kind.",
            MetricKind::Counter,
            vec![
                Sample::labelled(vec![("event".into(), "hit".into())], pc.hits as f64),
                Sample::labelled(vec![("event".into(), "miss".into())], pc.misses as f64),
                Sample::labelled(
                    vec![("event".into(), "eviction".into())],
                    pc.evictions as f64,
                ),
                Sample::labelled(
                    vec![("event".into(), "invalidation".into())],
                    pc.invalidations as f64,
                ),
            ],
        );
        snap.push(
            "ingot_plan_cache_entries",
            "Cached plan templates (live) and configured capacity.",
            MetricKind::Gauge,
            vec![
                Sample::labelled(vec![("kind".into(), "live".into())], pc.entries as f64),
                Sample::labelled(vec![("kind".into(), "capacity".into())], pc.capacity as f64),
            ],
        );
        let wal = self.wal.stats();
        snap.push(
            "ingot_wal_appends_total",
            "WAL records appended.",
            MetricKind::Counter,
            vec![Sample::plain(wal.appends as f64)],
        );
        snap.push(
            "ingot_wal_fsyncs_total",
            "WAL durability barriers completed.",
            MetricKind::Counter,
            vec![Sample::plain(wal.fsyncs as f64)],
        );
        snap.push(
            "ingot_wal_group_commit_total",
            "Group-commit batches led and commits that rode one.",
            MetricKind::Counter,
            vec![
                Sample::labelled(vec![("kind".into(), "groups".into())], wal.groups as f64),
                Sample::labelled(
                    vec![("kind".into(), "commits".into())],
                    wal.grouped_commits as f64,
                ),
            ],
        );
        snap.push(
            "ingot_wal_lsn",
            "WAL log sequence numbers: highest appended vs highest durable.",
            MetricKind::Gauge,
            vec![
                Sample::labelled(
                    vec![("kind".into(), "current".into())],
                    wal.current_lsn as f64,
                ),
                Sample::labelled(
                    vec![("kind".into(), "durable".into())],
                    wal.durable_lsn as f64,
                ),
            ],
        );
        if let Some(registry) = &self.waits {
            let totals = registry.snapshot();
            snap.push(
                "ingot_wait_event_ns_total",
                "Nanoseconds lost per wait event.",
                MetricKind::Counter,
                totals
                    .iter()
                    .map(|t| {
                        Sample::labelled(
                            vec![("event".into(), t.event.name().into())],
                            t.total_ns as f64,
                        )
                    })
                    .collect(),
            );
            snap.push(
                "ingot_wait_event_count_total",
                "Completed waits per wait event.",
                MetricKind::Counter,
                totals
                    .iter()
                    .map(|t| {
                        Sample::labelled(
                            vec![("event".into(), t.event.name().into())],
                            t.count as f64,
                        )
                    })
                    .collect(),
            );
        }
        if let Some(sampler) = &self.ash {
            snap.push(
                "ingot_ash_samples_total",
                "Active Session History samples taken.",
                MetricKind::Counter,
                vec![Sample::plain(sampler.samples_taken() as f64)],
            );
        }
        if let Some(m) = &self.monitor {
            snap.push(
                "ingot_monitor_self_time_ns_total",
                "Nanoseconds spent inside monitoring code.",
                MetricKind::Counter,
                vec![Sample::plain(m.self_time_ns() as f64)],
            );
            snap.push(
                "ingot_monitor_sensor_calls_total",
                "Monitor sensor invocations.",
                MetricKind::Counter,
                vec![Sample::plain(m.sensor_calls() as f64)],
            );
            snap.push(
                "ingot_monitor_statements_recorded_total",
                "Statements recorded by the monitor.",
                MetricKind::Counter,
                vec![Sample::plain(m.statements_recorded() as f64)],
            );
        }
        if let Some(t) = &self.tracer {
            snap.push(
                "ingot_trace_enabled",
                "1 when runtime tracing is on.",
                MetricKind::Gauge,
                vec![Sample::plain(if t.enabled() { 1.0 } else { 0.0 })],
            );
            snap.push(
                "ingot_trace_self_time_ns_total",
                "Nanoseconds spent inside tracer bookkeeping.",
                MetricKind::Counter,
                vec![Sample::plain(t.self_time_ns() as f64)],
            );
            snap.push(
                "ingot_trace_statements_total",
                "Statements traced.",
                MetricKind::Counter,
                vec![Sample::plain(t.statements_traced() as f64)],
            );
            let mut samples = Vec::new();
            for (hash, hist) in t.histograms() {
                let label = hash.to_string();
                for (_, _, hi, _, cum) in hist.rows() {
                    samples.push(Sample {
                        suffix: "_bucket",
                        labels: vec![
                            ("hash".into(), label.clone()),
                            ("le".into(), hi.to_string()),
                        ],
                        value: cum as f64,
                    });
                }
                samples.push(Sample {
                    suffix: "_bucket",
                    labels: vec![("hash".into(), label.clone()), ("le".into(), "+Inf".into())],
                    value: hist.total() as f64,
                });
                samples.push(Sample {
                    suffix: "_sum",
                    labels: vec![("hash".into(), label.clone())],
                    value: hist.sum_ns() as f64,
                });
                samples.push(Sample {
                    suffix: "_count",
                    labels: vec![("hash".into(), label)],
                    value: hist.total() as f64,
                });
            }
            if !samples.is_empty() {
                snap.push(
                    "ingot_statement_latency_ns",
                    "Statement wall-clock latency by statement hash.",
                    MetricKind::Histogram,
                    samples,
                );
            }
        }
        snap
    }

    // ---- transaction completion (WAL-ordered) ----------------------------

    /// Record one applied data mutation of `txn`: push its version change
    /// (the commit stamp set / abort undo list) and lazily append the
    /// transaction's `Begin` WAL record on its first mutation. The DML
    /// record itself is appended by the caller.
    fn note_mutation(&self, txn: TxnId, op: VersionChange) -> Result<()> {
        let need_begin = {
            let mut undo = self.undo.lock();
            let entry = undo.entry(txn).or_default();
            entry.ops.push(op);
            !std::mem::replace(&mut entry.began, true)
        };
        if need_begin {
            self.wal.append(&WalRecord::Begin { txn })?;
        }
        Ok(())
    }

    /// Commit `txn`. Ordering, each step gated on the previous:
    ///
    /// 1. first-committer-wins validation ([`TxnManager::validate_write_set`])
    ///    — write-time conflict checks already failed any statement whose
    ///    target was superseded, so the write set is intact here; the call is
    ///    the recorded validation point and must precede `txns.commit`;
    /// 2. reserve a commit timestamp ([`TxnManager::start_commit`] — no lock
    ///    held, so concurrent committers still share group-commit batches);
    /// 3. append the `Commit` record carrying that timestamp and wait for
    ///    the configured durability barrier — a barrier failure abandons the
    ///    timestamp and rolls the transaction back: an un-durable commit is
    ///    never acknowledged;
    /// 4. stamp the write-set versions with the timestamp and publish it —
    ///    only now do other snapshots start seeing the transaction's rows;
    /// 5. release locks and retire the transaction.
    fn commit_txn(&self, txn: TxnId) -> Result<()> {
        if let Err(e) = self.txns.validate_write_set(txn, None) {
            self.abort_txn_with(txn, AbortCause::from_error(&e));
            return Err(e);
        }
        let undo = self.undo.lock().remove(&txn);
        let Some(undo) = undo.filter(|u| !u.ops.is_empty()) else {
            // Read-only (or no-op) transaction: nothing to log or stamp, so
            // no durability barrier is owed before acknowledging.
            self.locks.release_all(txn);
            self.txns.commit_read_only(txn);
            return Ok(());
        };
        let ticket = self.txns.start_commit();
        // A non-empty write set implies `began`: `note_mutation` pushes the
        // first op and appends the Begin record under the same undo-map
        // lock, so there is no path here with ops but no Begin.
        debug_assert!(undo.began, "write set without a Begin record");
        if !self.wal.is_replaying() {
            let durable = self
                .wal
                .append(&WalRecord::Commit {
                    txn,
                    commit_ts: ticket.ts(),
                })
                .and_then(|lsn| self.wal.commit_barrier(lsn));
            if let Err(e) = durable {
                // Put the write set back so the abort path can undo it; the
                // dropped ticket abandons the reserved timestamp.
                drop(ticket);
                self.undo.lock().insert(txn, undo);
                self.abort_txn_with(txn, AbortCause::Other);
                return Err(e);
            }
        }
        // Stamp, then publish: a snapshot that can read the published
        // timestamp sees either all of this transaction's versions or (for
        // older snapshots) none. A stamp failure is a storage-level
        // inconsistency; it still publishes and releases (the WAL holds the
        // commit record, so recovery is the authority) but surfaces loudly.
        let mut stamp_err = None;
        {
            let catalog = self.catalog.read();
            for change in &undo.ops {
                if let Err(e) = catalog.apply_version_commit(change, ticket.ts()) {
                    stamp_err.get_or_insert(e);
                }
            }
        }
        ticket.publish();
        self.locks.release_all(txn);
        self.txns.commit(txn);
        match stamp_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Abort `txn`: reverse its applied mutations (version undo, newest
    /// first), append a best-effort `Abort` record and release its locks.
    /// Infallible — abort runs from error paths and `Drop`, which cannot
    /// propagate. An undo failure is tolerable because the WAL, which holds
    /// no `Commit` record for `txn`, stays the authority on the next
    /// recovery; the `Abort` record is purely diagnostic.
    fn abort_txn(&self, txn: TxnId) {
        self.abort_txn_with(txn, AbortCause::User);
    }

    /// [`Engine::abort_txn`] with an explicit [`AbortCause`] for the
    /// per-cause counters behind `ima$transactions`.
    fn abort_txn_with(&self, txn: TxnId, cause: AbortCause) {
        if let Some(undo) = self.undo.lock().remove(&txn) {
            let catalog = self.catalog.read();
            for op in undo.ops.iter().rev() {
                if catalog.apply_version_undo(op).is_err() {
                    // The WAL (no Commit record) stays the recovery
                    // authority; surface the inconsistency instead of
                    // swallowing it.
                    self.txns.note_undo_failure();
                }
            }
            if undo.began && !self.wal.is_replaying() {
                let _ = self.wal.append(&WalRecord::Abort { txn });
            }
        }
        self.locks.release_all(txn);
        self.txns.abort_with(txn, cause);
    }
}

/// Locate the live (visible-at-latest) row holding exactly `image`. WAL
/// replay identifies Delete/Update targets by image because physical row ids
/// are not stable across recovery. Identical duplicate rows are
/// interchangeable, so matching the first is sound. Strict on absence: a
/// missing image means the log and the data pages disagree, which must
/// surface, not be papered over.
fn find_row_by_image(catalog: &Catalog, table: TableId, image: &Row) -> Result<RowId> {
    let entry = catalog.table(table)?;
    for item in entry.scan_visible(&Snapshot::latest()) {
        let (rid, row) = item?;
        if row == *image {
            return Ok(rid);
        }
    }
    Err(Error::storage(format!(
        "no row in '{}' matches the logged image",
        entry.meta.name
    )))
}

/// Observes each applied DML mutation on behalf of one transaction: pushes
/// its logical undo and appends the matching WAL record. Inserted/updated
/// images are re-read from the heap so the log carries exactly the stored
/// (schema-coerced) representation; pre-images arrive already canonical
/// because the executor read them from the heap.
struct WalDmlObserver<'a> {
    engine: &'a Engine,
    catalog: &'a Catalog,
    txn: TxnId,
}

impl WalDmlObserver<'_> {
    fn table_name(&self, table: TableId) -> Result<String> {
        Ok(self.catalog.table(table)?.meta.name.clone())
    }

    fn stored_image(&self, table: TableId, rid: RowId) -> Result<Row> {
        self.catalog.table(table)?.heap.get(rid)
    }
}

impl DmlObserver for WalDmlObserver<'_> {
    fn on_insert(
        &self,
        table: TableId,
        rid: RowId,
        _row: &Row,
        change: &VersionChange,
    ) -> Result<()> {
        if self.engine.wal.is_replaying() {
            return Ok(());
        }
        let image = self.stored_image(table, rid)?;
        // Undo info is recorded before the fallible WAL append: if the
        // append fails mid-statement, the abort path still knows how to
        // reverse this already-applied version.
        self.engine.note_mutation(self.txn, change.clone())?;
        self.engine.wal.append(&WalRecord::Insert {
            txn: self.txn,
            table: self.table_name(table)?,
            row: encode_row(&image),
        })?;
        Ok(())
    }

    fn on_delete(
        &self,
        table: TableId,
        _rid: RowId,
        old: &Row,
        change: &VersionChange,
    ) -> Result<()> {
        if self.engine.wal.is_replaying() {
            return Ok(());
        }
        self.engine.note_mutation(self.txn, change.clone())?;
        self.engine.wal.append(&WalRecord::Delete {
            txn: self.txn,
            table: self.table_name(table)?,
            old: encode_row(old),
        })?;
        Ok(())
    }

    fn on_update(
        &self,
        table: TableId,
        _old_rid: RowId,
        new_rid: RowId,
        old: &Row,
        _new: &Row,
        changes: &[VersionChange],
    ) -> Result<()> {
        if self.engine.wal.is_replaying() {
            return Ok(());
        }
        let new_image = self.stored_image(table, new_rid)?;
        for change in changes {
            self.engine.note_mutation(self.txn, change.clone())?;
        }
        self.engine.wal.append(&WalRecord::Update {
            txn: self.txn,
            table: self.table_name(table)?,
            old: encode_row(old),
            new: encode_row(&new_image),
        })?;
        Ok(())
    }
}

/// A connection to the engine. Statements auto-commit unless an explicit
/// transaction is open via [`Session::begin`].
pub struct Session {
    engine: Arc<Engine>,
    id: SessionId,
    txn: Mutex<Option<TxnId>>,
    /// The open explicit transaction's read snapshot, taken lazily at its
    /// first statement and held for the whole transaction (snapshot
    /// isolation). Auto-commit statements take a fresh snapshot each and
    /// never store it here.
    snap: Mutex<Option<Snapshot>>,
    /// This session's ASH slot (wait sink + current-statement cell);
    /// `None` when the wait subsystem is off.
    ash: Option<Arc<ActiveSession>>,
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(txn) = self.txn.lock().take() {
            // An open transaction dropped without commit aborts: its data
            // changes are reversed and its locks release.
            self.engine.abort_txn(txn);
        }
        if let (Some(sampler), Some(slot)) = (&self.engine.ash, &self.ash) {
            sampler.deregister_session(slot.session_id());
        }
        self.engine.sessions.close();
    }
}

impl Session {
    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The engine behind the session.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Cumulative wait totals charged to this session, one row per
    /// [`ingot_common::WaitEvent`]. Empty when the wait subsystem is off.
    pub fn wait_totals(&self) -> Vec<WaitTotal> {
        self.ash
            .as_ref()
            .map(|s| s.waits().counters().snapshot())
            .unwrap_or_default()
    }

    /// This session's ASH slot (wait sink + current-statement cell), `None`
    /// when the wait subsystem is off. The server publishes each wire
    /// connection's slot into `ima$connections` so the fleet view shows the
    /// live wait event per peer.
    pub fn ash_slot(&self) -> Option<&Arc<ActiveSession>> {
        self.ash.as_ref()
    }

    /// Is an explicit transaction currently open on this session?
    pub fn in_transaction(&self) -> bool {
        self.txn.lock().is_some()
    }

    /// Open an explicit transaction (locks held until commit/rollback).
    pub fn begin(&self) -> Result<()> {
        let mut txn = self.txn.lock();
        if txn.is_some() {
            return Err(Error::execution("transaction already open"));
        }
        *txn = Some(self.engine.txns.begin());
        Ok(())
    }

    /// Commit the open transaction. The WAL `Commit` record reaches the
    /// configured durability barrier *before* any lock is released or the
    /// commit acknowledged; on a barrier failure the transaction is rolled
    /// back instead and the error returned — an un-durable commit is never
    /// acknowledged.
    pub fn commit(&self) -> Result<()> {
        let txn = self
            .txn
            .lock()
            .take()
            .ok_or_else(|| Error::execution("no open transaction"))?;
        *self.snap.lock() = None;
        self.engine.commit_txn(txn)
    }

    /// Roll back the open transaction: its data changes are reversed
    /// (logical undo, newest first), an `Abort` record is logged and its
    /// locks release.
    pub fn rollback(&self) -> Result<()> {
        let txn = self
            .txn
            .lock()
            .take()
            .ok_or_else(|| Error::execution("no open transaction"))?;
        *self.snap.lock() = None;
        self.engine.abort_txn(txn);
        Ok(())
    }

    /// Execute one SQL statement. This is the prepared path with zero
    /// parameters: the same plan-cache probe, sensors and locking as
    /// [`Prepared::execute`], so repeated texts skip parse/bind/optimize.
    pub fn execute(&self, sql: &str) -> Result<StatementResult> {
        self.execute_with_params(sql, &[])
    }

    /// Validate `sql` once and return a reusable handle that executes it
    /// with bound parameter values (`$1`… or `?` markers).
    pub fn prepare(&self, sql: &str) -> Result<Prepared<'_>> {
        let stmt = parse_statement(sql)?;
        Ok(Prepared {
            session: self,
            text: sql.to_owned(),
            param_count: param_count(&stmt),
        })
    }

    /// Insert one already-typed row into `table`, bypassing SQL but using
    /// the same locking, WAL and undo path as `INSERT`. The storage daemon's
    /// workload-DB writer batches thousands of rows per poll through this —
    /// one parse-free call each inside a single explicit transaction, so the
    /// whole batch rides one durability barrier at commit.
    pub fn insert_direct(&self, table: &str, row: &Row) -> Result<RowId> {
        let engine = &*self.engine;
        let id = engine.catalog.read().resolve_table(table)?;
        let (txn, auto) = self.current_txn();
        // Table-shared lock = DDL fence only; the insert itself takes
        // row-level constraint-key locks inside `insert_one`.
        if let Err(e) = engine
            .locks
            .lock(txn, Resource::Table(id), LockMode::Shared)
        {
            if auto {
                self.abort_auto_txn(txn, &e);
            }
            return Err(e);
        }
        let catalog = engine.catalog.read();
        let observer = WalDmlObserver {
            engine,
            catalog: &catalog,
            txn,
        };
        let ctx = DmlCtx {
            snap: Snapshot::latest(),
            write: WriteAs::Txn(txn),
            locks: Some((&engine.locks, txn)),
            retarget: auto,
        };
        let result = insert_one(&catalog, id, row, &ctx, &observer);
        drop(catalog);
        if auto {
            let fin = self.finish_auto_txn(txn, result.as_ref().err());
            return result.and_then(|r| fin.map(|()| r));
        }
        result
    }

    fn execute_with_params(&self, sql: &str, params: &[Value]) -> Result<StatementResult> {
        let engine = &*self.engine;
        // Query-interface sensor: wall-clock start + text hash.
        let mut sensor = engine.monitor.as_ref().map(|m| m.begin_statement(sql));
        // Structured tracing: one atomic load when disabled, a stage/span
        // builder when enabled.
        let mut trace = engine
            .tracer
            .as_ref()
            .filter(|t| t.enabled())
            .map(|_| TraceBuilder::new(engine.wall));
        let start_ns = engine.wall.now_nanos();
        let io_before = engine.io_stats();

        // Wait-event accounting: publish this statement to the session's
        // ASH slot, give the cooperative sampler its tick, and bind the
        // session's wait sink to this thread so guards anywhere down the
        // stack (locks, WAL, buffer pool, retry) charge it.
        let mut wait_before = 0u64;
        let _wait_binding = match (&engine.waits, &self.ash) {
            (Some(registry), Some(slot)) => {
                wait_before = slot.waits().counters().total_ns();
                slot.begin_statement(StmtHash::of(sql), normalize_template(sql), start_ns);
                if let Some(sampler) = &engine.ash {
                    sampler.sample_if_due(start_ns);
                }
                Some(bind_session(
                    self.id.raw(),
                    Arc::clone(slot.waits()),
                    Arc::clone(registry),
                ))
            }
            _ => None,
        };

        let outcome = self.execute_inner(sql, params, &mut sensor, &mut trace);
        engine.statements_executed.fetch_add(1, Ordering::Relaxed);

        if let Some(slot) = &self.ash {
            if let Some(sampler) = &engine.ash {
                sampler.sample_if_due(engine.wall.now_nanos());
            }
            slot.end_statement();
        }

        match outcome {
            Ok(mut result) => {
                let io_after = engine.io_stats();
                let io_delta = io_after.delta_since(&io_before);
                result.actual_cost.io = io_delta.total() as f64;
                result.wallclock_ns = engine.wall.now_nanos() - start_ns;
                if let Some(slot) = &self.ash {
                    result.wait_ns = slot
                        .waits()
                        .counters()
                        .total_ns()
                        .saturating_sub(wait_before);
                }
                // Hand the finished trace to the tracer before the monitor
                // records: the tracer's bookkeeping time lands in this
                // statement's monitor_ns (Fig 5 stays honest).
                if let (Some(tracer), Some(tb)) = (&engine.tracer, trace.take()) {
                    let dt =
                        tracer.record_statement(tb.finish(StmtHash::of(sql), result.wallclock_ns));
                    if let Some(s) = sensor.as_mut() {
                        s.add_self_time(dt);
                    }
                }
                if let (Some(monitor), Some(mut s)) = (&engine.monitor, sensor.take()) {
                    monitor.executed(&mut s, result.actual_cost.cpu as u64, io_delta.total());
                    monitor.record(s, engine.sim_clock.now_secs());
                    // Periodic statistics sampling from within the engine.
                    if engine.statements_executed().is_multiple_of(64) {
                        engine.sample_statistics();
                    }
                }
                Ok(result)
            }
            Err(e) => {
                // Failed statements are not recorded (the paper logs executed
                // statements); a deadlock victim's or first-committer-wins
                // loser's transaction is aborted, classified by cause.
                if matches!(e, Error::Deadlock { .. } | Error::WriteConflict(_)) {
                    if let Some(txn) = self.txn.lock().take() {
                        *self.snap.lock() = None;
                        self.engine.abort_txn_with(txn, AbortCause::from_error(&e));
                    }
                }
                Err(e)
            }
        }
    }

    fn execute_inner(
        &self,
        sql: &str,
        params: &[Value],
        sensor: &mut Option<StatementSensor>,
        trace: &mut Option<TraceBuilder>,
    ) -> Result<StatementResult> {
        let engine = &*self.engine;
        // Plan-cache probe *before* parsing: a hit executes the memoized
        // template without touching parser, binder or optimizer. Probe time
        // is monitoring overhead, charged to the statement's monitor_ns.
        if engine.plan_cache.capacity() > 0 {
            let t0 = engine.wall.now_nanos();
            let template = normalize_template(sql);
            let epoch = engine.catalog.read().epoch();
            let cached = engine.plan_cache.probe(&template, epoch);
            if let Some(s) = sensor.as_mut() {
                s.add_self_time(engine.wall.now_nanos() - t0);
            }
            if let Some(cached) = cached {
                return self.run_cached(sql, &cached, params, sensor, trace);
            }
        }
        let parse_t0 = self.engine.wall.now_nanos();
        let stmt = parse_statement(sql)?;
        if let Some(tb) = trace.as_mut() {
            tb.stage(Stage::Parse, self.engine.wall.now_nanos() - parse_t0);
        }
        // Every declared marker needs a bound value (the textual path binds
        // none, so a raw `$1` fails up front instead of deep in execution).
        let expected = param_count(&stmt);
        if expected != params.len() {
            return Err(Error::param_arity(expected, params.len()));
        }
        // DDL and statistics collection change what the optimizer would
        // choose; drop every memoized plan once the statement succeeds.
        let invalidates_plans = matches!(
            &stmt,
            Statement::CreateTable { .. }
                | Statement::DropTable { .. }
                | Statement::CreateIndex { .. }
                | Statement::DropIndex { .. }
                | Statement::Modify { .. }
                | Statement::CreateStatistics { .. }
        );
        let result = match stmt {
            Statement::Explain {
                analyze: false,
                inner,
            } => self.run_explain(&inner),
            Statement::Explain {
                analyze: true,
                inner,
            } => self.run_explain_analyze(sql, &inner, sensor, trace),
            Statement::CreateTable {
                name,
                columns,
                primary_key,
            } => self.run_create_table(&name, &columns, &primary_key),
            Statement::DropTable { name } => {
                self.with_table_lock_by_name(&name, LockMode::Exclusive, |eng| {
                    eng.catalog.write().drop_table(&name)?;
                    Ok(StatementResult::default())
                })
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
            } => self.run_create_index(&name, &table, &columns, unique),
            Statement::DropIndex { name } => {
                self.engine.catalog.write().drop_index(&name)?;
                Ok(StatementResult::default())
            }
            Statement::Modify { table, to } => {
                let to: StorageStructure = to.parse()?;
                self.with_table_lock_by_name(&table, LockMode::Exclusive, |eng| {
                    let mut catalog = eng.catalog.write();
                    let id = catalog.resolve_table(&table)?;
                    catalog.modify_storage(id, to)?;
                    Ok(StatementResult::default())
                })
            }
            Statement::CreateStatistics { table, columns } => {
                let now_secs = self.engine.sim_clock.now_secs();
                // No table lock at all (PR 8): the histogram build scans the
                // table under a registered MVCC snapshot, so concurrent
                // writers proceed untouched and the collected counts are
                // still exact *for that snapshot*. DDL is fenced by the
                // catalog write guard the collection itself holds.
                let (txn, auto) = self.current_txn();
                let snap = self.statement_snapshot(txn, auto);
                let result = (|| {
                    let mut catalog = self.engine.catalog.write();
                    let id = catalog.resolve_table(&table)?;
                    let schema = catalog.table(id)?.meta.schema.clone();
                    let cols: Vec<usize> = columns
                        .iter()
                        .map(|c| {
                            schema
                                .index_of(c)
                                .ok_or_else(|| Error::binder(format!("unknown column '{c}'")))
                        })
                        .collect::<Result<_>>()?;
                    catalog.collect_statistics_snapshot(id, &cols, now_secs, &snap)?;
                    Ok(StatementResult::default())
                })();
                if auto {
                    let fin = self.finish_auto_txn(txn, result.as_ref().err());
                    result.and_then(|r| fin.map(|()| r))
                } else {
                    result
                }
            }
            Statement::Set { name, value } => self.set_option(&name, &value),
            dml => self.run_dml(sql, &dml, params, sensor, trace),
        };
        if invalidates_plans && result.is_ok() {
            // Schema changes are redone from the log on recovery, so the
            // record is appended only once the DDL *succeeded* (a failed
            // statement must never replay) and is made durable before the
            // statement is acknowledged. Suppressed during replay itself.
            if !engine.wal.is_replaying() {
                let lsn = engine.wal.append(&WalRecord::Ddl {
                    sql: sql.to_owned(),
                })?;
                engine.wal.commit_barrier(lsn)?;
            }
            engine.plan_cache.invalidate_all();
        }
        result
    }

    /// `SET name = value`. `trace`/`tracing` flips runtime tracing; other
    /// knobs are accepted and ignored (compatibility with scripts). This is
    /// the target of both the SQL `SET` statement and the [`Connection`]
    /// trait's `set` verb, embedded or over the wire.
    pub fn set_option(&self, name: &str, value: &Value) -> Result<StatementResult> {
        if matches!(name.to_ascii_lowercase().as_str(), "trace" | "tracing") {
            let on = match value {
                Value::Bool(b) => *b,
                Value::Int(i) => *i != 0,
                Value::Str(s) => matches!(s.to_ascii_lowercase().as_str(), "on" | "true" | "1"),
                _ => return Err(Error::execution("SET trace expects a boolean")),
            };
            self.engine.set_tracing(on);
        }
        Ok(StatementResult::default())
    }

    fn run_explain(&self, inner: &Statement) -> Result<StatementResult> {
        let engine = &*self.engine;
        let catalog = engine.catalog.read();
        let (bound, _) = Binder::new(&catalog).bind(inner)?;
        let planned = optimize(&catalog, &bound, OptimizerOptions::default())?;
        let text = match &planned {
            PlannedStatement::Query(q) => q.root.to_string(),
            PlannedStatement::Insert { table, rows, est } => {
                let name = catalog.table(*table).map(|e| e.meta.name.clone())?;
                format!(
                    "Insert into {name}  ({} row(s), est {est})
",
                    rows.len()
                )
            }
            PlannedStatement::Update {
                table,
                sets,
                filter,
                est,
            } => {
                let name = catalog.table(*table).map(|e| e.meta.name.clone())?;
                format!(
                    "Update {name} [{} column(s){}]  (est {est})
",
                    sets.len(),
                    if filter.is_some() { ", filtered" } else { "" }
                )
            }
            PlannedStatement::Delete { table, filter, est } => {
                let name = catalog.table(*table).map(|e| e.meta.name.clone())?;
                format!(
                    "Delete from {name}{}  (est {est})
",
                    if filter.is_some() { " [filtered]" } else { "" }
                )
            }
        };
        Ok(StatementResult {
            rows: text
                .lines()
                .map(|l| Row::new(vec![Value::Str(l.to_owned())]))
                .collect(),
            columns: vec!["query plan".to_owned()],
            est_cost: planned.estimated_cost(),
            ..Default::default()
        })
    }

    fn run_create_table(
        &self,
        name: &str,
        columns: &[ColumnDef],
        primary_key: &[String],
    ) -> Result<StatementResult> {
        let cols: Vec<Column> = columns
            .iter()
            .map(|c| {
                if c.not_null {
                    Column::not_null(c.name.clone(), c.ty)
                } else {
                    Column::new(c.name.clone(), c.ty)
                }
            })
            .collect();
        let schema = Schema::new(cols);
        let pk: Vec<usize> = primary_key
            .iter()
            .map(|c| {
                schema
                    .index_of(c)
                    .ok_or_else(|| Error::binder(format!("unknown primary key column '{c}'")))
            })
            .collect::<Result<_>>()?;
        self.engine.catalog.write().create_table(name, schema, pk)?;
        Ok(StatementResult::default())
    }

    fn run_create_index(
        &self,
        name: &str,
        table: &str,
        columns: &[String],
        unique: bool,
    ) -> Result<StatementResult> {
        self.with_table_lock_by_name(table, LockMode::Exclusive, |eng| {
            let mut catalog = eng.catalog.write();
            let id = catalog.resolve_table(table)?;
            let schema = catalog.table(id)?.meta.schema.clone();
            let cols: Vec<usize> = columns
                .iter()
                .map(|c| {
                    schema
                        .index_of(c)
                        .ok_or_else(|| Error::binder(format!("unknown column '{c}'")))
                })
                .collect::<Result<_>>()?;
            catalog.create_index(name, id, cols, unique)?;
            Ok(StatementResult::default())
        })
    }

    /// Run a closure holding a logical lock on `table` (auto-commit scope).
    ///
    /// Lock-order discipline: the table lock is acquired *before* the closure
    /// opens the catalog write guard, matching DML (table locks, then
    /// snapshot/guard). Nothing holding the DDL guard ever takes table locks.
    fn with_table_lock_by_name<F>(
        &self,
        table: &str,
        mode: LockMode,
        f: F,
    ) -> Result<StatementResult>
    where
        F: FnOnce(&Engine) -> Result<StatementResult>,
    {
        let id = {
            let catalog = self.engine.catalog.read();
            // A yet-unknown table (CREATE) needs no lock.
            catalog.resolve_table(table).ok()
        };
        let (txn, auto) = self.current_txn();
        if let Some(id) = id {
            let locked = self.engine.locks.lock(txn, Resource::Table(id), mode);
            if let Err(e) = locked {
                if auto {
                    self.abort_auto_txn(txn, &e);
                }
                return Err(e);
            }
        }
        let out = f(&self.engine);
        if auto {
            let fin = self.finish_auto_txn(txn, out.as_ref().err());
            return out.and_then(|r| fin.map(|()| r));
        }
        out
    }

    fn current_txn(&self) -> (TxnId, bool) {
        match *self.txn.lock() {
            Some(t) => (t, false),
            None => (self.engine.txns.begin(), true),
        }
    }

    /// Close an auto-commit transaction: commit on success (`err` is
    /// `None`), abort classified by the statement's error otherwise. Commit
    /// goes through the WAL durability barrier; its error (a commit that
    /// cannot be acknowledged) must replace an otherwise-successful
    /// statement result.
    fn finish_auto_txn(&self, txn: TxnId, err: Option<&Error>) -> Result<()> {
        match err {
            None => self.engine.commit_txn(txn),
            Some(e) => {
                self.engine.abort_txn_with(txn, AbortCause::from_error(e));
                Ok(())
            }
        }
    }

    /// Abort an auto-commit transaction after a statement error.
    /// Infallible, so error paths cannot accidentally discard a commit
    /// failure the way `let _ = finish_auto_txn(…)` used to.
    fn abort_auto_txn(&self, txn: TxnId, e: &Error) {
        self.engine.abort_txn_with(txn, AbortCause::from_error(e));
    }

    /// The snapshot a statement of `txn` reads under: auto-commit statements
    /// take a fresh one, an explicit transaction takes one at its first
    /// statement and keeps it (snapshot isolation). Registered snapshots pin
    /// the version-chain GC watermark until the transaction retires.
    fn statement_snapshot(&self, txn: TxnId, auto: bool) -> Snapshot {
        if auto {
            return self.engine.txns.snapshot(txn);
        }
        let mut snap = self.snap.lock();
        *snap.get_or_insert_with(|| self.engine.txns.snapshot(txn))
    }

    /// Bind and optimize a statement under the catalog read lock, feeding the
    /// parse/optimizer sensors and the Bind/Optimize stage spans. Also charges
    /// optimizer-side page reads (e.g. what-if probes into virtual indexes) to
    /// the statement's `opt_io`. Returns the bind artifacts and the schema
    /// epoch of the snapshot the plan was optimized under, so the caller can
    /// memoize the plan in the shared cache.
    fn bind_and_optimize(
        &self,
        stmt: &Statement,
        sensor: &mut Option<StatementSensor>,
        trace: &mut Option<TraceBuilder>,
    ) -> Result<(BoundStatement, PlannedStatement, BindArtifacts, u64)> {
        let engine = &*self.engine;
        let catalog = engine.catalog.read();

        let bind_t0 = engine.wall.now_nanos();
        let (bound, artifacts) = Binder::new(&catalog).bind(stmt)?;
        if let Some(tb) = trace.as_mut() {
            tb.stage(Stage::Bind, engine.wall.now_nanos() - bind_t0);
        }
        if let (Some(monitor), Some(s)) = (&engine.monitor, sensor.as_mut()) {
            let t0 = engine.wall.now_nanos();
            let (tables, attributes) = snapshot_details(&catalog, &artifacts);
            s.add_self_time(engine.wall.now_nanos() - t0);
            monitor.parsed(s, tables, attributes);
        }

        let io_before = engine.io_stats().total();
        let t0 = engine.wall.now_nanos();
        let planned = optimize(&catalog, &bound, OptimizerOptions::default())?;
        let opt_ns = engine.wall.now_nanos() - t0;
        let opt_io = engine.io_stats().total().saturating_sub(io_before);
        if let Some(tb) = trace.as_mut() {
            tb.stage(Stage::Optimize, opt_ns);
        }
        if let (Some(monitor), Some(s)) = (&engine.monitor, sensor.as_mut()) {
            let used = planned
                .used_indexes()
                .iter()
                .filter_map(|id| {
                    catalog.index(*id).ok().map(|e| IndexDetail {
                        id: *id,
                        name: e.meta.name.clone(),
                        table: e.meta.table,
                        pages: e.pages(),
                    })
                })
                .collect();
            monitor.optimized(s, planned.estimated_cost(), used, opt_ns, opt_io);
        }
        Ok((bound, planned, artifacts, catalog.epoch()))
    }

    fn run_dml(
        &self,
        sql: &str,
        stmt: &Statement,
        params: &[Value],
        sensor: &mut Option<StatementSensor>,
        trace: &mut Option<TraceBuilder>,
    ) -> Result<StatementResult> {
        let engine = &*self.engine;
        let (bound, planned, artifacts, epoch) = self.bind_and_optimize(stmt, sensor, trace)?;
        let lock_spec = lock_spec(&bound);

        // Memoize the optimized template *before* parameter substitution so
        // the cached plan stays reusable for any future binding. Everything
        // reaching run_dml is cacheable: DDL, SET and EXPLAIN dispatch
        // elsewhere, and execution plans never use virtual indexes.
        if engine.plan_cache.capacity() > 0 {
            let t0 = engine.wall.now_nanos();
            engine.plan_cache.insert(
                normalize_template(sql),
                CachedPlan {
                    planned: planned.clone(),
                    artifacts,
                    lock_spec: lock_spec.clone(),
                    epoch,
                    param_count: params.len(),
                },
            );
            if let Some(s) = sensor.as_mut() {
                s.add_self_time(engine.wall.now_nanos() - t0);
            }
        }
        let planned = if params.is_empty() {
            planned
        } else {
            planned.substitute_params(params)?
        };

        // ---- lock acquisition ----
        let (txn, auto) = self.current_txn();
        if let Err(e) = self.acquire_locks(txn, &lock_spec) {
            if auto {
                self.abort_auto_txn(txn, &e);
            }
            return Err(e);
        }

        // ---- execute + execution sensor + operator spans ----
        //
        // Execution runs against a snapshot taken *after* lock acquisition:
        // the schema of every locked table is stable (DDL takes the same
        // table locks), so the statement sees current indexes and structure
        // without ever holding an engine-wide lock. Other sessions execute
        // concurrently against their own snapshots.
        let exec_t0 = engine.wall.now_nanos();
        let catalog = engine.catalog.read();
        let exec_result = self.execute_planned(&catalog, &planned, txn, auto, trace);
        drop(catalog);
        if let Some(tb) = trace.as_mut() {
            tb.stage(Stage::Execute, engine.wall.now_nanos() - exec_t0);
        }
        if auto {
            let fin = self.finish_auto_txn(txn, exec_result.as_ref().err());
            return exec_result.and_then(|r| fin.map(|()| r));
        }
        exec_result
    }

    /// Execute a plan-cache hit: substitute the bound values into the cached
    /// template, lock its recorded footprint, and re-verify the schema epoch
    /// under the execution snapshot. A mismatch (DDL raced in between probe
    /// and locks) falls back to the full parse/bind/optimize path — a stale
    /// plan is never executed.
    fn run_cached(
        &self,
        sql: &str,
        cached: &CachedPlan,
        params: &[Value],
        sensor: &mut Option<StatementSensor>,
        trace: &mut Option<TraceBuilder>,
    ) -> Result<StatementResult> {
        let engine = &*self.engine;
        if params.len() != cached.param_count {
            return Err(Error::param_arity(cached.param_count, params.len()));
        }
        let planned = if params.is_empty() {
            cached.planned.clone()
        } else {
            cached.planned.substitute_params(params)?
        };

        let (txn, auto) = self.current_txn();
        if let Err(e) = self.acquire_locks(txn, &cached.lock_spec) {
            if auto {
                self.abort_auto_txn(txn, &e);
            }
            return Err(e);
        }
        let exec_t0 = engine.wall.now_nanos();
        let catalog = engine.catalog.read();
        if catalog.epoch() != cached.epoch {
            // The schema moved after the probe; nothing ran yet, so release
            // the speculative locks (auto-commit scope) and replan fresh.
            // The next probe of this template drops the stale entry.
            drop(catalog);
            if auto {
                self.finish_auto_txn(txn, None)?;
            }
            let stmt = parse_statement(sql)?;
            return self.run_dml(sql, &stmt, params, sensor, trace);
        }

        // The parse/optimize stages were skipped; feed the monitor from the
        // cached artifacts so the statement record stays complete.
        if let (Some(monitor), Some(s)) = (&engine.monitor, sensor.as_mut()) {
            let t0 = engine.wall.now_nanos();
            let (tables, attributes) = snapshot_details(&catalog, &cached.artifacts);
            s.add_self_time(engine.wall.now_nanos() - t0);
            monitor.parsed(s, tables, attributes);
            let used = planned
                .used_indexes()
                .iter()
                .filter_map(|id| {
                    catalog.index(*id).ok().map(|e| IndexDetail {
                        id: *id,
                        name: e.meta.name.clone(),
                        table: e.meta.table,
                        pages: e.pages(),
                    })
                })
                .collect();
            monitor.optimized(s, planned.estimated_cost(), used, 0, 0);
        }

        let exec_result = self.execute_planned(&catalog, &planned, txn, auto, trace);
        drop(catalog);
        if let Some(tb) = trace.as_mut() {
            tb.stage(Stage::Execute, engine.wall.now_nanos() - exec_t0);
        }
        if auto {
            let fin = self.finish_auto_txn(txn, exec_result.as_ref().err());
            return exec_result.and_then(|r| fin.map(|()| r));
        }
        exec_result
    }

    /// The shared execution tail of the fresh and cached plan paths: run the
    /// (fully substituted) plan against `catalog` under the statement's MVCC
    /// snapshot, collecting operator spans when tracing. DML versions are
    /// marked with `txn` and observed by its WAL/undo recorder; auto-commit
    /// statements retarget superseded rows, explicit transactions fail them
    /// with a write conflict (first-committer-wins).
    fn execute_planned(
        &self,
        catalog: &Catalog,
        planned: &PlannedStatement,
        txn: TxnId,
        auto: bool,
        trace: &mut Option<TraceBuilder>,
    ) -> Result<StatementResult> {
        let engine = &*self.engine;
        let snap = self.statement_snapshot(txn, auto);
        match planned {
            PlannedStatement::Query(q) => {
                let traced = if let Some(tb) = trace.as_mut() {
                    execute_plan_traced_snapshot(catalog, &q.root, engine.wall, &snap).map(
                        |(r, spans)| {
                            tb.set_ops(spans);
                            r
                        },
                    )
                } else {
                    execute_plan_snapshot(catalog, &q.root, &snap)
                };
                traced.map(|r| StatementResult {
                    columns: q.output_names.clone(),
                    est_cost: q.est,
                    actual_cost: Cost::cpu(r.tuples as f64),
                    rows: r.rows,
                    ..Default::default()
                })
            }
            dml => {
                let observer = WalDmlObserver {
                    engine,
                    catalog,
                    txn,
                };
                let ctx = DmlCtx {
                    snap,
                    write: WriteAs::Txn(txn),
                    locks: Some((&engine.locks, txn)),
                    retarget: auto,
                };
                let traced = if let Some(tb) = trace.as_mut() {
                    execute_statement_traced_ctx(catalog, dml, engine.wall, &ctx, &observer).map(
                        |(o, spans)| {
                            tb.set_ops(spans);
                            o
                        },
                    )
                } else {
                    execute_statement_ctx(catalog, dml, &ctx, &observer)
                };
                traced.map(|o| StatementResult {
                    rows: o.rows,
                    columns: Vec::new(),
                    affected: o.affected,
                    est_cost: planned.estimated_cost(),
                    actual_cost: Cost::cpu(o.tuples as f64),
                    ..Default::default()
                })
            }
        }
    }

    /// `EXPLAIN ANALYZE <stmt>`: execute the statement with per-operator span
    /// collection and render the annotated operator tree. The spans also feed
    /// the tracer's aggregates (keyed by the *outer* statement text, so they
    /// join against `ima$statements`), even when runtime tracing is off.
    fn run_explain_analyze(
        &self,
        sql: &str,
        inner: &Statement,
        sensor: &mut Option<StatementSensor>,
        trace: &mut Option<TraceBuilder>,
    ) -> Result<StatementResult> {
        if matches!(inner, Statement::Explain { .. }) {
            return Err(Error::parse("EXPLAIN cannot be nested"));
        }
        let engine = &*self.engine;
        // Wait baseline: everything this statement loses from here on —
        // lock acquisition included — shows up as the "Waits:" line below.
        let wait_snap0 = self.ash.as_ref().map(|s| s.waits().counters().snapshot());
        let (bound, planned, _, _) = self.bind_and_optimize(inner, sensor, trace)?;

        let (txn, auto) = self.current_txn();
        if let Err(e) = self.acquire_locks(txn, &lock_spec(&bound)) {
            if auto {
                self.abort_auto_txn(txn, &e);
            }
            return Err(e);
        }

        let exec_t0 = engine.wall.now_nanos();
        // Same discipline as `run_dml`: snapshot after locks, no engine lock
        // held across execution. EXPLAIN ANALYZE executes DML for real, so
        // its mutations are WAL-observed like any other statement.
        let catalog = engine.catalog.read();
        let snap = self.statement_snapshot(txn, auto);
        let exec_result = match &planned {
            PlannedStatement::Query(q) => {
                execute_plan_traced_snapshot(&catalog, &q.root, engine.wall, &snap)
                    .map(|(r, spans)| (r.tuples, 0u64, spans))
            }
            dml => {
                let observer = WalDmlObserver {
                    engine,
                    catalog: &catalog,
                    txn,
                };
                let ctx = DmlCtx {
                    snap,
                    write: WriteAs::Txn(txn),
                    locks: Some((&engine.locks, txn)),
                    retarget: auto,
                };
                execute_statement_traced_ctx(&catalog, dml, engine.wall, &ctx, &observer)
                    .map(|(o, spans)| (o.tuples, o.affected, spans))
            }
        };
        drop(catalog);
        if let Some(tb) = trace.as_mut() {
            tb.stage(Stage::Execute, engine.wall.now_nanos() - exec_t0);
        }
        if auto {
            let fin = self.finish_auto_txn(txn, exec_result.as_ref().err());
            if exec_result.is_ok() {
                fin?;
            }
        }
        let (tuples, affected, spans) = exec_result?;

        // Feed the aggregates. With tracing on, the spans ride the statement
        // trace recorded by `execute`; otherwise merge them directly.
        let hash = StmtHash::of(sql);
        if let Some(tb) = trace.as_mut() {
            tb.set_ops(spans.clone());
        } else if let Some(tracer) = &engine.tracer {
            let dt = tracer.record_operators(hash, &spans);
            if let Some(s) = sensor.as_mut() {
                s.add_self_time(dt);
            }
        }

        let mut text = render_operator_tree(&spans);
        text.push_str(&format!(
            "Execution: {} tuple(s) processed, {} row(s) affected, {:.3} ms\n",
            tuples,
            affected,
            (engine.wall.now_nanos() - exec_t0) as f64 / 1e6
        ));
        if let (Some(slot), Some(before)) = (&self.ash, wait_snap0) {
            let after = slot.waits().counters().snapshot();
            let mut parts = Vec::new();
            let mut total_ns = 0u64;
            for (b, a) in before.iter().zip(after.iter()) {
                let dns = a.total_ns.saturating_sub(b.total_ns);
                if dns > 0 {
                    total_ns = total_ns.saturating_add(dns);
                    parts.push(format!("{} {:.3} ms", a.event, dns as f64 / 1e6));
                }
            }
            if total_ns > 0 {
                text.push_str(&format!(
                    "Waits: {:.3} ms total ({})\n",
                    total_ns as f64 / 1e6,
                    parts.join(", ")
                ));
            }
        }
        Ok(StatementResult {
            rows: text
                .lines()
                .map(|l| Row::new(vec![Value::Str(l.to_owned())]))
                .collect(),
            columns: vec!["query plan".to_owned()],
            est_cost: planned.estimated_cost(),
            actual_cost: Cost::cpu(tuples as f64),
            affected,
            ..Default::default()
        })
    }

    fn acquire_locks(&self, txn: TxnId, spec: &[(TableId, bool)]) -> Result<()> {
        for (table, exclusive) in spec {
            let mode = if *exclusive {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            self.engine.locks.lock(txn, Resource::Table(*table), mode)?;
        }
        Ok(())
    }
}

/// The table-lock footprint of a bound statement: `(table, exclusive)` in
/// deterministic order (prevents intra-statement lock-order cycles). Stored
/// verbatim in cached plans so a hit locks exactly what a fresh plan would.
///
/// Under row-level MVCC (PR 8) this footprint is deliberately thin: queries
/// take *no* locks at all (they read a registered snapshot), and DML takes
/// only a table-**shared** lock — a DDL fence, compatible with every other
/// reader and writer. Actual write-write isolation comes from the
/// row-exclusive chain-root locks the executor takes per target row; table
/// exclusive locks remain the preserve of DDL
/// ([`Session::with_table_lock_by_name`]).
fn lock_spec(bound: &BoundStatement) -> Vec<(TableId, bool)> {
    let mut wanted: Vec<(TableId, bool)> = match bound {
        BoundStatement::Select(_) => Vec::new(),
        BoundStatement::Insert { table, .. }
        | BoundStatement::Update { table, .. }
        | BoundStatement::Delete { table, .. } => vec![(*table, false)],
    };
    wanted.sort_by_key(|(t, _)| *t);
    wanted.dedup_by_key(|(t, _)| *t);
    wanted
}

/// A prepared statement: the text is validated once by [`Session::prepare`],
/// then executed any number of times with different parameter bindings. The
/// optimized plan lives in the engine-wide plan cache, so repeated
/// executions (from this handle or any session running the same template)
/// skip parse/bind/optimize entirely.
///
/// ```
/// # use ingot_common::{EngineConfig, Value};
/// # use ingot_core::Engine;
/// # let engine = Engine::builder().config(EngineConfig::monitoring()).build().unwrap();
/// # let session = engine.open_session();
/// # session.execute("create table t (a int not null primary key, b int)").unwrap();
/// let insert = session.prepare("insert into t values ($1, $2)").unwrap();
/// for i in 0..10 {
///     insert.execute(&[Value::Int(i), Value::Int(i * 2)]).unwrap();
/// }
/// let point = session.prepare("select b from t where a = $1").unwrap();
/// let row = point.execute(&[Value::Int(7)]).unwrap();
/// assert_eq!(row.rows[0].get(0), &Value::Int(14));
/// ```
pub struct Prepared<'a> {
    session: &'a Session,
    text: String,
    param_count: usize,
}

impl Prepared<'_> {
    /// The statement text this handle was prepared from.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of parameter markers the statement declares.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Execute with `params` bound positionally (`$1` ↔ `params[0]`). The
    /// value count must match [`param_count`](Self::param_count) exactly.
    pub fn execute(&self, params: &[Value]) -> Result<StatementResult> {
        if params.len() != self.param_count {
            return Err(Error::param_arity(self.param_count, params.len()));
        }
        self.session.execute_with_params(&self.text, params)
    }
}

// The embedded half of the unified surface: a `Session` *is* a
// `Connection`, so shells, examples and bench harnesses written against
// `&dyn Connection` run in-process without an adapter. (The remote half is
// `ingot_client::ClientConnection`.)
impl Connection for Session {
    fn execute(&self, sql: &str) -> Result<StatementResult> {
        Session::execute(self, sql)
    }

    fn prepare(&self, sql: &str) -> Result<Box<dyn PreparedStatement + '_>> {
        Ok(Box::new(Session::prepare(self, sql)?))
    }

    fn set(&self, name: &str, value: &Value) -> Result<()> {
        self.set_option(name, value).map(|_| ())
    }

    fn begin(&self) -> Result<()> {
        Session::begin(self)
    }

    fn commit(&self) -> Result<()> {
        Session::commit(self)
    }

    fn rollback(&self) -> Result<()> {
        Session::rollback(self)
    }
}

impl PreparedStatement for Prepared<'_> {
    fn param_count(&self) -> usize {
        Prepared::param_count(self)
    }

    fn execute(&self, params: &[Value]) -> Result<StatementResult> {
        Prepared::execute(self, params)
    }
}

/// Snapshot the bind artifacts into monitor detail records. All data comes
/// from the already-held catalog guard ("no further access to the catalogs
/// is required for the monitoring").
fn snapshot_details(
    catalog: &Catalog,
    artifacts: &BindArtifacts,
) -> (Vec<TableDetail>, Vec<AttributeDetail>) {
    let mut tables = Vec::with_capacity(artifacts.tables.len());
    for (id, name) in &artifacts.tables {
        if let Ok(entry) = catalog.table(*id) {
            let hs = entry.heap.stats();
            tables.push(TableDetail {
                id: *id,
                name: name.clone(),
                storage: entry.meta.storage.to_string(),
                data_pages: hs.main_pages,
                overflow_pages: hs.overflow_pages,
                rows: hs.rows,
            });
        }
    }
    let mut attributes = Vec::with_capacity(artifacts.attributes.len());
    for (table, col, name) in &artifacts.attributes {
        attributes.push(AttributeDetail {
            table: *table,
            column: *col,
            name: name.clone(),
            has_histogram: artifacts.histograms.contains(&(*table, *col)),
        });
    }
    (tables, attributes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Arc<Engine> {
        Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap()
    }

    fn engine_with(config: EngineConfig) -> Arc<Engine> {
        Engine::builder().config(config).build().unwrap()
    }

    fn load_demo(s: &Session) {
        s.execute("create table protein (nref_id int not null primary key, name text, len int)")
            .unwrap();
        for i in 0..200 {
            s.execute(&format!(
                "insert into protein values ({i}, 'p{i}', {})",
                i % 10
            ))
            .unwrap();
        }
    }

    #[test]
    fn end_to_end_statement_path() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        let r = s
            .execute("select name from protein where nref_id = 42")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].get(0), &Value::Str("p42".into()));
        assert!(r.wallclock_ns > 0);
        assert!(r.actual_cost.cpu > 0.0);
        assert!(r.est_cost.total() > 0.0);
    }

    #[test]
    fn monitor_records_the_workload() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        s.execute("select name from protein where nref_id = 1")
            .unwrap();
        s.execute("select name from protein where nref_id = 1")
            .unwrap();
        let m = e.monitor().unwrap();
        let stmts = m.statements();
        // 1 create + 200 inserts + 1 select (dedup) = 202 unique.
        assert_eq!(stmts.len(), 202);
        let sel = stmts.iter().find(|s| s.text.starts_with("select")).unwrap();
        assert_eq!(sel.frequency, 2);
        assert!(m.workload().len() >= 200);
        assert_eq!(m.tables().len(), 1);
        assert_eq!(m.tables()[0].name, "protein");
    }

    #[test]
    fn original_instance_has_no_monitor() {
        let e = engine_with(EngineConfig::original());
        let s = e.open_session();
        s.execute("create table t (a int)").unwrap();
        s.execute("insert into t values (1)").unwrap();
        assert!(e.monitor().is_none());
        let r = s.execute("select * from t").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn ima_tables_are_queryable_via_sql() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        s.execute("select name from protein where nref_id = 7")
            .unwrap();
        let r = s
            .execute(
                "select query_text, frequency from ima$statements \
                 where query_text like 'select name%' order by frequency desc",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        // Workload join back to statements via hash.
        let r = s
            .execute(
                "select count(*) from ima$workload w \
                 join ima$statements s on w.hash = s.hash",
            )
            .unwrap();
        let n = r.rows[0].get(0).as_int().unwrap();
        assert!(n > 200, "workload x statements join should match, got {n}");
    }

    #[test]
    fn explain_returns_plan() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        let r = s
            .execute("explain select name from protein where nref_id = 3")
            .unwrap();
        assert!(!r.rows.is_empty());
        let text: String = r
            .rows
            .iter()
            .map(|row| row.get(0).as_str().unwrap().to_owned())
            .collect();
        assert!(text.contains("SeqScan"), "{text}");
    }

    #[test]
    fn ddl_modify_and_statistics_pipeline() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        // Grow the table so keyed access beats a (now multi-page) scan.
        for i in 200..5000 {
            s.execute(&format!(
                "insert into protein values ({i}, 'p{i}', {})",
                i % 10
            ))
            .unwrap();
        }
        s.execute("create statistics on protein").unwrap();
        s.execute("modify protein to btree").unwrap();
        // Now the same point query should use the clustered structure.
        let r = s
            .execute("explain select name from protein where nref_id = 3")
            .unwrap();
        let text: String = r
            .rows
            .iter()
            .map(|row| row.get(0).as_str().unwrap().to_owned())
            .collect();
        assert!(text.contains("PkLookup"), "{text}");
        // Statistics exist now.
        let catalog = e.catalog().read();
        let t = catalog.resolve_table("protein").unwrap();
        assert!(catalog.table(t).unwrap().stats.is_some());
    }

    #[test]
    fn whatif_estimation_with_virtual_index() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        s.execute("create statistics on protein").unwrap();
        let before = e
            .estimate("select name from protein where len = 3", true)
            .unwrap();
        assert!(!before.uses_virtual);
        e.add_virtual_index("protein", &["len"]).unwrap();
        let with_virtual = e
            .estimate("select name from protein where len = 3", true)
            .unwrap();
        // Normal execution still works and ignores the virtual index.
        let r = s.execute("select name from protein where len = 3").unwrap();
        assert_eq!(r.rows.len(), 20);
        e.clear_virtual_indexes();
        let _ = with_virtual;
    }

    #[test]
    fn sessions_and_statistics_sampling() {
        let e = engine();
        let s1 = e.open_session();
        {
            let _s2 = e.open_session();
            assert_eq!(e.sessions().current(), 2);
            e.sample_statistics();
        }
        assert_eq!(e.sessions().current(), 1);
        assert_eq!(e.sessions().peak(), 2);
        let m = e.monitor().unwrap();
        assert_eq!(m.statistics().len(), 1);
        assert_eq!(m.statistics()[0].sessions, 2);
        drop(s1);
    }

    #[test]
    fn explicit_transactions_hold_locks() {
        let e = engine();
        let s1 = e.open_session();
        s1.execute("create table t (a int)").unwrap();
        s1.execute("insert into t values (1)").unwrap();
        s1.begin().unwrap();
        s1.execute("update t set a = 2").unwrap();
        assert!(e.locks().stats().held > 0);
        s1.commit().unwrap();
        assert_eq!(e.locks().stats().held, 0);
    }

    #[test]
    fn errors_do_not_leak_locks() {
        let e = engine();
        let s = e.open_session();
        s.execute("create table t (a int not null)").unwrap();
        assert!(s.execute("insert into t values (null)").is_err());
        assert_eq!(e.locks().stats().held, 0);
        assert_eq!(e.txns().active_count(), 0);
    }

    #[test]
    fn explain_analyze_annotates_operators() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        let r = s
            .execute("explain analyze select name from protein where len = 3")
            .unwrap();
        let text: String = r
            .rows
            .iter()
            .map(|row| format!("{}\n", row.get(0).as_str().unwrap()))
            .collect();
        assert!(text.contains("SeqScan"), "{text}");
        assert!(text.contains("act rows=20"), "{text}");
        assert!(text.contains("est rows="), "{text}");
        assert!(text.contains("Execution:"), "{text}");
        assert!(r.actual_cost.cpu > 0.0);
        // The spans were merged into the tracer even with tracing off…
        let tracer = e.tracer().unwrap();
        let ops = tracer.operator_stats();
        assert!(!ops.is_empty());
        // …and are queryable via SQL.
        let r = s
            .execute("select op, rows_out from ima$operator_stats where op = 'SeqScan'")
            .unwrap();
        assert!(!r.rows.is_empty());
        // Nested EXPLAIN is rejected.
        assert!(s
            .execute("explain analyze explain select 1 from protein")
            .is_err());
    }

    #[test]
    fn tracing_builds_histograms_matching_frequency() {
        let e = engine_with(EngineConfig::tracing());
        let s = e.open_session();
        load_demo(&s);
        for _ in 0..5 {
            s.execute("select name from protein where nref_id = 9")
                .unwrap();
        }
        let tracer = e.tracer().unwrap();
        assert!(tracer.enabled());
        assert!(tracer.statements_traced() > 0);
        let hash = StmtHash::of("select name from protein where nref_id = 9");
        let hist = tracer
            .histograms()
            .into_iter()
            .find(|(h, _)| *h == hash)
            .map(|(_, h)| h)
            .expect("histogram for traced statement");
        assert_eq!(hist.total(), 5);
        // Bucket counts agree with ima$statements.frequency via SQL. The
        // reading query runs before its own record lands, so it never sees
        // itself.
        let r = s
            .execute(&format!(
                "select frequency from ima$statements where hash = '{hash}'"
            ))
            .unwrap();
        assert_eq!(r.rows[0].get(0), &Value::Int(5));
        let r = s
            .execute(&format!(
                "select sum(count) from ima$latency_histograms where hash = '{hash}'"
            ))
            .unwrap();
        assert_eq!(r.rows[0].get(0), &Value::Int(5));
    }

    #[test]
    fn set_trace_toggles_tracing_at_runtime() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        assert!(!e.tracing_enabled());
        s.execute("select name from protein where nref_id = 1")
            .unwrap();
        assert_eq!(e.tracer().unwrap().statements_traced(), 0);
        s.execute("set trace = true").unwrap();
        assert!(e.tracing_enabled());
        s.execute("select name from protein where nref_id = 1")
            .unwrap();
        assert_eq!(e.tracer().unwrap().statements_traced(), 1);
        s.execute("set trace = 'off'").unwrap();
        assert!(!e.tracing_enabled());
    }

    #[test]
    fn tracer_self_time_lands_in_monitor_ns() {
        let e = engine_with(EngineConfig::tracing());
        let s = e.open_session();
        load_demo(&s);
        s.execute("select name from protein where len = 3").unwrap();
        let tracer = e.tracer().unwrap();
        assert!(tracer.self_time_ns() > 0);
        // The monitor's self-time includes the tracer's record step.
        assert!(e.monitor().unwrap().self_time_ns() >= tracer.self_time_ns());
    }

    #[test]
    fn monitor_health_table_reports_counts() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        let r = s
            .execute("select statements_recorded, sensor_calls from ima$monitor_health")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let recorded = r.rows[0].get(0).as_int().unwrap();
        assert!(recorded >= 201, "got {recorded}");
        assert!(r.rows[0].get(1).as_int().unwrap() > 0);
    }

    #[test]
    fn opt_io_charges_whatif_probe_reads() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        s.execute("create statistics on protein").unwrap();
        // Optimizing against statistics may touch pages; at minimum the field
        // is plumbed (no longer hardwired to zero for every record).
        let est = e
            .estimate("select name from protein where len = 3", true)
            .unwrap();
        // probe_io is measured (possibly 0 if all pages are cached) — the
        // EstimateResult exposes it either way.
        let _ = est.probe_io;
        let w = e.monitor().unwrap().workload();
        assert!(!w.is_empty());
    }

    #[test]
    fn plan_cache_hits_on_repeated_templates() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        let sql = "select name from protein where nref_id = 42";
        s.execute(sql).unwrap();
        let after_first = e.plan_cache_stats();
        assert_eq!(after_first.hits, 0);
        assert!(after_first.entries >= 1);
        let r = s.execute(sql).unwrap();
        assert_eq!(r.rows.len(), 1, "cache hit returns the same result");
        assert_eq!(r.rows[0].get(0), &Value::Str("p42".into()));
        let stats = e.plan_cache_stats();
        assert_eq!(stats.hits, 1);
        // Whitespace variations normalize to the same template.
        s.execute("select name  from protein\n where nref_id = 42")
            .unwrap();
        assert_eq!(e.plan_cache_stats().hits, 2);
        // The counters are visible over SQL as ima$plan_cache.
        let r = s
            .execute("select hits, misses, entries, capacity from ima$plan_cache")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(r.rows[0].get(0).as_int().unwrap() >= 2, "hits visible");
        assert!(r.rows[0].get(1).as_int().unwrap() >= 1, "misses visible");
        assert_eq!(r.rows[0].get(3).as_int(), Some(256), "default capacity");
    }

    #[test]
    fn ddl_and_statistics_invalidate_cached_plans() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        let sql = "select name from protein where len = 3";
        s.execute(sql).unwrap();
        assert!(e.plan_cache_stats().entries >= 1);
        // DDL drops every memoized plan…
        s.execute("create index protein_len on protein (len)")
            .unwrap();
        let stats = e.plan_cache_stats();
        assert_eq!(stats.entries, 0, "DDL empties the cache");
        assert!(stats.invalidations >= 1);
        // …and the replanned statement sees the new index (fresh optimize).
        let r = s.execute(sql).unwrap();
        assert_eq!(r.rows.len(), 20);
        // CREATE STATISTICS also invalidates: histograms change plan choice.
        s.execute(sql).unwrap();
        assert!(e.plan_cache_stats().entries >= 1);
        s.execute("create statistics on protein").unwrap();
        assert_eq!(e.plan_cache_stats().entries, 0);
        // MODIFY (storage structure change) must never leave a stale plan:
        // the cached heap-scan plan would misread a B-Tree table.
        s.execute("select name from protein where nref_id = 7")
            .unwrap();
        s.execute("modify protein to btree").unwrap();
        let r = s
            .execute("select name from protein where nref_id = 7")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].get(0), &Value::Str("p7".into()));
    }

    #[test]
    fn prepared_statements_bind_parameters() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        let point = s
            .prepare("select name from protein where nref_id = $1")
            .unwrap();
        assert_eq!(point.param_count(), 1);
        // Different bindings reuse one cached template.
        for i in [3i64, 99, 17] {
            let r = point.execute(&[Value::Int(i)]).unwrap();
            assert_eq!(r.rows.len(), 1);
            assert_eq!(r.rows[0].get(0), &Value::Str(format!("p{i}")));
        }
        let stats = e.plan_cache_stats();
        assert!(stats.hits >= 2, "bindings 2 and 3 hit, got {stats:?}");
        // Parameterised writes: insert + update + delete round-trip.
        let ins = s
            .prepare("insert into protein values ($1, $2, $3)")
            .unwrap();
        ins.execute(&[Value::Int(900), Value::Str("new".into()), Value::Int(5)])
            .unwrap();
        let upd = s
            .prepare("update protein set len = $2 where nref_id = $1")
            .unwrap();
        let r = upd.execute(&[Value::Int(900), Value::Int(8)]).unwrap();
        assert_eq!(r.affected, 1);
        let r = s
            .execute("select len from protein where nref_id = 900")
            .unwrap();
        assert_eq!(r.rows[0].get(0), &Value::Int(8));
        let del = s.prepare("delete from protein where nref_id = $1").unwrap();
        assert_eq!(del.execute(&[Value::Int(900)]).unwrap().affected, 1);
        // Arity is enforced on every execution…
        assert!(matches!(
            point.execute(&[]),
            Err(Error::ParamArity {
                expected: 1,
                got: 0
            })
        ));
        assert!(matches!(
            point.execute(&[Value::Int(1), Value::Int(2)]),
            Err(Error::ParamArity {
                expected: 1,
                got: 2
            })
        ));
        // …including the textual path, which binds nothing.
        assert!(matches!(
            s.execute("select name from protein where nref_id = $1"),
            Err(Error::ParamArity {
                expected: 1,
                got: 0
            })
        ));
        // NOT NULL violations bound through parameters surface as
        // constraint errors at execution, not as corrupt rows.
        assert!(ins
            .execute(&[Value::Null, Value::Str("x".into()), Value::Null])
            .is_err());
    }

    #[test]
    fn virtual_index_changes_invalidate_plan_cache() {
        let e = engine();
        let s = e.open_session();
        load_demo(&s);
        s.execute("create statistics on protein").unwrap();
        let sql = "select name from protein where len = 3";
        s.execute(sql).unwrap();
        assert!(e.plan_cache_stats().entries >= 1);
        e.add_virtual_index("protein", &["name"]).unwrap();
        assert_eq!(
            e.plan_cache_stats().entries,
            0,
            "virtual registration empties the cache"
        );
        // The what-if estimate sees the virtual index (never a cached
        // non-virtual plan): `name = 'p3'` is selective enough (1 of 200
        // rows) that the hypothetical index must win.
        let est = e
            .estimate("select len from protein where name = 'p3'", true)
            .unwrap();
        assert!(est.uses_virtual);
        // …while normal execution replans without it.
        let r = s.execute(sql).unwrap();
        assert_eq!(r.rows.len(), 20);
        s.execute(sql).unwrap();
        assert!(e.plan_cache_stats().entries >= 1);
        e.clear_virtual_indexes();
        assert_eq!(e.plan_cache_stats().entries, 0);
    }

    #[test]
    fn plan_cache_capacity_zero_disables_caching() {
        let e = Engine::builder()
            .config(EngineConfig::monitoring())
            .plan_cache_capacity(0)
            .build()
            .unwrap();
        let s = e.open_session();
        load_demo(&s);
        let sql = "select name from protein where nref_id = 1";
        s.execute(sql).unwrap();
        s.execute(sql).unwrap();
        let stats = e.plan_cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.capacity, 0);
    }

    #[test]
    fn builder_rejects_path_and_backend_together() {
        let err = Engine::builder()
            .path("/tmp/nowhere")
            .backend(Box::new(ingot_storage::MemoryBackend::new()))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn metrics_snapshot_renders_prometheus_text() {
        let e = engine_with(EngineConfig::tracing());
        let s = e.open_session();
        load_demo(&s);
        s.execute("select count(*) from protein").unwrap();
        let text = e.metrics_snapshot().render_prometheus();
        assert!(
            text.contains("# TYPE ingot_statements_executed_total counter"),
            "{text}"
        );
        assert!(
            text.contains("ingot_buffer_pool_requests_total{outcome=\"hit\"}"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE ingot_statement_latency_ns histogram"),
            "{text}"
        );
        assert!(text.contains("le=\"+Inf\""), "{text}");
        assert!(text.contains("ingot_monitor_self_time_ns_total"), "{text}");
        assert!(text.contains("ingot_trace_enabled 1"), "{text}");
    }
}
