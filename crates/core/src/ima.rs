//! The IMA layer: monitor ring buffers registered as virtual SQL tables.
//!
//! "Each class of IMA objects can be registered as a virtual table in an
//! Ingres database which then offers the data over any supported SQL
//! interface. Because IMA objects reside only in main memory, there is no
//! disk access required to store or read the data." (§IV-A)
//!
//! The providers below capture an `Arc<Monitor>`; scanning `ima$workload`
//! etc. therefore costs one mutex snapshot and zero I/O.

use std::sync::Arc;

use ingot_catalog::Catalog;
use ingot_common::{Column, DataType, Result, Row, Schema, Value};
use ingot_planner::PlanCache;
use ingot_storage::Wal;
use ingot_trace::Tracer;
use ingot_txn::{AbortCause, LockManager, LockMode, Resource, TxnManager};

use ingot_common::waits::WaitRegistry;

use crate::ash::{AshSample, AshSampler};
use crate::engine::SessionCounters;
use crate::monitor::Monitor;

fn v_int(v: u64) -> Value {
    Value::Int(v as i64)
}

/// Register all `ima$…` virtual tables for `monitor` into `catalog`.
pub fn register_ima_tables(catalog: &mut Catalog, monitor: &Arc<Monitor>) -> Result<()> {
    // ima$statements
    let m = Arc::clone(monitor);
    catalog.register_virtual_table(
        "ima$statements",
        Schema::new(vec![
            Column::not_null("hash", DataType::Str),
            Column::new("query_text", DataType::Str),
            Column::new("frequency", DataType::Int),
            Column::new("first_seen_ns", DataType::Int),
            Column::new("last_seen_ns", DataType::Int),
        ]),
        Arc::new(move || {
            m.statements()
                .into_iter()
                .map(|s| {
                    Row::new(vec![
                        Value::Str(s.hash.to_string()),
                        Value::Str(s.text),
                        v_int(s.frequency),
                        v_int(s.first_seen_ns),
                        v_int(s.last_seen_ns),
                    ])
                })
                .collect()
        }),
    )?;

    // ima$workload
    let m = Arc::clone(monitor);
    catalog.register_virtual_table(
        "ima$workload",
        Schema::new(vec![
            Column::not_null("hash", DataType::Str),
            Column::new("seq", DataType::Int),
            Column::new("opt_cpu_ns", DataType::Int),
            Column::new("opt_dio", DataType::Int),
            Column::new("exec_cpu", DataType::Int),
            Column::new("exec_dio", DataType::Int),
            Column::new("est_cpu", DataType::Float),
            Column::new("est_dio", DataType::Float),
            Column::new("wallclock_ns", DataType::Int),
            Column::new("monitor_ns", DataType::Int),
            Column::new("at_ns", DataType::Int),
            Column::new("at_secs", DataType::Int),
        ]),
        Arc::new(move || {
            m.workload()
                .into_iter()
                .map(|w| {
                    Row::new(vec![
                        Value::Str(w.hash.to_string()),
                        v_int(w.seq),
                        v_int(w.opt_time_ns),
                        v_int(w.opt_io),
                        v_int(w.exec_cpu),
                        v_int(w.exec_io),
                        Value::Float(w.est.cpu),
                        Value::Float(w.est.io),
                        v_int(w.wallclock_ns),
                        v_int(w.monitor_ns),
                        v_int(w.at_ns),
                        v_int(w.at_sim_secs),
                    ])
                })
                .collect()
        }),
    )?;

    // ima$references
    let m = Arc::clone(monitor);
    catalog.register_virtual_table(
        "ima$references",
        Schema::new(vec![
            Column::not_null("hash", DataType::Str),
            Column::new("object_type", DataType::Str),
            Column::new("object_id", DataType::Int),
            Column::new("table_id", DataType::Int),
        ]),
        Arc::new(move || {
            m.references()
                .into_iter()
                .map(|r| {
                    Row::new(vec![
                        Value::Str(r.hash.to_string()),
                        Value::Str(r.object.tag().to_owned()),
                        v_int(r.object_id),
                        v_int(u64::from(r.table.raw())),
                    ])
                })
                .collect()
        }),
    )?;

    // ima$tables
    let m = Arc::clone(monitor);
    catalog.register_virtual_table(
        "ima$tables",
        Schema::new(vec![
            Column::not_null("table_id", DataType::Int),
            Column::new("table_name", DataType::Str),
            Column::new("frequency", DataType::Int),
            Column::new("storage", DataType::Str),
            Column::new("data_pages", DataType::Int),
            Column::new("overflow_pages", DataType::Int),
            Column::new("row_count", DataType::Int),
        ]),
        Arc::new(move || {
            m.tables()
                .into_iter()
                .map(|t| {
                    Row::new(vec![
                        v_int(u64::from(t.id.raw())),
                        Value::Str(t.name),
                        v_int(t.frequency),
                        Value::Str(t.storage),
                        v_int(t.data_pages),
                        v_int(t.overflow_pages),
                        v_int(t.rows),
                    ])
                })
                .collect()
        }),
    )?;

    // ima$indexes
    let m = Arc::clone(monitor);
    catalog.register_virtual_table(
        "ima$indexes",
        Schema::new(vec![
            Column::not_null("index_id", DataType::Int),
            Column::new("index_name", DataType::Str),
            Column::new("table_id", DataType::Int),
            Column::new("frequency", DataType::Int),
            Column::new("pages", DataType::Int),
        ]),
        Arc::new(move || {
            m.indexes()
                .into_iter()
                .map(|i| {
                    Row::new(vec![
                        v_int(u64::from(i.id.raw())),
                        Value::Str(i.name),
                        v_int(u64::from(i.table.raw())),
                        v_int(i.frequency),
                        v_int(i.pages),
                    ])
                })
                .collect()
        }),
    )?;

    // ima$attributes
    let m = Arc::clone(monitor);
    catalog.register_virtual_table(
        "ima$attributes",
        Schema::new(vec![
            Column::not_null("table_id", DataType::Int),
            Column::new("attr_id", DataType::Int),
            Column::new("attr_name", DataType::Str),
            Column::new("frequency", DataType::Int),
            Column::new("has_histogram", DataType::Bool),
        ]),
        Arc::new(move || {
            m.attributes()
                .into_iter()
                .map(|a| {
                    Row::new(vec![
                        v_int(u64::from(a.table.raw())),
                        v_int(a.column as u64),
                        Value::Str(a.name),
                        v_int(a.frequency),
                        Value::Bool(a.has_histogram),
                    ])
                })
                .collect()
        }),
    )?;

    // ima$statistics
    let m = Arc::clone(monitor);
    catalog.register_virtual_table(
        "ima$statistics",
        Schema::new(vec![
            Column::not_null("at_ns", DataType::Int),
            Column::new("at_secs", DataType::Int),
            Column::new("sessions", DataType::Int),
            Column::new("max_sessions", DataType::Int),
            Column::new("locks_held", DataType::Int),
            Column::new("lock_waiting", DataType::Int),
            Column::new("lock_waits_total", DataType::Int),
            Column::new("deadlocks_total", DataType::Int),
            Column::new("active_txns", DataType::Int),
            Column::new("cache_hits", DataType::Int),
            Column::new("cache_misses", DataType::Int),
            Column::new("physical_reads", DataType::Int),
            Column::new("physical_writes", DataType::Int),
            Column::new("statements_executed", DataType::Int),
        ]),
        Arc::new(move || {
            m.statistics()
                .into_iter()
                .map(|s| {
                    Row::new(vec![
                        v_int(s.at_ns),
                        v_int(s.at_sim_secs),
                        v_int(s.sessions),
                        v_int(s.max_sessions),
                        v_int(s.locks_held),
                        v_int(s.lock_waiting),
                        v_int(s.lock_waits_total),
                        v_int(s.deadlocks_total),
                        v_int(s.active_txns),
                        v_int(s.cache_hits),
                        v_int(s.cache_misses),
                        v_int(s.physical_reads),
                        v_int(s.physical_writes),
                        v_int(s.statements_executed),
                    ])
                })
                .collect()
        }),
    )?;

    Ok(())
}

/// Register `ima$monitor_health`: a single-row self-observation of the
/// monitor itself (the "who watches the watchers" table, mirroring
/// `ima$daemon_health` for the in-process side).
pub fn register_monitor_health_table(catalog: &mut Catalog, monitor: &Arc<Monitor>) -> Result<()> {
    let m = Arc::clone(monitor);
    catalog.register_virtual_table(
        "ima$monitor_health",
        Schema::new(vec![
            Column::not_null("self_time_ns", DataType::Int),
            Column::new("sensor_calls", DataType::Int),
            Column::new("statements_recorded", DataType::Int),
            Column::new("statements_len", DataType::Int),
            Column::new("statements_capacity", DataType::Int),
            Column::new("statement_evictions", DataType::Int),
            Column::new("workload_len", DataType::Int),
            Column::new("workload_capacity", DataType::Int),
            Column::new("workload_wrapped", DataType::Int),
            Column::new("references_len", DataType::Int),
            Column::new("references_capacity", DataType::Int),
            Column::new("references_wrapped", DataType::Int),
            Column::new("statistics_len", DataType::Int),
            Column::new("statistics_capacity", DataType::Int),
            Column::new("statistics_wrapped", DataType::Int),
        ]),
        Arc::new(move || {
            let h = m.health();
            vec![Row::new(vec![
                v_int(h.self_time_ns),
                v_int(h.sensor_calls),
                v_int(h.statements_recorded),
                v_int(h.statements_len as u64),
                v_int(h.statements_capacity as u64),
                v_int(h.statement_evictions),
                v_int(h.workload_len as u64),
                v_int(h.workload_capacity as u64),
                v_int(h.workload_total.saturating_sub(h.workload_len as u64)),
                v_int(h.references_len as u64),
                v_int(h.references_capacity as u64),
                v_int(h.references_total.saturating_sub(h.references_len as u64)),
                v_int(h.statistics_len as u64),
                v_int(h.statistics_capacity as u64),
                v_int(h.statistics_total.saturating_sub(h.statistics_len as u64)),
            ])]
        }),
    )?;
    Ok(())
}

/// Register the tracing exports: `ima$operator_stats` (per-statement,
/// per-plan-operator aggregates from the span layer) and
/// `ima$latency_histograms` (log2-bucketed wall-clock latency per statement
/// hash, with cumulative counts so quantiles are derivable in SQL).
pub fn register_trace_tables(catalog: &mut Catalog, tracer: &Arc<Tracer>) -> Result<()> {
    let t = Arc::clone(tracer);
    catalog.register_virtual_table(
        "ima$operator_stats",
        Schema::new(vec![
            Column::not_null("hash", DataType::Str),
            Column::new("op_id", DataType::Int),
            Column::new("parent_id", DataType::Int),
            Column::new("depth", DataType::Int),
            Column::new("op", DataType::Str),
            Column::new("detail", DataType::Str),
            Column::new("executions", DataType::Int),
            Column::new("rows_in", DataType::Int),
            Column::new("rows_out", DataType::Int),
            Column::new("tuples", DataType::Int),
            Column::new("pages", DataType::Int),
            Column::new("elapsed_ns", DataType::Int),
            Column::new("est_rows", DataType::Float),
            Column::new("est_cost", DataType::Float),
        ]),
        Arc::new(move || {
            t.operator_stats()
                .into_iter()
                .map(|(hash, o)| {
                    Row::new(vec![
                        Value::Str(hash.to_string()),
                        v_int(u64::from(o.op_id)),
                        Value::Int(o.parent.map_or(-1, i64::from)),
                        v_int(u64::from(o.depth)),
                        Value::Str(o.op),
                        Value::Str(o.detail),
                        v_int(o.executions),
                        v_int(o.rows_in),
                        v_int(o.rows_out),
                        v_int(o.tuples),
                        v_int(o.pages),
                        v_int(o.elapsed_ns),
                        Value::Float(o.est_rows),
                        Value::Float(o.est_cost),
                    ])
                })
                .collect()
        }),
    )?;

    let t = Arc::clone(tracer);
    catalog.register_virtual_table(
        "ima$latency_histograms",
        Schema::new(vec![
            Column::not_null("hash", DataType::Str),
            Column::new("bucket", DataType::Int),
            Column::new("lo_ns", DataType::Int),
            Column::new("hi_ns", DataType::Int),
            Column::new("count", DataType::Int),
            Column::new("cum_count", DataType::Int),
        ]),
        Arc::new(move || {
            let mut rows = Vec::new();
            for (hash, hist) in t.histograms() {
                for (bucket, lo, hi, count, cum) in hist.rows() {
                    rows.push(Row::new(vec![
                        Value::Str(hash.to_string()),
                        v_int(bucket as u64),
                        v_int(lo),
                        v_int(hi),
                        v_int(count),
                        v_int(cum),
                    ]));
                }
            }
            rows
        }),
    )?;
    Ok(())
}

/// Register `ima$plan_cache`: a single-row counter snapshot of the shared
/// plan cache (hit/miss/eviction/invalidation totals plus live entry count
/// and capacity), so cache effectiveness is observable over plain SQL like
/// every other IMA object.
pub fn register_plan_cache_table(catalog: &mut Catalog, cache: &Arc<PlanCache>) -> Result<()> {
    let c = Arc::clone(cache);
    catalog.register_virtual_table(
        "ima$plan_cache",
        Schema::new(vec![
            Column::not_null("hits", DataType::Int),
            Column::new("misses", DataType::Int),
            Column::new("evictions", DataType::Int),
            Column::new("invalidations", DataType::Int),
            Column::new("entries", DataType::Int),
            Column::new("capacity", DataType::Int),
        ]),
        Arc::new(move || {
            let s = c.stats();
            vec![Row::new(vec![
                v_int(s.hits),
                v_int(s.misses),
                v_int(s.evictions),
                v_int(s.invalidations),
                v_int(s.entries),
                v_int(s.capacity),
            ])]
        }),
    )?;
    Ok(())
}

/// Register `ima$wal`: a single-row snapshot of the write-ahead log — LSN
/// watermarks (appended / durable / truncation low-water), append and fsync
/// totals, group-commit batching effectiveness, and the salvage/replay
/// tallies of the last crash recovery. Reads atomics plus one short-lived
/// internal mutex; querying it never touches the log file.
pub fn register_wal_table(catalog: &mut Catalog, wal: &Arc<Wal>) -> Result<()> {
    let w = Arc::clone(wal);
    catalog.register_virtual_table(
        "ima$wal",
        Schema::new(vec![
            Column::not_null("fsync_mode", DataType::Str),
            Column::new("current_lsn", DataType::Int),
            Column::new("durable_lsn", DataType::Int),
            Column::new("low_water_lsn", DataType::Int),
            Column::new("appends", DataType::Int),
            Column::new("bytes_written", DataType::Int),
            Column::new("fsyncs", DataType::Int),
            Column::new("truncations", DataType::Int),
            Column::new("groups", DataType::Int),
            Column::new("grouped_commits", DataType::Int),
            Column::new("max_group", DataType::Int),
            Column::new("recovered_records", DataType::Int),
            Column::new("replayed_records", DataType::Int),
            Column::new("replayed_txns", DataType::Int),
            Column::new("discarded_bytes", DataType::Int),
        ]),
        Arc::new(move || {
            let s = w.stats();
            vec![Row::new(vec![
                Value::Str(w.mode().to_string()),
                v_int(s.current_lsn),
                v_int(s.durable_lsn),
                v_int(s.low_water_lsn),
                v_int(s.appends),
                v_int(s.bytes_written),
                v_int(s.fsyncs),
                v_int(s.truncations),
                v_int(s.groups),
                v_int(s.grouped_commits),
                v_int(s.max_group),
                v_int(s.recovered_records),
                v_int(s.replayed_records),
                v_int(s.replayed_txns),
                v_int(s.discarded_bytes),
            ])]
        }),
    )?;
    Ok(())
}

/// Register the concurrency exports: `ima$locks` (one row per granted or
/// queued lock request, live from the lock manager), `ima$sessions` (a
/// single row of session/transaction/lock counters) and `ima$transactions`
/// (the MVCC authority: commit sequence, active snapshots, abort taxonomy,
/// first-committer-wins validation failures and version-chain GC counters).
/// All read atomics or a short-lived internal mutex — a query over them
/// never takes table locks, so lock contention itself is observable *during*
/// the contention, which is the paper's lock-monitoring scenario.
pub fn register_concurrency_tables(
    catalog: &mut Catalog,
    locks: &Arc<LockManager>,
    txns: &Arc<TxnManager>,
    sessions: &Arc<SessionCounters>,
) -> Result<()> {
    // ima$locks
    let l = Arc::clone(locks);
    catalog.register_virtual_table(
        "ima$locks",
        Schema::new(vec![
            Column::not_null("txn", DataType::Int),
            Column::not_null("table_id", DataType::Int),
            Column::new("row_id", DataType::Int),
            Column::new("mode", DataType::Str),
            Column::new("state", DataType::Str),
        ]),
        Arc::new(move || {
            l.snapshot_locks()
                .into_iter()
                .map(|i| {
                    let (table, row) = match i.resource {
                        Resource::Table(t) => (t, Value::Null),
                        Resource::Row(t, r) => (t, Value::Int(r as i64)),
                    };
                    Row::new(vec![
                        Value::Int(i.txn.raw() as i64),
                        v_int(u64::from(table.raw())),
                        row,
                        Value::Str(
                            match i.mode {
                                LockMode::Shared => "S",
                                LockMode::Exclusive => "X",
                            }
                            .to_owned(),
                        ),
                        Value::Str(if i.granted { "granted" } else { "waiting" }.to_owned()),
                    ])
                })
                .collect()
        }),
    )?;

    // ima$sessions
    let l = Arc::clone(locks);
    let t = Arc::clone(txns);
    let s = Arc::clone(sessions);
    catalog.register_virtual_table(
        "ima$sessions",
        Schema::new(vec![
            Column::not_null("current_sessions", DataType::Int),
            Column::new("peak_sessions", DataType::Int),
            Column::new("active_txns", DataType::Int),
            Column::new("locks_held", DataType::Int),
            Column::new("lock_waiting", DataType::Int),
            Column::new("lock_waits_total", DataType::Int),
            Column::new("deadlocks_total", DataType::Int),
            Column::new("locks_granted_total", DataType::Int),
        ]),
        Arc::new(move || {
            let ls = l.stats();
            vec![Row::new(vec![
                v_int(s.current()),
                v_int(s.peak()),
                v_int(t.active_count()),
                v_int(ls.held),
                v_int(ls.waiting),
                v_int(ls.waits_total),
                v_int(ls.deadlocks_total),
                v_int(ls.granted_total),
            ])]
        }),
    )?;

    // ima$transactions: metric/value rows, plus one `snapshot_ts` row per
    // active snapshot (its `txn` column names the holder). Chain-shape rows
    // (`chain_*`) refresh on each GC sweep.
    let t = Arc::clone(txns);
    catalog.register_virtual_table(
        "ima$transactions",
        Schema::new(vec![
            Column::not_null("metric", DataType::Str),
            Column::new("txn", DataType::Int),
            Column::new("value", DataType::Int),
        ]),
        Arc::new(move || {
            let mut rows = Vec::new();
            let mut push = |metric: &str, v: u64| {
                rows.push(Row::new(vec![
                    Value::Str(metric.to_owned()),
                    Value::Null,
                    v_int(v),
                ]));
            };
            push("commit_seq", t.read_ts());
            push("active_txns", t.active_count());
            let mut snaps = t.active_snapshots();
            push("active_snapshots", snaps.len() as u64);
            push("gc_watermark", t.gc_watermark());
            push("committed_total", t.committed_count());
            push("aborted_total", t.aborted_count());
            for cause in AbortCause::ALL {
                push(
                    &format!("aborts_{}", cause.name()),
                    t.aborts_by_cause(cause),
                );
            }
            push("validation_failures", t.validation_failures());
            push("undo_failures", t.undo_failures());
            push("gc_runs", t.gc_runs());
            push("gc_versions_removed", t.gc_versions_removed());
            push("gc_last_watermark", t.gc_last_watermark());
            let (versions, chains, longest) = t.chain_shape();
            push("chain_versions", versions);
            push("chain_count", chains);
            push("chain_longest", longest);
            snaps.sort_unstable();
            for (txn, ts) in snaps {
                rows.push(Row::new(vec![
                    Value::Str("snapshot_ts".to_owned()),
                    v_int(txn),
                    v_int(ts),
                ]));
            }
            rows
        }),
    )?;
    Ok(())
}

/// Register the wait-event + ASH virtual tables: `ima$wait_events`
/// (cumulative counts/ns per event, always all taxonomy rows),
/// `ima$active_sessions` (live: every session currently mid-statement with
/// its wait state computed at read time) and `ima$ash` (the bounded sample
/// history ring).
pub fn register_wait_tables(
    catalog: &mut Catalog,
    registry: &Arc<WaitRegistry>,
    sampler: &Arc<AshSampler>,
) -> Result<()> {
    let r = Arc::clone(registry);
    catalog.register_virtual_table(
        "ima$wait_events",
        Schema::new(vec![
            Column::not_null("event", DataType::Str),
            Column::new("count", DataType::Int),
            Column::new("total_ns", DataType::Int),
        ]),
        Arc::new(move || {
            r.snapshot()
                .into_iter()
                .map(|t| {
                    Row::new(vec![
                        Value::Str(t.event.name().to_owned()),
                        v_int(t.count),
                        v_int(t.total_ns),
                    ])
                })
                .collect()
        }),
    )?;

    let ash_row = |s: AshSample| {
        Row::new(vec![
            v_int(s.at_ns),
            v_int(s.session_id),
            Value::Str(s.hash.to_string()),
            Value::Str(s.template),
            v_int(s.elapsed_ns),
            Value::Str(s.event.to_owned()),
        ])
    };
    let ash_schema = || {
        Schema::new(vec![
            Column::not_null("at_ns", DataType::Int),
            Column::new("session", DataType::Int),
            Column::new("hash", DataType::Str),
            Column::new("statement", DataType::Str),
            Column::new("elapsed_ns", DataType::Int),
            Column::new("event", DataType::Str),
        ])
    };

    let s = Arc::clone(sampler);
    catalog.register_virtual_table(
        "ima$active_sessions",
        ash_schema(),
        Arc::new(move || s.active_snapshot().into_iter().map(ash_row).collect()),
    )?;

    let s = Arc::clone(sampler);
    catalog.register_virtual_table(
        "ima$ash",
        ash_schema(),
        Arc::new(move || s.history().into_iter().map(ash_row).collect()),
    )?;
    Ok(())
}

/// Name of the storage-daemon health table (registered only while a daemon
/// is attached to the engine — see [`register_daemon_health_table`]).
pub const IMA_DAEMON_HEALTH: &str = "ima$daemon_health";

/// Register `ima$daemon_health` backed by `provider` (one row per snapshot
/// of the daemon's health-state machine). The schema is defined here so all
/// IMA shapes live in one place; the storage daemon supplies the provider
/// because the counters are its own. Provider rows must match:
/// `state` (text), `polls`, `failed_polls`, `consecutive_failures`,
/// `retries`, `buffered_snapshots`, `recovered_snapshots`,
/// `dropped_snapshots` (int), `degraded_since_secs` (int, -1 when healthy)
/// and `last_error` (text).
pub fn register_daemon_health_table(
    catalog: &mut Catalog,
    provider: ingot_catalog::VirtualProvider,
) -> Result<()> {
    catalog.register_virtual_table(IMA_DAEMON_HEALTH, daemon_health_schema(), provider)?;
    Ok(())
}

/// The `ima$daemon_health` row shape.
pub fn daemon_health_schema() -> Schema {
    Schema::new(vec![
        Column::not_null("state", DataType::Str),
        Column::new("polls", DataType::Int),
        Column::new("failed_polls", DataType::Int),
        Column::new("consecutive_failures", DataType::Int),
        Column::new("retries", DataType::Int),
        Column::new("buffered_snapshots", DataType::Int),
        Column::new("recovered_snapshots", DataType::Int),
        Column::new("dropped_snapshots", DataType::Int),
        Column::new("degraded_since_secs", DataType::Int),
        Column::new("last_error", DataType::Str),
    ])
}

/// Name of the wire-connection fleet table (registered on the first
/// [`Engine::attach_connections_provider`][crate::Engine::attach_connections_provider]
/// — i.e. only once a server starts serving this engine over a socket).
pub const IMA_CONNECTIONS: &str = "ima$connections";

/// Register `ima$connections` backed by `provider` (one row per live wire
/// connection). The schema is defined here so all IMA shapes live in one
/// place; `ingot-server` supplies the provider because the registry is its
/// own. Provider rows must match: `session` (int), `peer` (text), `client`
/// (text), `state` (text: `idle` / `active` / `idle_in_txn` / `draining`),
/// `statement` (text, null when idle), `wait_event` (text, null when not
/// waiting), `idle_ms` (int), `txn_age_ms` (int, -1 outside a transaction).
pub fn register_connections_table(
    catalog: &mut Catalog,
    provider: ingot_catalog::VirtualProvider,
) -> Result<()> {
    catalog.register_virtual_table(IMA_CONNECTIONS, connections_schema(), provider)?;
    Ok(())
}

/// The `ima$connections` row shape.
pub fn connections_schema() -> Schema {
    Schema::new(vec![
        Column::not_null("session", DataType::Int),
        Column::not_null("peer", DataType::Str),
        Column::new("client", DataType::Str),
        Column::not_null("state", DataType::Str),
        Column::new("statement", DataType::Str),
        Column::new("wait_event", DataType::Str),
        Column::new("idle_ms", DataType::Int),
        Column::new("txn_age_ms", DataType::Int),
    ])
}

/// The names of all IMA virtual tables, in registration order, under the
/// *full* monitoring configuration (`monitor_enabled` plus
/// `wait_events_enabled`). This is the superset used for documentation and
/// completeness checks; an engine with waits disabled skips the three wait
/// tables — use [`ima_table_names`] for the set a given configuration
/// actually registers. (`ima$daemon_health` is registered separately, only
/// while a storage daemon is attached, and `ima$connections` only once a
/// server attaches a fleet provider.)
pub const IMA_TABLE_NAMES: &[&str] = &[
    "ima$statements",
    "ima$workload",
    "ima$references",
    "ima$tables",
    "ima$indexes",
    "ima$attributes",
    "ima$statistics",
    "ima$monitor_health",
    "ima$plan_cache",
    "ima$locks",
    "ima$sessions",
    "ima$transactions",
    "ima$wait_events",
    "ima$active_sessions",
    "ima$ash",
    "ima$wal",
    "ima$operator_stats",
    "ima$latency_histograms",
];

/// The wait-subsystem subset of [`IMA_TABLE_NAMES`] — present only when
/// `wait_events_enabled` is on (see [`register_wait_tables`]).
pub const IMA_WAIT_TABLE_NAMES: &[&str] = &["ima$wait_events", "ima$active_sessions", "ima$ash"];

/// The IMA tables an engine built from `config` actually registers, in
/// registration order: empty when monitoring is off, and without the
/// [`IMA_WAIT_TABLE_NAMES`] subset when `wait_events_enabled` is off.
pub fn ima_table_names(config: &ingot_common::EngineConfig) -> Vec<&'static str> {
    if !config.monitor_enabled {
        return Vec::new();
    }
    IMA_TABLE_NAMES
        .iter()
        .copied()
        .filter(|name| config.wait_events_enabled || !IMA_WAIT_TABLE_NAMES.contains(name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::EngineConfig;

    #[test]
    fn table_names_follow_config() {
        let full = EngineConfig::monitoring();
        assert_eq!(ima_table_names(&full), IMA_TABLE_NAMES);

        let no_waits = EngineConfig {
            wait_events_enabled: false,
            ..EngineConfig::monitoring()
        };
        let names = ima_table_names(&no_waits);
        assert_eq!(
            names.len(),
            IMA_TABLE_NAMES.len() - IMA_WAIT_TABLE_NAMES.len()
        );
        for wait_table in IMA_WAIT_TABLE_NAMES {
            assert!(IMA_TABLE_NAMES.contains(wait_table));
            assert!(!names.contains(wait_table));
        }

        assert!(ima_table_names(&EngineConfig::original()).is_empty());
    }
}
