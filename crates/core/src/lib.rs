#![forbid(unsafe_code)]
//! The Ingot engine with **integrated performance monitoring** — the primary
//! contribution of *An Integrated Approach to Performance Monitoring for
//! Autonomous Tuning* (Thiem & Sattler, ICDE 2009), rebuilt in Rust.
//!
//! The crate wires the substrates (storage, catalog, SQL front end, planner,
//! executor, lock manager) into an [`engine::Engine`] whose statement path
//! carries *local sensors* at every stage of Fig 2:
//!
//! ```text
//! Query Interface → Parser → Optimiser → Execution → Result
//!   wallclock start  text+hash  est. costs   actual     wallclock stop
//!                    references used indexes costs
//! ```
//!
//! Sensor data lands in in-memory ring buffers ([`monitor::Monitor`], the
//! Fig 3 schema) which are registered as virtual SQL tables (`ima$…`) through
//! [`ima`] — the analogue of the Ingres Management Architecture: "with IMA it
//! is possible to easily access in-memory structures within the DBMS over
//! standard SQL".
//!
//! Monitoring is a per-instance switch ([`ingot_common::EngineConfig`]): the
//! paper's three evaluation setups are `EngineConfig::original()` (sensors
//! absent), `EngineConfig::monitoring()` (sensors active), and the latter
//! plus the storage daemon from `ingot-daemon`.

pub mod ash;
pub mod engine;
pub mod ima;
pub mod monitor;

pub use ash::{ActiveSession, AshSample, AshSampler, CurrentStatement, ON_CPU};
pub use engine::{Engine, EngineBuilder, Prepared, Session, StatementResult};
pub use ima::{
    connections_schema, daemon_health_schema, ima_table_names, register_concurrency_tables,
    register_connections_table, register_daemon_health_table, register_monitor_health_table,
    register_plan_cache_table, register_trace_tables, register_wait_tables, IMA_CONNECTIONS,
    IMA_DAEMON_HEALTH, IMA_TABLE_NAMES, IMA_WAIT_TABLE_NAMES,
};
pub use ingot_planner::{PlanCache, PlanCacheStats};
pub use ingot_trace::{MetricsSnapshot, Tracer};
pub use monitor::{Monitor, MonitorHealth, StatementSensor};
