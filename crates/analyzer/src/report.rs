//! Report rendering: the textual and graphical feedback of §IV-C/§V-B —
//! the cost diagram (Fig 6), the locks diagram (Fig 8) and the combined
//! analysis report.

use std::fmt::Write as _;
use std::sync::Arc;

use ingot_common::Result;
use ingot_core::Engine;

use crate::advisor::{register, IndexCandidate};
use crate::rules::Recommendation;
use crate::view::WorkloadView;

/// One bar group of the cost diagram (Fig 6): per-execution costs of one of
/// the most expensive statements.
#[derive(Debug, Clone)]
pub struct CostDiagramEntry {
    /// Label (Q1, Q2, …) in descending actual-cost order.
    pub label: String,
    /// Statement text.
    pub text: String,
    /// Actual cost per execution (total units).
    pub actual: f64,
    /// Optimizer-estimated cost per execution.
    pub estimated: f64,
    /// Estimated cost with the recommended virtual indexes registered.
    pub estimated_with_virtual: f64,
}

/// The Fig 6 cost diagram.
#[derive(Debug, Clone, Default)]
pub struct CostDiagram {
    /// Entries, most expensive first.
    pub entries: Vec<CostDiagramEntry>,
}

impl CostDiagram {
    /// Render as an aligned text chart with proportional bars.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Cost diagram — most expensive statements (per execution)"
        );
        let _ = writeln!(
            out,
            "  (a = actual, e = estimated, v = estimated w/ virtual indexes)"
        );
        let max = self
            .entries
            .iter()
            .flat_map(|e| [e.actual, e.estimated, e.estimated_with_virtual])
            .fold(1.0f64, f64::max);
        for e in &self.entries {
            let bar = |v: f64| {
                let w = ((v / max) * 40.0).round() as usize;
                "#".repeat(w.max(usize::from(v > 0.0)))
            };
            let _ = writeln!(out, "{:<4} {}", e.label, truncate(&e.text, 70));
            let _ = writeln!(out, "   a {:>12.0} |{}", e.actual, bar(e.actual));
            let _ = writeln!(out, "   e {:>12.0} |{}", e.estimated, bar(e.estimated));
            let _ = writeln!(
                out,
                "   v {:>12.0} |{}",
                e.estimated_with_virtual,
                bar(e.estimated_with_virtual)
            );
        }
        out
    }
}

/// One point of the locks diagram.
#[derive(Debug, Clone, Default)]
pub struct LockPoint {
    /// Simulated seconds.
    pub at_secs: u64,
    /// Locks held at the sample.
    pub held: u64,
    /// Lock waits since the previous sample.
    pub waits_delta: u64,
    /// Deadlocks since the previous sample.
    pub deadlocks_delta: u64,
}

/// The Fig 8 locks diagram: lock usage over time with wait/deadlock markers.
#[derive(Debug, Clone, Default)]
pub struct LocksDiagram {
    /// Time series (ascending).
    pub points: Vec<LockPoint>,
}

impl LocksDiagram {
    /// Render as a text chart: one line per sample, `W`/`D` markers for
    /// waits and deadlocks.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Locks diagram — locks in use over time");
        let max = self.points.iter().map(|p| p.held).max().unwrap_or(1).max(1);
        for p in &self.points {
            let w = ((p.held as f64 / max as f64) * 40.0).round() as usize;
            let mut markers = String::new();
            if p.waits_delta > 0 {
                let _ = write!(markers, " W×{}", p.waits_delta);
            }
            if p.deadlocks_delta > 0 {
                let _ = write!(markers, " D×{}", p.deadlocks_delta);
            }
            let _ = writeln!(
                out,
                "t={:>6}s locks={:>4} |{}{}",
                p.at_secs,
                p.held,
                "#".repeat(w),
                markers
            );
        }
        out
    }
}

/// The full analyzer output.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Recommendations in rule order.
    pub recommendations: Vec<Recommendation>,
    /// Fig 6.
    pub cost_diagram: CostDiagram,
    /// Fig 8.
    pub locks_diagram: LocksDiagram,
}

impl AnalysisReport {
    /// Render the complete textual report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== Ingot analyzer report ===");
        let _ = writeln!(out, "\nRecommendations ({}):", self.recommendations.len());
        for (i, r) in self.recommendations.iter().enumerate() {
            let _ = writeln!(out, "  {:>2}. {}", i + 1, r.describe());
            let _ = writeln!(out, "      SQL: {}", r.to_sql());
        }
        let _ = writeln!(out);
        out.push_str(&self.cost_diagram.render());
        let _ = writeln!(out);
        out.push_str(&self.locks_diagram.render());
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n])
    }
}

/// Build the Fig 6 cost diagram: the `top_n` most expensive query statements
/// with actual, estimated and estimated-with-virtual-indexes costs.
pub fn build_cost_diagram(
    engine: &Arc<Engine>,
    view: &WorkloadView,
    chosen: &[IndexCandidate],
    top_n: usize,
) -> Result<CostDiagram> {
    engine.clear_virtual_indexes();
    for c in chosen {
        register(engine, c)?;
    }
    let mut entries = Vec::new();
    for (i, s) in view
        .statements
        .iter()
        .filter(|s| s.is_query())
        .take(top_n)
        .enumerate()
    {
        let n = s.executions.max(1) as f64;
        let with_virtual = engine
            .estimate(&s.text, true)
            .map(|e| e.est.total())
            .unwrap_or(0.0);
        entries.push(CostDiagramEntry {
            label: format!("Q{}", i + 1),
            text: s.text.clone(),
            actual: s.actual.total() / n,
            estimated: s.est.total() / n,
            estimated_with_virtual: with_virtual,
        });
    }
    engine.clear_virtual_indexes();
    Ok(CostDiagram { entries })
}

/// Build the Fig 8 locks diagram from the statistics time series.
pub fn build_locks_diagram(view: &WorkloadView) -> LocksDiagram {
    let mut points = Vec::with_capacity(view.statistics.len());
    let mut prev_waits = 0u64;
    let mut prev_deadlocks = 0u64;
    for (i, s) in view.statistics.iter().enumerate() {
        let (waits_delta, deadlocks_delta) = if i == 0 {
            (0, 0)
        } else {
            (
                s.lock_waits_total.saturating_sub(prev_waits),
                s.deadlocks_total.saturating_sub(prev_deadlocks),
            )
        };
        prev_waits = s.lock_waits_total;
        prev_deadlocks = s.deadlocks_total;
        points.push(LockPoint {
            at_secs: s.at_secs,
            held: s.locks_held,
            waits_delta,
            deadlocks_delta,
        });
    }
    LocksDiagram { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::StatPoint;

    #[test]
    fn locks_diagram_derives_deltas() {
        let view = WorkloadView {
            statistics: vec![
                StatPoint {
                    at_secs: 0,
                    locks_held: 2,
                    lock_waits_total: 0,
                    deadlocks_total: 0,
                    ..Default::default()
                },
                StatPoint {
                    at_secs: 30,
                    locks_held: 5,
                    lock_waits_total: 3,
                    deadlocks_total: 1,
                    ..Default::default()
                },
                StatPoint {
                    at_secs: 60,
                    locks_held: 1,
                    lock_waits_total: 3,
                    deadlocks_total: 1,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let d = build_locks_diagram(&view);
        assert_eq!(d.points[1].waits_delta, 3);
        assert_eq!(d.points[1].deadlocks_delta, 1);
        assert_eq!(d.points[2].waits_delta, 0);
        let text = d.render();
        assert!(text.contains("W×3") && text.contains("D×1"), "{text}");
    }

    #[test]
    fn cost_diagram_renders_bars() {
        let d = CostDiagram {
            entries: vec![CostDiagramEntry {
                label: "Q1".into(),
                text: "select …".into(),
                actual: 100.0,
                estimated: 40.0,
                estimated_with_virtual: 10.0,
            }],
        };
        let text = d.render();
        assert!(text.contains("Q1"));
        // Actual bar is the longest.
        let lines: Vec<&str> = text.lines().collect();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        let a = lines
            .iter()
            .find(|l| l.trim_start().starts_with("a "))
            .unwrap();
        let v = lines
            .iter()
            .find(|l| l.trim_start().starts_with("v "))
            .unwrap();
        assert!(count(a) > count(v));
    }

    #[test]
    fn report_render_includes_everything() {
        let report = AnalysisReport {
            recommendations: vec![Recommendation::ModifyToBTree {
                table: "protein".into(),
                overflow_ratio: 0.4,
            }],
            ..Default::default()
        };
        let text = report.render();
        assert!(text.contains("modify protein to btree"));
        assert!(text.contains("Cost diagram"));
        assert!(text.contains("Locks diagram"));
    }
}
