//! The workload view: a normalised aggregation of collected monitoring data,
//! buildable from the live monitor (short-term) or the workload database
//! (long-term trend analysis).

use std::collections::HashMap;

use ingot_common::{Cost, Result, TableId};
use ingot_core::{Engine, Monitor};
use ingot_daemon::WorkloadDb;

/// Per-statement aggregate.
#[derive(Debug, Clone)]
pub struct StmtAgg {
    /// Statement hash (hex).
    pub hash: String,
    /// Statement text.
    pub text: String,
    /// Recorded executions.
    pub executions: u64,
    /// Summed actual cost (CPU tuples, IO pages).
    pub actual: Cost,
    /// Summed estimated cost.
    pub est: Cost,
    /// Summed wall-clock, nanoseconds.
    pub wallclock_ns: u64,
    /// Tables the statement references.
    pub tables: Vec<TableId>,
}

impl StmtAgg {
    /// True for statements the advisor/what-if machinery can re-plan.
    pub fn is_query(&self) -> bool {
        self.text
            .trim_start()
            .to_ascii_lowercase()
            .starts_with("select")
    }

    /// Mean actual total cost per execution.
    pub fn avg_actual_total(&self) -> f64 {
        self.actual.total() / self.executions.max(1) as f64
    }
}

/// Per-table aggregate (latest snapshot).
#[derive(Debug, Clone)]
pub struct TableAgg {
    /// Table id.
    pub id: TableId,
    /// Name.
    pub name: String,
    /// Reference frequency.
    pub frequency: u64,
    /// Storage structure tag.
    pub storage: String,
    /// Main data pages.
    pub data_pages: u64,
    /// Overflow pages.
    pub overflow_pages: u64,
    /// Rows.
    pub rows: u64,
}

impl TableAgg {
    /// Overflow ratio relative to main pages.
    pub fn overflow_ratio(&self) -> f64 {
        if self.data_pages == 0 {
            0.0
        } else {
            self.overflow_pages as f64 / self.data_pages as f64
        }
    }
}

/// Per-attribute aggregate (latest snapshot).
#[derive(Debug, Clone)]
pub struct AttrAgg {
    /// Owning table.
    pub table: TableId,
    /// Owning table's name.
    pub table_name: String,
    /// Column position.
    pub column: usize,
    /// Column name.
    pub name: String,
    /// Reference frequency.
    pub frequency: u64,
    /// Histogram present at last reference.
    pub has_histogram: bool,
}

/// One statistics point (locks diagram input).
#[derive(Debug, Clone, Default)]
pub struct StatPoint {
    /// Simulated seconds.
    pub at_secs: u64,
    /// Locks currently held.
    pub locks_held: u64,
    /// Transactions blocked.
    pub lock_waiting: u64,
    /// Cumulative waits.
    pub lock_waits_total: u64,
    /// Cumulative deadlocks.
    pub deadlocks_total: u64,
}

/// Cumulative time lost to one wait event (system-wide).
#[derive(Debug, Clone, Default)]
pub struct WaitAgg {
    /// Wait-event name (`LockWaitX`, `WalFsync`, …).
    pub event: String,
    /// Completed waits.
    pub count: u64,
    /// Total nanoseconds charged.
    pub total_ns: u64,
}

/// ASH samples grouped by (statement, event): one template's wait profile,
/// one row per event observed while the template was running.
#[derive(Debug, Clone, Default)]
pub struct AshAgg {
    /// Statement hash (hex) — joins to [`StmtAgg::hash`].
    pub hash: String,
    /// Statement template.
    pub template: String,
    /// Wait-event name, or `OnCpu`.
    pub event: String,
    /// Samples observed in this state.
    pub samples: u64,
}

/// The normalised workload view.
#[derive(Debug, Clone, Default)]
pub struct WorkloadView {
    /// Statement aggregates, most expensive (total actual) first.
    pub statements: Vec<StmtAgg>,
    /// Table usage.
    pub tables: Vec<TableAgg>,
    /// Attribute usage.
    pub attributes: Vec<AttrAgg>,
    /// Statistics time series (ascending time).
    pub statistics: Vec<StatPoint>,
    /// System-wide wait-event totals (empty when the wait subsystem is off).
    pub waits: Vec<WaitAgg>,
    /// Per-(statement, event) ASH sample counts — the wait profiles the
    /// wait-profile rules read.
    pub ash: Vec<AshAgg>,
}

impl WorkloadView {
    /// Build from the live monitor's ring buffers.
    pub fn from_monitor(monitor: &Monitor) -> WorkloadView {
        let stmts = monitor.statements();
        let workload = monitor.workload();
        let refs = monitor.references();

        let mut agg: HashMap<String, StmtAgg> = HashMap::with_capacity(stmts.len());
        for s in &stmts {
            agg.insert(
                s.hash.to_string(),
                StmtAgg {
                    hash: s.hash.to_string(),
                    text: s.text.clone(),
                    executions: 0,
                    actual: Cost::ZERO,
                    est: Cost::ZERO,
                    wallclock_ns: 0,
                    tables: Vec::new(),
                },
            );
        }
        for w in &workload {
            if let Some(a) = agg.get_mut(&w.hash.to_string()) {
                a.executions += 1;
                a.actual += Cost::new(w.exec_cpu as f64, w.exec_io as f64);
                a.est += w.est;
                a.wallclock_ns += w.wallclock_ns;
            }
        }
        for r in &refs {
            if r.object == ingot_core::monitor::RefObject::Table {
                if let Some(a) = agg.get_mut(&r.hash.to_string()) {
                    if !a.tables.contains(&r.table) {
                        a.tables.push(r.table);
                    }
                }
            }
        }
        let mut statements: Vec<StmtAgg> = agg.into_values().filter(|a| a.executions > 0).collect();
        statements.sort_by(|a, b| {
            b.actual
                .total()
                .partial_cmp(&a.actual.total())
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let tables = monitor
            .tables()
            .into_iter()
            .map(|t| TableAgg {
                id: t.id,
                name: t.name,
                frequency: t.frequency,
                storage: t.storage,
                data_pages: t.data_pages,
                overflow_pages: t.overflow_pages,
                rows: t.rows,
            })
            .collect();
        let table_names: HashMap<TableId, String> = monitor
            .tables()
            .into_iter()
            .map(|t| (t.id, t.name))
            .collect();
        let attributes = monitor
            .attributes()
            .into_iter()
            .map(|a| AttrAgg {
                table: a.table,
                table_name: table_names.get(&a.table).cloned().unwrap_or_default(),
                column: a.column,
                name: a.name,
                frequency: a.frequency,
                has_histogram: a.has_histogram,
            })
            .collect();
        let statistics = monitor
            .statistics()
            .into_iter()
            .map(|s| StatPoint {
                at_secs: s.at_sim_secs,
                locks_held: s.locks_held,
                lock_waiting: s.lock_waiting,
                lock_waits_total: s.lock_waits_total,
                deadlocks_total: s.deadlocks_total,
            })
            .collect();
        WorkloadView {
            statements,
            tables,
            attributes,
            statistics,
            // The monitor's rings do not carry wait data; `from_engine`
            // fills these from the wait registry and the ASH sampler.
            waits: Vec::new(),
            ash: Vec::new(),
        }
    }

    /// Build from a live engine: the monitor view plus the wait-event and
    /// ASH aggregates the monitor alone cannot provide. Engines without
    /// monitoring yield an empty view; engines without the wait subsystem
    /// yield empty wait profiles.
    pub fn from_engine(engine: &Engine) -> WorkloadView {
        let mut view = engine
            .monitor()
            .map(|m| WorkloadView::from_monitor(m))
            .unwrap_or_default();
        if let Some(registry) = engine.wait_registry() {
            view.waits = registry
                .counters()
                .snapshot()
                .iter()
                .filter(|t| t.count > 0)
                .map(|t| WaitAgg {
                    event: t.event.name().to_owned(),
                    count: t.count,
                    total_ns: t.total_ns,
                })
                .collect();
        }
        if let Some(sampler) = engine.ash_sampler() {
            view.ash = fold_ash(
                sampler
                    .history()
                    .into_iter()
                    .map(|s| (s.hash.to_string(), s.template, s.event.to_owned())),
            );
        }
        view
    }

    /// Build from the persistent workload database (standard SQL reads, as
    /// the paper intends external analyzers to do).
    pub fn from_workload_db(db: &WorkloadDb) -> Result<WorkloadView> {
        // Statements: latest frequency per hash + text.
        let mut agg: HashMap<String, StmtAgg> = HashMap::new();
        for row in db.query("select hash, query_text from wl_statements")? {
            let hash = row.get(0).as_str().unwrap_or_default().to_owned();
            let text = row.get(1).as_str().unwrap_or_default().to_owned();
            agg.entry(hash.clone()).or_insert(StmtAgg {
                hash,
                text: String::new(),
                executions: 0,
                actual: Cost::ZERO,
                est: Cost::ZERO,
                wallclock_ns: 0,
                tables: Vec::new(),
            });
            // Rows arrive in append order; the last text wins (identical
            // anyway — the hash pins the text).
            if let Some(a) = agg.get_mut(row.get(0).as_str().unwrap_or_default()) {
                a.text = text;
            }
        }
        for row in db.query(
            "select hash, exec_cpu, exec_dio, est_cpu, est_dio, wallclock_ns from wl_workload",
        )? {
            let hash = row.get(0).as_str().unwrap_or_default();
            if let Some(a) = agg.get_mut(hash) {
                a.executions += 1;
                a.actual += Cost::new(
                    row.get(1).as_f64().unwrap_or(0.0),
                    row.get(2).as_f64().unwrap_or(0.0),
                );
                a.est += Cost::new(
                    row.get(3).as_f64().unwrap_or(0.0),
                    row.get(4).as_f64().unwrap_or(0.0),
                );
                a.wallclock_ns += row.get(5).as_int().unwrap_or(0) as u64;
            }
        }
        for row in
            db.query("select hash, table_id from wl_references where object_type = 'table'")?
        {
            let hash = row.get(0).as_str().unwrap_or_default();
            let table = TableId(row.get(1).as_int().unwrap_or(0) as u32);
            if let Some(a) = agg.get_mut(hash) {
                if !a.tables.contains(&table) {
                    a.tables.push(table);
                }
            }
        }
        let mut statements: Vec<StmtAgg> = agg.into_values().filter(|a| a.executions > 0).collect();
        statements.sort_by(|a, b| {
            b.actual
                .total()
                .partial_cmp(&a.actual.total())
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Tables / attributes: latest snapshot per object.
        let mut tables: HashMap<TableId, TableAgg> = HashMap::new();
        for row in db.query(
            "select table_id, table_name, frequency, storage, data_pages, overflow_pages, \
             row_count, ts from wl_tables order by ts",
        )? {
            let id = TableId(row.get(0).as_int().unwrap_or(0) as u32);
            tables.insert(
                id,
                TableAgg {
                    id,
                    name: row.get(1).as_str().unwrap_or_default().to_owned(),
                    frequency: row.get(2).as_int().unwrap_or(0) as u64,
                    storage: row.get(3).as_str().unwrap_or_default().to_owned(),
                    data_pages: row.get(4).as_int().unwrap_or(0) as u64,
                    overflow_pages: row.get(5).as_int().unwrap_or(0) as u64,
                    rows: row.get(6).as_int().unwrap_or(0) as u64,
                },
            );
        }
        let table_names: HashMap<TableId, String> =
            tables.values().map(|t| (t.id, t.name.clone())).collect();
        let mut attributes: HashMap<(TableId, usize), AttrAgg> = HashMap::new();
        for row in db.query(
            "select table_id, attr_id, attr_name, frequency, has_histogram, ts \
             from wl_attributes order by ts",
        )? {
            let table = TableId(row.get(0).as_int().unwrap_or(0) as u32);
            let column = row.get(1).as_int().unwrap_or(0) as usize;
            attributes.insert(
                (table, column),
                AttrAgg {
                    table,
                    table_name: table_names.get(&table).cloned().unwrap_or_default(),
                    column,
                    name: row.get(2).as_str().unwrap_or_default().to_owned(),
                    frequency: row.get(3).as_int().unwrap_or(0) as u64,
                    has_histogram: row.get(4).as_bool().unwrap_or(false),
                },
            );
        }
        let statistics = db
            .query(
                "select at_secs, locks_held, lock_waiting, lock_waits_total, deadlocks_total \
                 from wl_statistics order by at_ns",
            )?
            .into_iter()
            .map(|row| StatPoint {
                at_secs: row.get(0).as_int().unwrap_or(0) as u64,
                locks_held: row.get(1).as_int().unwrap_or(0) as u64,
                lock_waiting: row.get(2).as_int().unwrap_or(0) as u64,
                lock_waits_total: row.get(3).as_int().unwrap_or(0) as u64,
                deadlocks_total: row.get(4).as_int().unwrap_or(0) as u64,
            })
            .collect();

        // Wait totals: the rows are cumulative snapshots, so per event the
        // newest row carries the whole story.
        let mut waits: HashMap<String, WaitAgg> = HashMap::new();
        for row in db.query("select event, count, total_ns from wl_waits order by ts")? {
            let event = row.get(0).as_str().unwrap_or_default().to_owned();
            waits.insert(
                event.clone(),
                WaitAgg {
                    event,
                    count: row.get(1).as_int().unwrap_or(0) as u64,
                    total_ns: row.get(2).as_int().unwrap_or(0) as u64,
                },
            );
        }
        let mut waits: Vec<WaitAgg> = waits.into_values().filter(|w| w.count > 0).collect();
        waits.sort_by(|a, b| a.event.cmp(&b.event));

        let ash = fold_ash(
            db.query("select hash, statement, event from wl_ash")?
                .into_iter()
                .map(|row| {
                    (
                        row.get(0).as_str().unwrap_or_default().to_owned(),
                        row.get(1).as_str().unwrap_or_default().to_owned(),
                        row.get(2).as_str().unwrap_or_default().to_owned(),
                    )
                }),
        );

        let mut tables: Vec<TableAgg> = tables.into_values().collect();
        tables.sort_by_key(|t| t.id);
        let mut attributes: Vec<AttrAgg> = attributes.into_values().collect();
        attributes.sort_by_key(|a| (a.table, a.column));
        Ok(WorkloadView {
            statements,
            tables,
            attributes,
            statistics,
            waits,
            ash,
        })
    }
}

/// Group `(hash, template, event)` sample triples into [`AshAgg`] rows,
/// sorted busiest profile first.
fn fold_ash(samples: impl Iterator<Item = (String, String, String)>) -> Vec<AshAgg> {
    let mut agg: HashMap<(String, String), AshAgg> = HashMap::new();
    for (hash, template, event) in samples {
        let entry = agg
            .entry((hash.clone(), event.clone()))
            .or_insert_with(|| AshAgg {
                hash,
                template,
                event,
                samples: 0,
            });
        entry.samples += 1;
    }
    let mut out: Vec<AshAgg> = agg.into_values().collect();
    out.sort_by(|a, b| {
        b.samples
            .cmp(&a.samples)
            .then_with(|| a.hash.cmp(&b.hash).then_with(|| a.event.cmp(&b.event)))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::EngineConfig;
    use ingot_core::Engine;

    fn engine_with_workload() -> std::sync::Arc<Engine> {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int, b int)").unwrap();
        for i in 0..100 {
            s.execute(&format!("insert into t values ({i}, {})", i % 5))
                .unwrap();
        }
        s.execute("select * from t where b = 3").unwrap();
        s.execute("select * from t where b = 3").unwrap();
        engine
    }

    #[test]
    fn monitor_view_aggregates_executions() {
        let engine = engine_with_workload();
        let view = WorkloadView::from_monitor(engine.monitor().unwrap());
        let sel = view
            .statements
            .iter()
            .find(|s| s.is_query())
            .expect("select present");
        assert_eq!(sel.executions, 2);
        assert!(sel.actual.total() > 0.0);
        assert_eq!(sel.tables.len(), 1);
        assert_eq!(view.tables.len(), 1);
        assert!(view.attributes.len() >= 2);
    }

    #[test]
    fn wldb_view_matches_monitor_view() {
        let engine = engine_with_workload();
        let db = ingot_daemon::WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap();
        db.append_from(engine.monitor().unwrap(), 10).unwrap();
        let mv = WorkloadView::from_monitor(engine.monitor().unwrap());
        let dv = WorkloadView::from_workload_db(&db).unwrap();
        assert_eq!(mv.statements.len(), dv.statements.len());
        let m_sel = mv.statements.iter().find(|s| s.is_query()).unwrap();
        let d_sel = dv.statements.iter().find(|s| s.is_query()).unwrap();
        assert_eq!(m_sel.executions, d_sel.executions);
        assert_eq!(m_sel.tables, d_sel.tables);
        assert_eq!(mv.tables.len(), dv.tables.len());
        assert_eq!(mv.tables[0].rows, dv.tables[0].rows);
    }
}
