#![forbid(unsafe_code)]
//! The analyzer (§IV-C of the paper).
//!
//! Scans the collected monitoring data and recommends changes to the
//! physical database design. The result "is a mixture of plain reports and
//! rules-based recommendations":
//!
//! * *"Actual and estimated costs of a statement differ significantly"* →
//!   collect statistics (missing or outdated histograms mislead the
//!   optimizer);
//! * *"One or more attributes of a table have no statistics"* → create
//!   histograms;
//! * *"A table with a fixed amount of main data pages has already more than
//!   10 % overflow pages"* → restructure / `MODIFY … TO BTREE`;
//! * an **index advisor** that "feeds the Ingres optimizer with a number of
//!   hypothetical, or virtual indexes, exploiting its decision about which
//!   indexes will actually be used to find an optimal index set for the
//!   workload" — requirement ii): all cost-based decisions go through the
//!   engine's own cost model.

pub mod advisor;
pub mod report;
pub mod rules;
pub mod trend;
pub mod view;

pub use advisor::{AdvisorConfig, IndexCandidate};
pub use report::{AnalysisReport, CostDiagram, CostDiagramEntry, LocksDiagram};
pub use rules::Recommendation;
pub use trend::{predict_statistics_metric, predict_table_growth, Prediction, Trend};
pub use view::{AshAgg, AttrAgg, StatPoint, StmtAgg, TableAgg, WaitAgg, WorkloadView};

use std::sync::Arc;

use ingot_common::Result;
use ingot_core::{Engine, Session};

/// Analyzer thresholds.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Relative estimated-vs-actual error above which statistics are
    /// recommended.
    pub cost_error_threshold: f64,
    /// Ignore statements whose total actual cost is below this (noise).
    pub min_actual_total: f64,
    /// Overflow-page ratio above which `MODIFY TO BTREE` is recommended
    /// (paper: "more than 10 % overflow pages").
    pub overflow_threshold: f64,
    /// Fraction of a wait profile one event must exceed before the
    /// wait-profile rules treat it as dominant.
    pub wait_dominance_threshold: f64,
    /// Minimum ASH samples a statement needs before its profile is judged
    /// (fewer samples are noise).
    pub wait_min_samples: u64,
    /// Minimum total waited nanoseconds before the system-wide WalFsync
    /// rule considers the interval at all.
    pub wait_min_total_ns: u64,
    /// Fraction of executions that must be writes for the interval to count
    /// as write-heavy.
    pub write_heavy_fraction: f64,
    /// Index-advisor settings.
    pub advisor: AdvisorConfig,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            cost_error_threshold: 0.5,
            min_actual_total: 100.0,
            overflow_threshold: 0.1,
            wait_dominance_threshold: 0.5,
            wait_min_samples: 10,
            wait_min_total_ns: 1_000_000,
            write_heavy_fraction: 0.5,
            advisor: AdvisorConfig::default(),
        }
    }
}

/// The analyzer.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    /// Thresholds.
    pub config: AnalyzerConfig,
}

impl Analyzer {
    /// An analyzer with custom thresholds.
    pub fn new(config: AnalyzerConfig) -> Self {
        Analyzer { config }
    }

    /// Analyze a workload view against `engine` (whose optimizer performs
    /// all what-if costing) and produce recommendations plus the report
    /// diagrams of Figs 6 and 8.
    pub fn analyze(&self, engine: &Arc<Engine>, view: &WorkloadView) -> Result<AnalysisReport> {
        let mut recommendations = Vec::new();

        // Rule 1 + 2: statistics rules.
        recommendations.extend(rules::statistics_rules(&self.config, view));
        // Rule 3: overflow pages.
        recommendations.extend(rules::overflow_rule(&self.config, view));
        // Rules 4 + 5: wait profiles (BufferRead-dominated statements,
        // WalFsync-dominated write-heavy intervals).
        let wait_recs = rules::wait_profile_rules(&self.config, view);
        for rec in wait_recs {
            // Rule 3 may already restructure the same table; keep one.
            let duplicate = matches!(&rec, Recommendation::RestructureForReads { table, .. }
                if recommendations.iter().any(|r| matches!(r,
                    Recommendation::ModifyToBTree { table: t, .. } if t == table)));
            if !duplicate {
                recommendations.push(rec);
            }
        }
        // The what-if advisor needs trustworthy cardinalities: *temporarily*
        // freshen statistics on every referenced table that lacks them while
        // candidates are evaluated (the paper's analyzer likewise "tests
        // possible new indexes on the DBMS" during its 40 s analysis). The
        // original state is restored afterwards — analysis itself must not
        // change the system; the statistics recommendation above is how the
        // change actually lands.
        let stats_backup: Vec<_> = {
            let now = engine.sim_clock().now_secs();
            let mut catalog = engine.catalog().write();
            let mut backup = Vec::new();
            for t in &view.tables {
                let needs = catalog
                    .table(t.id)
                    .map(|e| e.stats.is_none())
                    .unwrap_or(false);
                if needs {
                    backup.push(t.id);
                    catalog.collect_statistics(t.id, &[], now)?;
                }
            }
            backup
        };
        // Index advisor (what-if through the engine's optimizer).
        let advisor_out = advisor::recommend_indexes(&self.config.advisor, engine, view)?;
        recommendations.extend(advisor_out.recommendations.clone());
        // Restore the pre-analysis statistics state so the Fig 6 diagram's
        // estimate bars share one basis with the recorded estimates.
        {
            let mut catalog = engine.catalog().write();
            for id in stats_backup {
                if let Ok(entry) = catalog.table_mut(id) {
                    entry.stats = None;
                }
            }
        }

        // Fig 6: cost diagram of the most expensive statements, with the
        // advisor's chosen virtual indexes registered for the third bar.
        let cost_diagram =
            report::build_cost_diagram(engine, view, &advisor_out.chosen_candidates, 10)?;
        // Fig 8: locks diagram from the statistics samples.
        let locks_diagram = report::build_locks_diagram(view);

        Ok(AnalysisReport {
            recommendations,
            cost_diagram,
            locks_diagram,
        })
    }

    /// Apply a set of recommendations through a SQL session, in a safe
    /// order: statistics first, then storage-structure changes, then
    /// indexes. Returns the executed statements.
    pub fn apply(&self, session: &Session, recs: &[Recommendation]) -> Result<Vec<String>> {
        let mut sorted: Vec<&Recommendation> = recs.iter().collect();
        sorted.sort_by_key(|r| match r {
            Recommendation::CollectStatistics { .. } => 0,
            Recommendation::ModifyToBTree { .. } => 1,
            Recommendation::RestructureForReads { .. } => 1,
            Recommendation::CreateIndex { .. } => 2,
            Recommendation::TuneWalFsync { .. } => 3,
        });
        let mut executed = Vec::new();
        for rec in sorted {
            let sql = rec.to_sql();
            session.execute(&sql)?;
            executed.push(sql);
        }
        Ok(executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::EngineConfig;

    /// End-to-end: run a skewed workload, analyze, check that all three rule
    /// families fire, apply, and verify the workload gets cheaper.
    #[test]
    fn full_analysis_loop() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table protein (nref_id int not null primary key, name text, len int)")
            .unwrap();
        for i in 0..3000 {
            s.execute(&format!(
                "insert into protein values ({i}, 'p{i}', {})",
                i % 40
            ))
            .unwrap();
        }
        // A repeated selective query the advisor should index.
        for i in 0..25 {
            s.execute(&format!(
                "select name from protein where nref_id = {}",
                i * 7
            ))
            .unwrap();
        }
        let view = WorkloadView::from_monitor(engine.monitor().unwrap());
        let analyzer = Analyzer::default();
        let report = analyzer.analyze(&engine, &view).unwrap();

        let has_stats_rec = report
            .recommendations
            .iter()
            .any(|r| matches!(r, Recommendation::CollectStatistics { .. }));
        let has_btree_rec = report
            .recommendations
            .iter()
            .any(|r| matches!(r, Recommendation::ModifyToBTree { .. }));
        let has_index_rec = report
            .recommendations
            .iter()
            .any(|r| matches!(r, Recommendation::CreateIndex { .. }));
        assert!(has_stats_rec, "recs: {:?}", report.recommendations);
        assert!(has_btree_rec, "recs: {:?}", report.recommendations);
        assert!(has_index_rec, "recs: {:?}", report.recommendations);

        // Applying must succeed and speed up the repeated point query.
        let before = s
            .execute("select name from protein where nref_id = 7")
            .unwrap();
        analyzer.apply(&s, &report.recommendations).unwrap();
        let after = s
            .execute("select name from protein where nref_id = 7")
            .unwrap();
        assert!(
            after.actual_cost.cpu < before.actual_cost.cpu / 10.0,
            "keyed access should process far fewer tuples: {} vs {}",
            after.actual_cost.cpu,
            before.actual_cost.cpu
        );
    }
}
