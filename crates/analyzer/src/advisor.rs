//! The index advisor.
//!
//! Implements the paper's what-if loop: candidate indexes derived from the
//! recorded attribute references are registered as *virtual* indexes, and the
//! engine's own optimizer decides whether a plan would use them — "this fact
//! allows us to feed the Ingres optimizer with a number of hypothetical, or
//! virtual indexes, exploiting its decision about which indexes will
//! actually be used to find an optimal index set for the workload". Greedy
//! selection keeps the candidate with the largest frequency-weighted
//! estimated saving until no candidate clears the benefit threshold.

use std::collections::HashMap;
use std::sync::Arc;

use ingot_common::{Result, TableId};
use ingot_core::Engine;

use crate::rules::Recommendation;
use crate::view::WorkloadView;

/// Advisor settings.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Maximum indexes to recommend.
    pub max_indexes: usize,
    /// Minimum frequency-weighted benefit (total cost units) a candidate
    /// must deliver to be recommended.
    pub min_benefit: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            max_indexes: 16,
            min_benefit: 500.0,
        }
    }
}

/// A candidate (or chosen) index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexCandidate {
    /// Target table.
    pub table: TableId,
    /// Target table name.
    pub table_name: String,
    /// Column names (advisor currently proposes single-column indexes, like
    /// the paper's prototype).
    pub column_names: Vec<String>,
}

/// Advisor result: recommendations plus the raw chosen candidates (the
/// report layer re-registers them to draw Fig 6's third bar).
#[derive(Debug, Clone, Default)]
pub struct AdvisorOutput {
    /// `CreateIndex` recommendations.
    pub recommendations: Vec<Recommendation>,
    /// The chosen candidates.
    pub chosen_candidates: Vec<IndexCandidate>,
}

/// Run the advisor over the recorded workload.
pub fn recommend_indexes(
    config: &AdvisorConfig,
    engine: &Arc<Engine>,
    view: &WorkloadView,
) -> Result<AdvisorOutput> {
    engine.clear_virtual_indexes();

    // Queries with their execution weights.
    let queries: Vec<(&str, u64)> = view
        .statements
        .iter()
        .filter(|s| s.is_query())
        .map(|s| (s.text.as_str(), s.executions))
        .collect();
    if queries.is_empty() {
        return Ok(AdvisorOutput::default());
    }

    // Candidate generation from referenced attributes.
    let mut candidates = generate_candidates(engine, view);

    // Baseline cost of each query with only the real indexes.
    let mut current_cost: HashMap<&str, f64> = HashMap::with_capacity(queries.len());
    for (text, _) in &queries {
        if let Ok(est) = engine.estimate(text, false) {
            current_cost.insert(text, est.est.total());
        }
    }

    let mut chosen: Vec<IndexCandidate> = Vec::new();
    let mut recommendations = Vec::new();

    while chosen.len() < config.max_indexes && !candidates.is_empty() {
        let mut best: Option<(usize, f64, usize)> = None; // (cand idx, benefit, helped)
        for (ci, cand) in candidates.iter().enumerate() {
            // Register chosen set + this candidate.
            engine.clear_virtual_indexes();
            for c in &chosen {
                register(engine, c)?;
            }
            let cand_id = register(engine, cand)?;
            let mut benefit = 0.0;
            let mut helped = 0usize;
            for (text, weight) in &queries {
                let Some(&base) = current_cost.get(text) else {
                    continue;
                };
                let Ok(est) = engine.estimate(text, true) else {
                    continue;
                };
                // Only count queries whose chosen plan actually uses the
                // candidate — the optimizer's decision, not ours.
                if est.used_indexes.contains(&cand_id) {
                    let saving = (base - est.est.total()).max(0.0);
                    if saving > 0.0 {
                        benefit += saving * *weight as f64;
                        helped += 1;
                    }
                }
            }
            if best.is_none_or(|(_, b, _)| benefit > b) {
                best = Some((ci, benefit, helped));
            }
        }
        let Some((ci, benefit, helped)) = best else {
            break;
        };
        if benefit < config.min_benefit {
            break;
        }
        let cand = candidates.remove(ci);
        recommendations.push(Recommendation::CreateIndex {
            table: cand.table_name.clone(),
            columns: cand.column_names.clone(),
            benefit,
            statements_helped: helped,
        });
        chosen.push(cand);
        // Re-baseline costs with the chosen set registered, so the next
        // round measures *marginal* benefit.
        engine.clear_virtual_indexes();
        for c in &chosen {
            register(engine, c)?;
        }
        for (text, _) in &queries {
            if let Ok(est) = engine.estimate(text, true) {
                current_cost.insert(text, est.est.total());
            }
        }
    }

    engine.clear_virtual_indexes();
    Ok(AdvisorOutput {
        recommendations,
        chosen_candidates: chosen,
    })
}

/// Register a candidate as a virtual index.
pub fn register(engine: &Arc<Engine>, cand: &IndexCandidate) -> Result<ingot_common::IndexId> {
    let cols: Vec<&str> = cand.column_names.iter().map(String::as_str).collect();
    engine.add_virtual_index(&cand.table_name, &cols)
}

fn generate_candidates(engine: &Arc<Engine>, view: &WorkloadView) -> Vec<IndexCandidate> {
    let catalog = engine.catalog().read();
    let mut out = Vec::new();
    for attr in &view.attributes {
        let Ok(entry) = catalog.table(attr.table) else {
            continue;
        };
        // Skip the clustered key of a BTree table — keyed access exists.
        if entry.meta.storage == ingot_catalog::StorageStructure::BTree
            && entry.meta.primary_key == [attr.column]
        {
            continue;
        }
        // Skip columns already leading an existing real index.
        let covered = catalog
            .indexes_of(attr.table)
            .iter()
            .any(|idx| !idx.meta.is_virtual && idx.meta.columns.first() == Some(&attr.column));
        if covered {
            continue;
        }
        let cand = IndexCandidate {
            table: attr.table,
            table_name: entry.meta.name.clone(),
            column_names: vec![attr.name.clone()],
        };
        if !out.contains(&cand) {
            out.push(cand);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::WorkloadView;
    use ingot_common::EngineConfig;

    #[test]
    fn advisor_recommends_selective_index_and_skips_useless_one() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table protein (nref_id int not null, name text, grp int)")
            .unwrap();
        for i in 0..4000 {
            s.execute(&format!(
                "insert into protein values ({i}, 'p{i}', {})",
                i % 2
            ))
            .unwrap();
        }
        s.execute("create statistics on protein").unwrap();
        // Selective predicate on nref_id (4000 distinct) — index-worthy.
        for i in 0..10 {
            s.execute(&format!("select name from protein where nref_id = {i}"))
                .unwrap();
        }
        // Unselective predicate on grp (2 distinct) — not index-worthy.
        s.execute("select name from protein where grp = 1").unwrap();

        let view = WorkloadView::from_monitor(engine.monitor().unwrap());
        let out = recommend_indexes(&AdvisorConfig::default(), &engine, &view).unwrap();
        assert_eq!(out.chosen_candidates.len(), 1, "{:?}", out.recommendations);
        assert_eq!(out.chosen_candidates[0].column_names, vec!["nref_id"]);
        let Recommendation::CreateIndex {
            statements_helped,
            benefit,
            ..
        } = &out.recommendations[0]
        else {
            panic!()
        };
        assert_eq!(*statements_helped, 10);
        assert!(*benefit > 0.0);
        // No virtual debris left behind.
        assert_eq!(
            engine
                .catalog()
                .read()
                .indexes()
                .filter(|i| i.meta.is_virtual)
                .count(),
            0
        );
    }

    #[test]
    fn advisor_skips_already_indexed_columns() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int not null, b int)").unwrap();
        for i in 0..3000 {
            s.execute(&format!("insert into t values ({i}, {i})"))
                .unwrap();
        }
        s.execute("create statistics on t").unwrap();
        s.execute("create index t_a on t (a)").unwrap();
        for i in 0..5 {
            s.execute(&format!("select b from t where a = {i}"))
                .unwrap();
        }
        let view = WorkloadView::from_monitor(engine.monitor().unwrap());
        let out = recommend_indexes(&AdvisorConfig::default(), &engine, &view).unwrap();
        assert!(
            out.chosen_candidates
                .iter()
                .all(|c| c.column_names != vec!["a"]),
            "existing index must not be re-recommended: {:?}",
            out.recommendations
        );
    }

    #[test]
    fn empty_workload_yields_nothing() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let view = WorkloadView::default();
        let out = recommend_indexes(&AdvisorConfig::default(), &engine, &view).unwrap();
        assert!(out.recommendations.is_empty());
    }
}
