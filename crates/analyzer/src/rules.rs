//! The rule engine: local, pre-defined rules mapped to recommendations
//! (level two of the paper's three analysis levels).

use std::collections::HashMap;

use ingot_common::{Cost, TableId};

use crate::view::WorkloadView;
use crate::AnalyzerConfig;

/// A recommended change to the physical database design.
#[derive(Debug, Clone, PartialEq)]
pub enum Recommendation {
    /// Collect statistics (histograms) on a table or specific columns.
    CollectStatistics {
        /// Target table.
        table: String,
        /// Specific columns; empty = whole table.
        columns: Vec<String>,
        /// Why the rule fired.
        reason: String,
    },
    /// Convert a heap table with excessive overflow pages to B-Tree.
    ModifyToBTree {
        /// Target table.
        table: String,
        /// Observed overflow ratio.
        overflow_ratio: f64,
    },
    /// Create a secondary index.
    CreateIndex {
        /// Target table.
        table: String,
        /// Indexed columns.
        columns: Vec<String>,
        /// Estimated workload benefit (optimizer cost units saved).
        benefit: f64,
        /// How many distinct statements the optimizer would route through
        /// the index ("an index that was recommended for many statements is
        /// more useful").
        statements_helped: usize,
    },
    /// Restructure a heap table to B-Tree because a statement's ASH wait
    /// profile is dominated by physical buffer reads (keyed access would
    /// touch far fewer pages than the scan does).
    RestructureForReads {
        /// Target table.
        table: String,
        /// The statement template whose profile fired the rule.
        template: String,
        /// Fraction of the template's ASH samples spent in `BufferRead`.
        buffer_read_pct: f64,
    },
    /// Amortise WAL fsyncs (group commit / wider dally window) because
    /// `WalFsync` dominates the wait profile of a write-heavy interval.
    TuneWalFsync {
        /// Fraction of all waited nanoseconds charged to `WalFsync`.
        wal_fsync_pct: f64,
        /// Fraction of recorded executions that were writes.
        write_fraction: f64,
    },
}

impl Recommendation {
    /// The SQL statement that implements this recommendation.
    pub fn to_sql(&self) -> String {
        match self {
            Recommendation::CollectStatistics { table, columns, .. } => {
                if columns.is_empty() {
                    format!("create statistics on {table}")
                } else {
                    format!("create statistics on {table} ({})", columns.join(", "))
                }
            }
            Recommendation::ModifyToBTree { table, .. } => format!("modify {table} to btree"),
            Recommendation::CreateIndex { table, columns, .. } => format!(
                "create index idx_{table}_{} on {table} ({})",
                columns.join("_"),
                columns.join(", ")
            ),
            Recommendation::RestructureForReads { table, .. } => {
                format!("modify {table} to btree")
            }
            Recommendation::TuneWalFsync { .. } => "set wal_fsync_mode = group".to_owned(),
        }
    }

    /// One-line human-readable description, in the paper's report style.
    pub fn describe(&self) -> String {
        match self {
            Recommendation::CollectStatistics {
                table,
                columns,
                reason,
            } => {
                if columns.is_empty() {
                    format!("Collect statistics on '{table}': {reason}")
                } else {
                    format!(
                        "Create histograms on '{table}' ({}): {reason}",
                        columns.join(", ")
                    )
                }
            }
            Recommendation::ModifyToBTree {
                table,
                overflow_ratio,
            } => format!(
                "Table '{table}' has {:.0} % overflow pages: modify to storage structure B-Tree",
                overflow_ratio * 100.0
            ),
            Recommendation::CreateIndex {
                table,
                columns,
                benefit,
                statements_helped,
            } => format!(
                "Create index on '{table}' ({}) — helps {statements_helped} statement(s), \
                 estimated saving {benefit:.0} cost units",
                columns.join(", ")
            ),
            Recommendation::RestructureForReads {
                table,
                template,
                buffer_read_pct,
            } => format!(
                "Statement '{template}' spends {:.0} % of its sampled time in BufferRead \
                 waits: modify '{table}' to B-Tree (or index it) so access is keyed",
                buffer_read_pct * 100.0
            ),
            Recommendation::TuneWalFsync {
                wal_fsync_pct,
                write_fraction,
            } => format!(
                "WalFsync is {:.0} % of all waited time in a write-heavy interval \
                 ({:.0} % writes): enable group commit or widen the dally window",
                wal_fsync_pct * 100.0,
                write_fraction * 100.0
            ),
        }
    }
}

/// Rules 1 & 2: cost-discrepancy and missing-histogram detection.
pub fn statistics_rules(config: &AnalyzerConfig, view: &WorkloadView) -> Vec<Recommendation> {
    let mut out = Vec::new();
    let names: HashMap<TableId, &str> = view
        .tables
        .iter()
        .map(|t| (t.id, t.name.as_str()))
        .collect();

    // Rule 1: per table, count statements whose estimate diverges.
    let mut diverging: HashMap<TableId, usize> = HashMap::new();
    for s in &view.statements {
        if s.actual.total() < config.min_actual_total {
            continue;
        }
        let per_exec_actual = Cost::new(
            s.actual.cpu / s.executions.max(1) as f64,
            s.actual.io / s.executions.max(1) as f64,
        );
        let per_exec_est = Cost::new(
            s.est.cpu / s.executions.max(1) as f64,
            s.est.io / s.executions.max(1) as f64,
        );
        if Cost::relative_error(&per_exec_est, &per_exec_actual) > config.cost_error_threshold {
            for t in &s.tables {
                *diverging.entry(*t).or_default() += 1;
            }
        }
    }
    for (table, count) in diverging {
        let Some(name) = names.get(&table) else {
            continue;
        };
        out.push(Recommendation::CollectStatistics {
            table: (*name).to_owned(),
            columns: Vec::new(),
            reason: format!(
                "actual and estimated costs differ significantly for {count} statement(s); \
                 statistics may be missing or outdated"
            ),
        });
    }

    // Rule 2: referenced attributes without histograms, grouped per table.
    let mut missing: HashMap<TableId, Vec<String>> = HashMap::new();
    for a in &view.attributes {
        if !a.has_histogram {
            missing.entry(a.table).or_default().push(a.name.clone());
        }
    }
    for (table, columns) in missing {
        // Skip if rule 1 already recommends whole-table statistics.
        let Some(name) = names.get(&table) else {
            continue;
        };
        if out.iter().any(|r| {
            matches!(r, Recommendation::CollectStatistics { table: t, columns, .. }
                if t == name && columns.is_empty())
        }) {
            continue;
        }
        out.push(Recommendation::CollectStatistics {
            table: (*name).to_owned(),
            columns,
            reason: "referenced attributes have no statistics; histograms should be created"
                .to_owned(),
        });
    }
    out
}

/// Rules 4 & 5: wait-profile rules over the ASH aggregates and the
/// system-wide wait totals.
///
/// * Rule 4 — a statement whose ASH profile is dominated by `BufferRead`
///   is losing its time to physical page reads; its heap tables should be
///   restructured to B-Tree (keyed access instead of scans).
/// * Rule 5 — when `WalFsync` dominates the system's wait profile and the
///   workload is write-heavy, commits should share fsyncs (group commit /
///   wider dally window).
pub fn wait_profile_rules(config: &AnalyzerConfig, view: &WorkloadView) -> Vec<Recommendation> {
    let mut out = Vec::new();

    // Rule 4: per-template BufferRead dominance.
    let names: HashMap<TableId, &str> = view
        .tables
        .iter()
        .map(|t| (t.id, t.name.as_str()))
        .collect();
    let mut profile: HashMap<&str, (u64, u64, &str)> = HashMap::new();
    for a in &view.ash {
        let entry = profile
            .entry(a.hash.as_str())
            .or_insert((0, 0, a.template.as_str()));
        entry.0 += a.samples;
        if a.event == "BufferRead" {
            entry.1 += a.samples;
        }
    }
    let mut restructured: Vec<String> = Vec::new();
    for (hash, (total, buffer_read, template)) in profile {
        if total < config.wait_min_samples {
            continue;
        }
        let pct = buffer_read as f64 / total as f64;
        if pct < config.wait_dominance_threshold {
            continue;
        }
        // The dominated statement's heap tables are the restructure targets.
        let Some(stmt) = view.statements.iter().find(|s| s.hash == hash) else {
            continue;
        };
        for id in &stmt.tables {
            let Some(name) = names.get(id) else { continue };
            let is_heap = view
                .tables
                .iter()
                .any(|t| t.id == *id && t.storage == "HEAP");
            if !is_heap || restructured.iter().any(|t| t == name) {
                continue;
            }
            restructured.push((*name).to_owned());
            out.push(Recommendation::RestructureForReads {
                table: (*name).to_owned(),
                template: template.to_owned(),
                buffer_read_pct: pct,
            });
        }
    }

    // Rule 5: system-wide WalFsync dominance on a write-heavy workload.
    let total_wait_ns: u64 = view.waits.iter().map(|w| w.total_ns).sum();
    let wal_ns: u64 = view
        .waits
        .iter()
        .filter(|w| w.event == "WalFsync")
        .map(|w| w.total_ns)
        .sum();
    let executions: u64 = view.statements.iter().map(|s| s.executions).sum();
    let writes: u64 = view
        .statements
        .iter()
        .filter(|s| !s.is_query())
        .map(|s| s.executions)
        .sum();
    if total_wait_ns >= config.wait_min_total_ns && executions > 0 {
        let wal_pct = wal_ns as f64 / total_wait_ns as f64;
        let write_fraction = writes as f64 / executions as f64;
        if wal_pct >= config.wait_dominance_threshold
            && write_fraction >= config.write_heavy_fraction
        {
            out.push(Recommendation::TuneWalFsync {
                wal_fsync_pct: wal_pct,
                write_fraction,
            });
        }
    }
    out
}

/// Rule 3: heap tables with more than the threshold of overflow pages.
pub fn overflow_rule(config: &AnalyzerConfig, view: &WorkloadView) -> Vec<Recommendation> {
    view.tables
        .iter()
        .filter(|t| t.storage == "HEAP" && t.overflow_ratio() > config.overflow_threshold)
        .map(|t| Recommendation::ModifyToBTree {
            table: t.name.clone(),
            overflow_ratio: t.overflow_ratio(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{AshAgg, AttrAgg, StmtAgg, TableAgg, WaitAgg};

    fn table(id: u32, name: &str, storage: &str, data: u64, overflow: u64) -> TableAgg {
        TableAgg {
            id: TableId(id),
            name: name.into(),
            frequency: 1,
            storage: storage.into(),
            data_pages: data,
            overflow_pages: overflow,
            rows: 100,
        }
    }

    #[test]
    fn overflow_rule_thresholds() {
        let cfg = AnalyzerConfig::default();
        let view = WorkloadView {
            tables: vec![
                table(1, "hot", "HEAP", 10, 5),    // 50 % → fires
                table(2, "cold", "HEAP", 10, 0),   // 0 % → no
                table(3, "tree", "BTREE", 10, 90), // already BTREE → no
            ],
            ..Default::default()
        };
        let recs = overflow_rule(&cfg, &view);
        assert_eq!(recs.len(), 1);
        assert!(matches!(&recs[0], Recommendation::ModifyToBTree { table, .. } if table == "hot"));
        assert_eq!(recs[0].to_sql(), "modify hot to btree");
    }

    #[test]
    fn cost_discrepancy_fires_and_respects_noise_floor() {
        let cfg = AnalyzerConfig::default();
        let stmt = |est: f64, actual: f64| StmtAgg {
            hash: "h".into(),
            text: "select …".into(),
            executions: 1,
            actual: Cost::cpu(actual),
            est: Cost::cpu(est),
            wallclock_ns: 0,
            tables: vec![TableId(1)],
        };
        let view = WorkloadView {
            statements: vec![stmt(10.0, 10_000.0)],
            tables: vec![table(1, "protein", "HEAP", 10, 0)],
            ..Default::default()
        };
        let recs = statistics_rules(&cfg, &view);
        assert!(recs.iter().any(
            |r| matches!(r, Recommendation::CollectStatistics { table, .. } if table == "protein")
        ));
        // Below the noise floor: no firing.
        let quiet = WorkloadView {
            statements: vec![stmt(1.0, 50.0)],
            tables: vec![table(1, "protein", "HEAP", 10, 0)],
            ..Default::default()
        };
        assert!(statistics_rules(&cfg, &quiet).is_empty());
    }

    fn ash(hash: &str, template: &str, event: &str, samples: u64) -> AshAgg {
        AshAgg {
            hash: hash.into(),
            template: template.into(),
            event: event.into(),
            samples,
        }
    }

    #[test]
    fn buffer_read_dominance_restructures_heap_tables() {
        let cfg = AnalyzerConfig::default();
        let view = WorkloadView {
            statements: vec![StmtAgg {
                hash: "h1".into(),
                text: "select * from protein where len = 3".into(),
                executions: 20,
                actual: Cost::cpu(1_000.0),
                est: Cost::cpu(1_000.0),
                wallclock_ns: 0,
                tables: vec![TableId(1)],
            }],
            tables: vec![table(1, "protein", "HEAP", 10, 0)],
            ash: vec![
                ash(
                    "h1",
                    "select * from protein where len = ?",
                    "BufferRead",
                    30,
                ),
                ash("h1", "select * from protein where len = ?", "OnCpu", 10),
            ],
            ..Default::default()
        };
        let recs = wait_profile_rules(&cfg, &view);
        assert_eq!(recs.len(), 1, "recs: {recs:?}");
        let Recommendation::RestructureForReads {
            table,
            buffer_read_pct,
            ..
        } = &recs[0]
        else {
            panic!("expected RestructureForReads, got {recs:?}");
        };
        assert_eq!(table, "protein");
        assert!((buffer_read_pct - 0.75).abs() < 1e-9);
        assert_eq!(recs[0].to_sql(), "modify protein to btree");
        assert!(recs[0].describe().contains("75 %"));

        // Below the dominance threshold or the sample floor: silent.
        let mut quiet = view.clone();
        quiet.ash = vec![ash("h1", "q", "BufferRead", 4), ash("h1", "q", "OnCpu", 36)];
        assert!(wait_profile_rules(&cfg, &quiet).is_empty());
        quiet.ash = vec![ash("h1", "q", "BufferRead", 5)];
        assert!(
            wait_profile_rules(&cfg, &quiet).is_empty(),
            "too few samples"
        );
    }

    #[test]
    fn wal_fsync_dominance_needs_write_heavy_interval() {
        let cfg = AnalyzerConfig::default();
        let writes = StmtAgg {
            hash: "w".into(),
            text: "insert into t values (1)".into(),
            executions: 100,
            actual: Cost::cpu(100.0),
            est: Cost::cpu(100.0),
            wallclock_ns: 0,
            tables: vec![TableId(1)],
        };
        let view = WorkloadView {
            statements: vec![writes.clone()],
            waits: vec![
                WaitAgg {
                    event: "WalFsync".into(),
                    count: 100,
                    total_ns: 9_000_000,
                },
                WaitAgg {
                    event: "LockWaitX".into(),
                    count: 3,
                    total_ns: 1_000_000,
                },
            ],
            ..Default::default()
        };
        let recs = wait_profile_rules(&cfg, &view);
        assert_eq!(recs.len(), 1, "recs: {recs:?}");
        let Recommendation::TuneWalFsync {
            wal_fsync_pct,
            write_fraction,
        } = &recs[0]
        else {
            panic!("expected TuneWalFsync, got {recs:?}");
        };
        assert!((wal_fsync_pct - 0.9).abs() < 1e-9);
        assert!((write_fraction - 1.0).abs() < 1e-9);
        assert_eq!(recs[0].to_sql(), "set wal_fsync_mode = group");

        // Read-heavy interval: the same wait profile stays silent.
        let mut reads = view.clone();
        reads.statements = vec![StmtAgg {
            text: "select * from t".into(),
            ..writes
        }];
        assert!(wait_profile_rules(&cfg, &reads).is_empty());
        // Tiny absolute wait time: below the noise floor.
        let mut tiny = view.clone();
        for w in &mut tiny.waits {
            w.total_ns /= 100;
        }
        assert!(wait_profile_rules(&cfg, &tiny).is_empty());
    }

    #[test]
    fn missing_histogram_rule_groups_columns() {
        let cfg = AnalyzerConfig::default();
        let view = WorkloadView {
            tables: vec![table(1, "protein", "HEAP", 10, 0)],
            attributes: vec![
                AttrAgg {
                    table: TableId(1),
                    table_name: "protein".into(),
                    column: 0,
                    name: "nref_id".into(),
                    frequency: 5,
                    has_histogram: false,
                },
                AttrAgg {
                    table: TableId(1),
                    table_name: "protein".into(),
                    column: 2,
                    name: "len".into(),
                    frequency: 2,
                    has_histogram: true,
                },
            ],
            ..Default::default()
        };
        let recs = statistics_rules(&cfg, &view);
        assert_eq!(recs.len(), 1);
        let Recommendation::CollectStatistics { columns, .. } = &recs[0] else {
            panic!()
        };
        assert_eq!(columns, &vec!["nref_id".to_owned()]);
        assert_eq!(recs[0].to_sql(), "create statistics on protein (nref_id)");
    }
}
