//! The rule engine: local, pre-defined rules mapped to recommendations
//! (level two of the paper's three analysis levels).

use std::collections::HashMap;

use ingot_common::{Cost, TableId};

use crate::view::WorkloadView;
use crate::AnalyzerConfig;

/// A recommended change to the physical database design.
#[derive(Debug, Clone, PartialEq)]
pub enum Recommendation {
    /// Collect statistics (histograms) on a table or specific columns.
    CollectStatistics {
        /// Target table.
        table: String,
        /// Specific columns; empty = whole table.
        columns: Vec<String>,
        /// Why the rule fired.
        reason: String,
    },
    /// Convert a heap table with excessive overflow pages to B-Tree.
    ModifyToBTree {
        /// Target table.
        table: String,
        /// Observed overflow ratio.
        overflow_ratio: f64,
    },
    /// Create a secondary index.
    CreateIndex {
        /// Target table.
        table: String,
        /// Indexed columns.
        columns: Vec<String>,
        /// Estimated workload benefit (optimizer cost units saved).
        benefit: f64,
        /// How many distinct statements the optimizer would route through
        /// the index ("an index that was recommended for many statements is
        /// more useful").
        statements_helped: usize,
    },
}

impl Recommendation {
    /// The SQL statement that implements this recommendation.
    pub fn to_sql(&self) -> String {
        match self {
            Recommendation::CollectStatistics { table, columns, .. } => {
                if columns.is_empty() {
                    format!("create statistics on {table}")
                } else {
                    format!("create statistics on {table} ({})", columns.join(", "))
                }
            }
            Recommendation::ModifyToBTree { table, .. } => format!("modify {table} to btree"),
            Recommendation::CreateIndex { table, columns, .. } => format!(
                "create index idx_{table}_{} on {table} ({})",
                columns.join("_"),
                columns.join(", ")
            ),
        }
    }

    /// One-line human-readable description, in the paper's report style.
    pub fn describe(&self) -> String {
        match self {
            Recommendation::CollectStatistics {
                table,
                columns,
                reason,
            } => {
                if columns.is_empty() {
                    format!("Collect statistics on '{table}': {reason}")
                } else {
                    format!(
                        "Create histograms on '{table}' ({}): {reason}",
                        columns.join(", ")
                    )
                }
            }
            Recommendation::ModifyToBTree {
                table,
                overflow_ratio,
            } => format!(
                "Table '{table}' has {:.0} % overflow pages: modify to storage structure B-Tree",
                overflow_ratio * 100.0
            ),
            Recommendation::CreateIndex {
                table,
                columns,
                benefit,
                statements_helped,
            } => format!(
                "Create index on '{table}' ({}) — helps {statements_helped} statement(s), \
                 estimated saving {benefit:.0} cost units",
                columns.join(", ")
            ),
        }
    }
}

/// Rules 1 & 2: cost-discrepancy and missing-histogram detection.
pub fn statistics_rules(config: &AnalyzerConfig, view: &WorkloadView) -> Vec<Recommendation> {
    let mut out = Vec::new();
    let names: HashMap<TableId, &str> = view
        .tables
        .iter()
        .map(|t| (t.id, t.name.as_str()))
        .collect();

    // Rule 1: per table, count statements whose estimate diverges.
    let mut diverging: HashMap<TableId, usize> = HashMap::new();
    for s in &view.statements {
        if s.actual.total() < config.min_actual_total {
            continue;
        }
        let per_exec_actual = Cost::new(
            s.actual.cpu / s.executions.max(1) as f64,
            s.actual.io / s.executions.max(1) as f64,
        );
        let per_exec_est = Cost::new(
            s.est.cpu / s.executions.max(1) as f64,
            s.est.io / s.executions.max(1) as f64,
        );
        if Cost::relative_error(&per_exec_est, &per_exec_actual) > config.cost_error_threshold {
            for t in &s.tables {
                *diverging.entry(*t).or_default() += 1;
            }
        }
    }
    for (table, count) in diverging {
        let Some(name) = names.get(&table) else {
            continue;
        };
        out.push(Recommendation::CollectStatistics {
            table: (*name).to_owned(),
            columns: Vec::new(),
            reason: format!(
                "actual and estimated costs differ significantly for {count} statement(s); \
                 statistics may be missing or outdated"
            ),
        });
    }

    // Rule 2: referenced attributes without histograms, grouped per table.
    let mut missing: HashMap<TableId, Vec<String>> = HashMap::new();
    for a in &view.attributes {
        if !a.has_histogram {
            missing.entry(a.table).or_default().push(a.name.clone());
        }
    }
    for (table, columns) in missing {
        // Skip if rule 1 already recommends whole-table statistics.
        let Some(name) = names.get(&table) else {
            continue;
        };
        if out.iter().any(|r| {
            matches!(r, Recommendation::CollectStatistics { table: t, columns, .. }
                if t == name && columns.is_empty())
        }) {
            continue;
        }
        out.push(Recommendation::CollectStatistics {
            table: (*name).to_owned(),
            columns,
            reason: "referenced attributes have no statistics; histograms should be created"
                .to_owned(),
        });
    }
    out
}

/// Rule 3: heap tables with more than the threshold of overflow pages.
pub fn overflow_rule(config: &AnalyzerConfig, view: &WorkloadView) -> Vec<Recommendation> {
    view.tables
        .iter()
        .filter(|t| t.storage == "HEAP" && t.overflow_ratio() > config.overflow_threshold)
        .map(|t| Recommendation::ModifyToBTree {
            table: t.name.clone(),
            overflow_ratio: t.overflow_ratio(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{AttrAgg, StmtAgg, TableAgg};

    fn table(id: u32, name: &str, storage: &str, data: u64, overflow: u64) -> TableAgg {
        TableAgg {
            id: TableId(id),
            name: name.into(),
            frequency: 1,
            storage: storage.into(),
            data_pages: data,
            overflow_pages: overflow,
            rows: 100,
        }
    }

    #[test]
    fn overflow_rule_thresholds() {
        let cfg = AnalyzerConfig::default();
        let view = WorkloadView {
            tables: vec![
                table(1, "hot", "HEAP", 10, 5),    // 50 % → fires
                table(2, "cold", "HEAP", 10, 0),   // 0 % → no
                table(3, "tree", "BTREE", 10, 90), // already BTREE → no
            ],
            ..Default::default()
        };
        let recs = overflow_rule(&cfg, &view);
        assert_eq!(recs.len(), 1);
        assert!(matches!(&recs[0], Recommendation::ModifyToBTree { table, .. } if table == "hot"));
        assert_eq!(recs[0].to_sql(), "modify hot to btree");
    }

    #[test]
    fn cost_discrepancy_fires_and_respects_noise_floor() {
        let cfg = AnalyzerConfig::default();
        let stmt = |est: f64, actual: f64| StmtAgg {
            hash: "h".into(),
            text: "select …".into(),
            executions: 1,
            actual: Cost::cpu(actual),
            est: Cost::cpu(est),
            wallclock_ns: 0,
            tables: vec![TableId(1)],
        };
        let view = WorkloadView {
            statements: vec![stmt(10.0, 10_000.0)],
            tables: vec![table(1, "protein", "HEAP", 10, 0)],
            ..Default::default()
        };
        let recs = statistics_rules(&cfg, &view);
        assert!(recs.iter().any(
            |r| matches!(r, Recommendation::CollectStatistics { table, .. } if table == "protein")
        ));
        // Below the noise floor: no firing.
        let quiet = WorkloadView {
            statements: vec![stmt(1.0, 50.0)],
            tables: vec![table(1, "protein", "HEAP", 10, 0)],
            ..Default::default()
        };
        assert!(statistics_rules(&cfg, &quiet).is_empty());
    }

    #[test]
    fn missing_histogram_rule_groups_columns() {
        let cfg = AnalyzerConfig::default();
        let view = WorkloadView {
            tables: vec![table(1, "protein", "HEAP", 10, 0)],
            attributes: vec![
                AttrAgg {
                    table: TableId(1),
                    table_name: "protein".into(),
                    column: 0,
                    name: "nref_id".into(),
                    frequency: 5,
                    has_histogram: false,
                },
                AttrAgg {
                    table: TableId(1),
                    table_name: "protein".into(),
                    column: 2,
                    name: "len".into(),
                    frequency: 2,
                    has_histogram: true,
                },
            ],
            ..Default::default()
        };
        let recs = statistics_rules(&cfg, &view);
        assert_eq!(recs.len(), 1);
        let Recommendation::CollectStatistics { columns, .. } = &recs[0] else {
            panic!()
        };
        assert_eq!(columns, &vec!["nref_id".to_owned()]);
        assert_eq!(recs[0].to_sql(), "create statistics on protein (nref_id)");
    }
}
