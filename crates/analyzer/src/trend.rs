//! Trend analysis — the paper's third analysis level: "interpret its
//! meaning, to identify trends and patterns and to start predicting
//! potential problems in advance" (§IV-C).
//!
//! A least-squares linear fit over a time series (simulated seconds on the
//! x-axis) yields a slope, a fit quality, and — given a threshold — the
//! predicted crossing time. The daemon's long-term workload DB supplies the
//! series (e.g. `wl_statistics.locks_held`, table row counts from
//! `wl_tables`, or the workload DB's own growth).

use ingot_common::Result;
use ingot_daemon::WorkloadDb;

/// A least-squares linear fit `value ≈ slope · t + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trend {
    /// Change per simulated second.
    pub slope: f64,
    /// Value at t = 0.
    pub intercept: f64,
    /// Coefficient of determination (R²) in [0, 1]; low values mean the
    /// linear model explains little and predictions are unreliable.
    pub r_squared: f64,
    /// Number of points fitted.
    pub points: usize,
}

impl Trend {
    /// Fit a series of `(t_secs, value)` points. Returns `None` with fewer
    /// than two distinct x positions.
    pub fn fit(series: &[(u64, f64)]) -> Option<Trend> {
        let n = series.len();
        if n < 2 {
            return None;
        }
        let xs: Vec<f64> = series.iter().map(|(t, _)| *t as f64).collect();
        let ys: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
        let mean_x = xs.iter().sum::<f64>() / n as f64;
        let mean_y = ys.iter().sum::<f64>() / n as f64;
        let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
        if sxx == 0.0 {
            return None; // vertical: all samples at one instant
        }
        let sxy: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
            .sum();
        let r_squared = if ss_tot == 0.0 {
            1.0 // constant series: perfectly explained
        } else {
            (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
        };
        Some(Trend {
            slope,
            intercept,
            r_squared,
            points: n,
        })
    }

    /// Predicted value at simulated second `t`.
    pub fn predict(&self, t_secs: u64) -> f64 {
        self.slope * t_secs as f64 + self.intercept
    }

    /// Predicted simulated second at which the fitted line reaches
    /// `threshold`, or `None` when the trend never reaches it (flat or
    /// moving away).
    pub fn crossing_time(&self, threshold: f64) -> Option<u64> {
        if self.slope.abs() < 1e-12 {
            return None;
        }
        let t = (threshold - self.intercept) / self.slope;
        if t.is_finite() && t >= 0.0 {
            Some(t as u64)
        } else {
            None
        }
    }
}

/// A predicted problem: a monitored metric is heading for its limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The metric name.
    pub metric: String,
    /// The fitted trend.
    pub trend: Trend,
    /// The configured limit.
    pub threshold: f64,
    /// Predicted crossing time (simulated seconds), when the trend heads
    /// towards the threshold.
    pub crosses_at_secs: Option<u64>,
}

impl Prediction {
    /// One-line rendering in the report style.
    pub fn describe(&self, now_secs: u64) -> String {
        match self.crosses_at_secs {
            Some(t) if t > now_secs => format!(
                "'{}' grows by {:.3}/s (R²={:.2}); predicted to reach {} in {} h",
                self.metric,
                self.trend.slope,
                self.trend.r_squared,
                self.threshold,
                (t - now_secs) / 3600
            ),
            Some(_) => format!(
                "'{}' has already reached its limit {} (trend R²={:.2})",
                self.metric, self.threshold, self.trend.r_squared
            ),
            None => format!(
                "'{}' shows no trend towards {} (slope {:.4}/s)",
                self.metric, self.threshold, self.trend.slope
            ),
        }
    }
}

/// Fit a metric column of `wl_statistics` over time and predict when it
/// reaches `threshold`. `metric` must be a column of the statistics table
/// (`locks_held`, `lock_waits_total`, `sessions`, `physical_reads`, …).
pub fn predict_statistics_metric(
    db: &WorkloadDb,
    metric: &str,
    threshold: f64,
) -> Result<Option<Prediction>> {
    // The metric name is interpolated into SQL: restrict it to identifier
    // characters so a caller cannot smuggle syntax in.
    if !metric
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Err(ingot_common::Error::monitor(format!(
            "invalid metric name '{metric}'"
        )));
    }
    let rows = db.query(&format!(
        "select at_secs, {metric} from wl_statistics order by at_secs"
    ))?;
    let series: Vec<(u64, f64)> = rows
        .iter()
        .filter_map(|r| Some((r.get(0).as_int()? as u64, r.get(1).as_f64()?)))
        .collect();
    Ok(Trend::fit(&series).map(|trend| Prediction {
        metric: metric.to_owned(),
        crosses_at_secs: trend.crossing_time(threshold),
        trend,
        threshold,
    }))
}

/// Fit the row count of a table recorded in `wl_tables` (capacity planning:
/// "when will this table hit N rows?").
pub fn predict_table_growth(
    db: &WorkloadDb,
    table_name: &str,
    threshold_rows: f64,
) -> Result<Option<Prediction>> {
    let escaped = table_name.replace('\'', "''");
    let rows = db.query(&format!(
        "select ts, row_count from wl_tables where table_name = '{escaped}' order by ts"
    ))?;
    let series: Vec<(u64, f64)> = rows
        .iter()
        .filter_map(|r| Some((r.get(0).as_int()? as u64, r.get(1).as_f64()?)))
        .collect();
    Ok(Trend::fit(&series).map(|trend| Prediction {
        metric: format!("row_count({table_name})"),
        crosses_at_secs: trend.crossing_time(threshold_rows),
        trend,
        threshold: threshold_rows,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_fit() {
        let series: Vec<(u64, f64)> = (0..10)
            .map(|t| (t * 60, 5.0 + 2.0 * (t * 60) as f64))
            .collect();
        let t = Trend::fit(&series).unwrap();
        assert!((t.slope - 2.0).abs() < 1e-9);
        assert!((t.intercept - 5.0).abs() < 1e-6);
        assert!((t.r_squared - 1.0).abs() < 1e-9);
        assert_eq!(t.crossing_time(5.0 + 2.0 * 1200.0), Some(1200));
        assert!((t.predict(600) - 1205.0).abs() < 1e-6);
    }

    #[test]
    fn flat_series_never_crosses() {
        let series: Vec<(u64, f64)> = (0..5).map(|t| (t * 10, 7.0)).collect();
        let t = Trend::fit(&series).unwrap();
        assert_eq!(t.slope, 0.0);
        assert_eq!(t.r_squared, 1.0);
        assert_eq!(t.crossing_time(100.0), None);
    }

    #[test]
    fn noisy_series_has_lower_r2() {
        let series = vec![(0, 0.0), (10, 25.0), (20, 10.0), (30, 45.0), (40, 30.0)];
        let t = Trend::fit(&series).unwrap();
        assert!(t.slope > 0.0);
        assert!(
            t.r_squared < 0.95,
            "noise must lower R², got {}",
            t.r_squared
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Trend::fit(&[]).is_none());
        assert!(Trend::fit(&[(5, 1.0)]).is_none());
        assert!(Trend::fit(&[(5, 1.0), (5, 2.0)]).is_none());
    }

    #[test]
    fn downward_trend_crossing() {
        let series: Vec<(u64, f64)> = (0..5).map(|t| (t, 100.0 - 10.0 * t as f64)).collect();
        let t = Trend::fit(&series).unwrap();
        assert_eq!(t.crossing_time(50.0), Some(5));
        // Upward threshold is behind us (t would be negative).
        assert_eq!(t.crossing_time(200.0), None);
    }

    #[test]
    fn prediction_describe() {
        let trend = Trend {
            slope: 1.0,
            intercept: 0.0,
            r_squared: 0.9,
            points: 10,
        };
        let p = Prediction {
            metric: "locks_held".into(),
            trend,
            threshold: 7200.0,
            crosses_at_secs: trend.crossing_time(7200.0),
        };
        let s = p.describe(0);
        assert!(s.contains("locks_held") && s.contains("2 h"), "{s}");
    }
}
