//! Integration: trend prediction over real daemon-collected series — the
//! paper's "to a certain degree, the prediction of future problems".

use std::sync::Arc;

use ingot_analyzer::{predict_statistics_metric, predict_table_growth};
use ingot_common::EngineConfig;
use ingot_core::Engine;
use ingot_daemon::{DaemonConfig, StorageDaemon, WorkloadDb};

#[test]
fn predicts_table_growth_from_workload_db() {
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let s = engine.open_session();
    s.execute("create table events (id int)").unwrap();
    let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig::default(),
    );

    // Steady growth: 100 rows per simulated hour, sampled by the daemon.
    let mut next_id = 0;
    for _hour in 0..6 {
        for _ in 0..100 {
            s.execute(&format!("insert into events values ({next_id})"))
                .unwrap();
            next_id += 1;
        }
        // A statement touching the table refreshes the monitor's row count.
        s.execute("select count(*) from events").unwrap();
        daemon.poll_once().unwrap();
        engine.sim_clock().advance_secs(3600);
    }

    let p = predict_table_growth(&wldb, "events", 1200.0)
        .unwrap()
        .expect("enough samples");
    assert!(p.trend.slope > 0.0);
    assert!(
        p.trend.r_squared > 0.99,
        "steady growth fits a line: {:?}",
        p.trend
    );
    let crossing = p.crosses_at_secs.expect("upward trend crosses");
    // 100 rows/h from ~t0 ⇒ 1200 rows at ~12 h; allow generous slack.
    let hours = crossing / 3600;
    assert!((10..=14).contains(&hours), "predicted {hours} h");
}

#[test]
fn predicts_statistics_metric() {
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let s = engine.open_session();
    s.execute("create table t (a int)").unwrap();
    let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig::default(),
    );
    for i in 0..5 {
        // statements_executed grows monotonically with the workload.
        for j in 0..(10 * (i + 1)) {
            s.execute(&format!("select a from t where a = {j}"))
                .unwrap();
        }
        daemon.poll_once().unwrap();
        engine.sim_clock().advance_secs(60);
    }
    let p = predict_statistics_metric(&wldb, "statements_executed", 1e9)
        .unwrap()
        .expect("series fitted");
    assert!(p.trend.slope > 0.0);
    assert!(p.crosses_at_secs.is_some());
    // Metric names are sanitised against SQL injection.
    assert!(predict_statistics_metric(&wldb, "x; drop table t", 1.0).is_err());
}
