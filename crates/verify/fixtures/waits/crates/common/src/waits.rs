pub enum WaitEvent {
    Covered,
    Orphan,
}

pub struct WaitGuard;

impl WaitGuard {
    pub fn begin(event: WaitEvent) -> WaitGuard {
        let _ = event;
        WaitGuard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covered_is_reachable() {
        let _ = WaitGuard::begin(WaitEvent::Covered);
    }
}
