pub fn queue_wait() {
    // Allowlisted instrumented module: guards here are sanctioned.
    let _g = WaitGuard::begin(WaitEvent::Covered);
}
