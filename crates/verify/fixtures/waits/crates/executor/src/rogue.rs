pub fn sneaky_wait() {
    // A guard outside the instrumented modules: charges wait time the
    // taxonomy chapter cannot account for.
    let _g = WaitGuard::begin(WaitEvent::Covered);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_guards_are_exempt() {
        let _g = super::WaitGuard::begin(super::WaitEvent::Covered);
    }
}
