//! Golden fixture: wait-coverage (check 10).

pub fn pin_blocking(&self, key: PageKey) {
    let mut slot = self.lru.lock();
    while slot.pinned {
        slot = self.cv.wait(slot);
    }
}

pub fn pin_guarded(&self, key: PageKey) {
    let _wait = WaitGuard::begin(self.waits.get(), WaitEvent::BufferPin);
    let mut slot = self.lru.lock();
    while slot.pinned {
        slot = self.cv.wait(slot);
    }
}

fn park_raw(&self, slot: Slot) {
    self.cv.wait(slot);
}

pub fn outer(&self, slot: Slot) {
    let _wait = WaitGuard::begin(self.waits.get(), WaitEvent::BufferPin);
    self.park_raw(slot);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_block_bare() {
        cv.wait(slot);
    }
}
