use ingot_common::Result;

pub fn good(x: u32) -> Result<u32> {
    Ok(x)
}

pub fn also_good(items: Vec<String>) -> Result<Vec<String>, ingot_common::Error> {
    Ok(items)
}

pub fn bad(x: u32) -> Result<u32, String> {
    Err(format!("stringly: {x}"))
}

fn private_is_exempt(x: u32) -> Result<u32, String> {
    Err(format!("{x}"))
}

#[cfg(test)]
mod tests {
    pub fn test_helpers_are_exempt() -> Result<(), String> {
        Ok(())
    }
}
