//! Golden fixture: lock-order violations.

pub fn sneaky_ddl(catalog: &Shared, locks: &Locks) {
    let _guard = catalog.write();
    locks.lock(1);
}

pub fn execute_inner(catalog: &Shared) {
    let _guard = catalog.write();
}
