//! Golden fixture: MVCC stamp ordering (check 12).

pub fn commit_txn(&self, txn: TxnId) {
    let ticket = self.txns.start_commit(txn);
    let lsn = self.wal.append(&WalRecord::Commit { txn, commit_ts });
    self.wal.commit_barrier(lsn);
    catalog.apply_version_commit(txn, commit_ts);
    ticket.publish();
}

pub fn unreserved_stamp(&self, txn: TxnId) {
    let lsn = self.wal.append(&WalRecord::Commit { txn, commit_ts });
    self.wal.commit_barrier(lsn);
    catalog.apply_version_commit(txn, commit_ts);
}

pub fn late_stamp(&self, txn: TxnId) {
    let ticket = self.txns.start_commit(txn);
    let lsn = self.wal.append(&WalRecord::Commit { txn, commit_ts });
    self.wal.commit_barrier(lsn);
    ticket.publish();
    catalog.apply_version_commit(txn, commit_ts);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_stamp_late() {
        ticket.publish();
        catalog.apply_version_commit(txn, commit_ts);
    }
}
