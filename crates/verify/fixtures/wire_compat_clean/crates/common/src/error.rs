//! Fixture: consistent Error enum / wire table pair (must verify clean).

pub enum Error {
    Parse(String),
    Io(String),
}
