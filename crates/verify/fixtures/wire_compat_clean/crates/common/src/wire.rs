//! Fixture: a wire table in sync with its Error enum and ledger.

pub const PROTOCOL_VERSION: u16 = 1;

pub struct WireCodeEntry {
    pub variant: &'static str,
    pub code: u16,
    pub retryable: bool,
}

pub const WIRE_CODE_TABLE: &[WireCodeEntry] = &[
    WireCodeEntry { variant: "Parse", code: 1, retryable: false },
    WireCodeEntry { variant: "Io", code: 2, retryable: false },
];
