//! Golden fixture: one ima$ table with docs and a test, one orphan.

pub fn register_all(reg: &mut Registry) {
    reg.register("ima$orphan");
    reg.register("ima$covered");
}

#[cfg(test)]
mod tests {
    #[test]
    fn covered_has_a_test() {
        let _ = "ima$covered";
    }
}
