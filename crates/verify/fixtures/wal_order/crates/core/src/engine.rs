//! Golden fixture: WAL-before-stamp ordering (check 9).

pub fn commit_txn(&self, txn: TxnId) {
    let ticket = self.txns.start_commit(txn);
    let lsn = self.wal.append(&WalRecord::Commit { txn, commit_ts });
    self.wal.commit_barrier(lsn);
    catalog.apply_version_commit(txn, commit_ts);
}

pub fn hasty_stamp(&self, txn: TxnId) {
    let ticket = self.txns.start_commit(txn);
    let lsn = self.wal.append(&WalRecord::Commit { txn, commit_ts });
    catalog.apply_version_commit(txn, commit_ts);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_stamp_eagerly() {
        catalog.apply_version_commit(txn, commit_ts);
    }
}
