//! Golden fixture: commit-acknowledgement discipline.

pub fn commit_txn(&self, txn: TxnId) {
    self.txns.validate_write_set(txn, None)?;
    if read_only {
        self.txns.commit_read_only(txn);
        return Ok(());
    }
    self.txns.commit(txn);
    let lsn = self.wal.append(&WalRecord::Commit { txn, commit_ts });
    self.wal.commit_barrier(lsn);
    self.txns.commit(txn);
}

pub fn sneaky_ack(&self, txn: TxnId) {
    self.txns.commit(txn);
}

pub fn sneaky_read_only_ack(&self, txn: TxnId) {
    self.txns.commit_read_only(txn);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_ack() {
        engine.txns.commit(txn);
    }
}
