//! Golden fixture: commit-acknowledgement discipline.

pub fn commit_txn(&self, txn: TxnId) {
    self.txns.commit(txn);
    let lsn = self.wal.append(&WalRecord::Commit { txn });
    self.wal.commit_barrier(lsn);
    self.txns.commit(txn);
}

pub fn sneaky_ack(&self, txn: TxnId) {
    self.txns.commit(txn);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_ack() {
        engine.txns.commit(txn);
    }
}
