//! Golden fixture: MVCC locking discipline.

pub fn execute_inner(&self, name: &str) {
    self.with_table_lock_by_name(name, LockMode::Exclusive, |eng| eng.drop(name));
}

pub fn eager_update(&self, txn: TxnId, id: TableId) {
    self.locks.lock(txn, Resource::Table(id), LockMode::Exclusive);
}

pub fn fenced_update(&self, txn: TxnId, id: TableId, root: u64) {
    self.locks.lock(txn, Resource::Table(id), LockMode::Shared);
    self.locks.lock(txn, Resource::Row(id, root), LockMode::Exclusive);
}

pub fn commit_txn(&self, txn: TxnId) {
    let lsn = self.wal.append(&WalRecord::Commit { txn, commit_ts });
    self.wal.commit_barrier(lsn);
    self.txns.commit(txn);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_exclude_tables() {
        locks.lock(txn, Resource::Table(id), LockMode::Exclusive);
    }
}
