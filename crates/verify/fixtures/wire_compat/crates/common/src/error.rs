//! Fixture: Error enum for the wire-compat check.

pub enum Error {
    Parse(String),
    Deadlock { victim: u64 },
    Io(String),
    Protocol(String),
}
