//! Fixture: wire table with a duplicate code, a ghost entry, and a
//! version the ledger does not know about.

pub const PROTOCOL_VERSION: u16 = 2;

pub struct WireCodeEntry {
    pub variant: &'static str,
    pub code: u16,
    pub retryable: bool,
}

pub const WIRE_CODE_TABLE: &[WireCodeEntry] = &[
    WireCodeEntry { variant: "Parse", code: 1, retryable: false },
    WireCodeEntry { variant: "Deadlock", code: 2, retryable: true },
    WireCodeEntry { variant: "Io", code: 2, retryable: false },
    WireCodeEntry { variant: "Vanished", code: 4, retryable: false },
];
