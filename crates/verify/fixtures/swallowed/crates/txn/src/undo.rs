//! Golden fixture: swallowed Results (check 11).

pub fn apply(&self, log: &UndoLog) {
    let _ = log.flush();
    log.advance().ok();
}

pub fn apply_counted(&self, log: &UndoLog) {
    if log.flush().is_err() {
        self.note_undo_failure();
    }
    let advanced = log.advance().ok();
    drop(advanced);
}

pub fn wait_helper(&self, cv: &Condvar, slot: Slot) {
    let _ = cv.wait_timeout(slot, dur);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_discard() {
        let _ = log.flush();
    }
}
