//! Golden fixture: panic-freedom violations.

pub fn head(v: &[u8]) -> u8 {
    v[0]
}

pub fn must(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn must_msg(v: Option<u8>) -> u8 {
    v.expect("present")
}

#[cfg(test)]
mod tests {
    pub fn fine(v: Option<u8>) -> u8 {
        v.unwrap()
    }
}
