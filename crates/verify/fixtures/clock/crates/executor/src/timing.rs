//! Golden fixture: raw clock call outside trace/daemon/bench.

pub fn now_ms() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis()
}
