//! Golden tests: each fixture tree under `fixtures/` produces exactly the
//! expected diagnostics, the CLI exits non-zero on every fixture, the flow
//! engine reports a superset of the lexical fallback's findings, and the
//! real workspace passes clean (modulo the checked-in allowlist).

use ingot_verify::Mode;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// (check, category, file, line, func) for every violation, in report order.
fn summarize(report: &ingot_verify::Report) -> Vec<(String, String, String, usize, String)> {
    report
        .violations
        .iter()
        .map(|v| {
            (
                v.check.to_string(),
                v.category.clone(),
                v.file.clone(),
                v.line,
                v.func.clone(),
            )
        })
        .collect()
}

fn run_mode(name: &str, mode: Mode) -> ingot_verify::Report {
    ingot_verify::run(&fixture(name), None, mode).expect("fixture scan")
}

/// Default engine (flow-sensitive CFG + dataflow).
fn run(name: &str) -> ingot_verify::Report {
    run_mode(name, Mode::Flow)
}

fn s(x: &str) -> String {
    x.to_string()
}

#[test]
fn lock_order_fixture_diagnostics() {
    let r = run("lock_order");
    assert_eq!(
        summarize(&r),
        vec![
            (
                s("lock-order"),
                s("ddl-write"),
                s("crates/core/src/engine.rs"),
                4,
                s("sneaky_ddl"),
            ),
            (
                s("lock-order"),
                s("lock-under-guard"),
                s("crates/core/src/engine.rs"),
                5,
                s("sneaky_ddl"),
            ),
        ],
        "allowlisted `execute_inner` must not be flagged; `sneaky_ddl` must be"
    );
}

#[test]
fn panic_fixture_diagnostics() {
    let r = run("panic");
    assert_eq!(
        summarize(&r),
        vec![
            (
                s("panic"),
                s("index"),
                s("crates/storage/src/hot.rs"),
                4,
                s("head"),
            ),
            (
                s("panic"),
                s("unwrap"),
                s("crates/storage/src/hot.rs"),
                8,
                s("must"),
            ),
            (
                s("panic"),
                s("expect"),
                s("crates/storage/src/hot.rs"),
                12,
                s("must_msg"),
            ),
        ],
        "the #[cfg(test)] unwrap must not be flagged"
    );
    // Stable ratchet keys.
    let keys: Vec<String> = r.violations.iter().map(|v| v.key()).collect();
    assert_eq!(
        keys,
        vec![
            "index\tcrates/storage/src/hot.rs\thead\t1",
            "unwrap\tcrates/storage/src/hot.rs\tmust\t1",
            "expect\tcrates/storage/src/hot.rs\tmust_msg\t1",
        ]
    );
}

#[test]
fn clock_fixture_diagnostics() {
    let r = run("clock");
    assert_eq!(
        summarize(&r),
        vec![(
            s("clock"),
            s("raw-clock"),
            s("crates/executor/src/timing.rs"),
            4,
            s("now_ms"),
        )]
    );
}

#[test]
fn ima_fixture_diagnostics() {
    let r = run("ima");
    assert_eq!(
        summarize(&r),
        vec![
            (
                s("ima"),
                s("undocumented"),
                s("crates/core/src/ima.rs"),
                0,
                s("<registry>"),
            ),
            (
                s("ima"),
                s("untested"),
                s("crates/core/src/ima.rs"),
                0,
                s("<registry>"),
            ),
        ],
        "ima$covered is documented and tested; only ima$orphan may be flagged"
    );
    for v in &r.violations {
        assert!(v.message.contains("ima$orphan"), "{}", v.message);
    }
}

#[test]
fn error_type_fixture_diagnostics() {
    let r = run("error_type");
    assert_eq!(
        summarize(&r),
        vec![(
            s("error-type"),
            s("stringly"),
            s("crates/core/src/engine.rs"),
            11,
            s("bad"),
        )],
        "only the pub fn returning Result<_, String> may be flagged; \
         private fns, test helpers and non-String errors are exempt"
    );
}

#[test]
fn wal_ack_fixture_diagnostics() {
    let r = run("wal_ack");
    assert_eq!(
        summarize(&r),
        vec![
            (
                s("wal-ack"),
                s("ack-before-barrier"),
                s("crates/core/src/engine.rs"),
                9,
                s("commit_txn"),
            ),
            (
                s("wal-ack"),
                s("ack-outside-commit-path"),
                s("crates/core/src/engine.rs"),
                16,
                s("sneaky_ack"),
            ),
            (
                s("wal-ack"),
                s("ack-outside-commit-path"),
                s("crates/core/src/engine.rs"),
                20,
                s("sneaky_read_only_ack"),
            ),
        ],
        "the post-barrier ack, the read-only ack in `commit_txn` and the \
         #[cfg(test)] ack must not be flagged; the pre-barrier ack and both \
         sneaky acks must be"
    );
    // The flow engine names the unprotected CFG path in its diagnostic.
    assert!(
        r.violations[0].message.contains("unprotected path"),
        "{}",
        r.violations[0].message
    );
}

#[test]
fn mvcc_locks_fixture_diagnostics() {
    let r = run("mvcc_locks");
    assert_eq!(
        summarize(&r),
        vec![
            (
                s("mvcc-locks"),
                s("table-x-outside-ddl"),
                s("crates/core/src/engine.rs"),
                8,
                s("eager_update"),
            ),
            (
                s("mvcc-locks"),
                s("commit-without-validation"),
                s("crates/core/src/engine.rs"),
                19,
                s("commit_txn"),
            ),
        ],
        "the allowlisted DDL table-X, the shared fence + row-X shape, and \
         the #[cfg(test)] table-X must not be flagged; the DML table-X and \
         the unvalidated ack must be"
    );
}

#[test]
fn waits_fixture_diagnostics() {
    let r = run("waits");
    assert_eq!(
        summarize(&r),
        vec![
            (
                s("waits"),
                s("undocumented"),
                s("crates/common/src/waits.rs"),
                3,
                s("<taxonomy>"),
            ),
            (
                s("waits"),
                s("untested"),
                s("crates/common/src/waits.rs"),
                3,
                s("<taxonomy>"),
            ),
            (
                s("waits"),
                s("guard-outside-module"),
                s("crates/executor/src/rogue.rs"),
                4,
                s("sneaky_wait"),
            ),
        ],
        "`Covered` is documented+tested and the guard in txn/lock.rs is \
         allowlisted; only `Orphan` and the rogue guard may be flagged"
    );
    for v in &r.violations[..2] {
        assert!(v.message.contains("Orphan"), "{}", v.message);
    }
}

#[test]
fn wal_order_fixture_diagnostics() {
    let r = run("wal_order");
    assert_eq!(
        summarize(&r),
        vec![(
            s("wal-order"),
            s("stamp-before-durable"),
            s("crates/core/src/engine.rs"),
            13,
            s("hasty_stamp"),
        )],
        "the barrier-dominated stamp in `commit_txn` and the #[cfg(test)] \
         stamp must not be flagged; the stamp that skips the barrier must be"
    );
    assert!(
        r.violations[0].message.contains("unprotected path"),
        "{}",
        r.violations[0].message
    );
}

#[test]
fn wait_coverage_fixture_diagnostics() {
    let r = run("wait_coverage");
    assert_eq!(
        summarize(&r),
        vec![(
            s("wait-coverage"),
            s("unguarded-blocking"),
            s("crates/storage/src/buffer.rs"),
            6,
            s("pin_blocking"),
        )],
        "the guarded wait, the helper whose every call site holds a guard, \
         and the #[cfg(test)] wait must not be flagged; the bare wait must be"
    );
}

#[test]
fn swallowed_fixture_diagnostics() {
    let r = run("swallowed");
    assert_eq!(
        summarize(&r),
        vec![
            (
                s("swallowed-results"),
                s("let-underscore"),
                s("crates/txn/src/undo.rs"),
                4,
                s("apply"),
            ),
            (
                s("swallowed-results"),
                s("ok-discard"),
                s("crates/txn/src/undo.rs"),
                5,
                s("apply"),
            ),
        ],
        "the counted error, the bound `.ok()`, the exempt condvar-wait \
         discard and the #[cfg(test)] discard must not be flagged"
    );
}

#[test]
fn stamp_order_fixture_diagnostics() {
    let r = run("stamp_order");
    assert_eq!(
        summarize(&r),
        vec![
            (
                s("mvcc-stamp-order"),
                s("stamp-before-reserve"),
                s("crates/core/src/engine.rs"),
                14,
                s("unreserved_stamp"),
            ),
            (
                s("mvcc-stamp-order"),
                s("stamp-after-release"),
                s("crates/core/src/engine.rs"),
                22,
                s("late_stamp"),
            ),
        ],
        "the reserve → barrier → stamp → publish shape in `commit_txn` and \
         the #[cfg(test)] stamp must not be flagged; the unreserved stamp \
         and the post-publish stamp must be"
    );
}

/// The CFG engine must find everything the lexical fallback finds on the
/// fixtures for the ported checks (1, 6, 7, 8) — flow-sensitivity may only
/// *add* precision (fewer false positives on the real tree, extra checks),
/// never lose a lexical finding.
#[test]
fn flow_findings_are_a_superset_of_lexical() {
    for case in ["lock_order", "wal_ack", "mvcc_locks", "waits"] {
        let flow: std::collections::BTreeSet<_> =
            summarize(&run_mode(case, Mode::Flow)).into_iter().collect();
        let lexical = summarize(&run_mode(case, Mode::Lexical));
        assert!(
            !lexical.is_empty(),
            "fixture {case} must produce lexical findings"
        );
        for finding in lexical {
            assert!(
                flow.contains(&finding),
                "fixture {case}: lexical finding {finding:?} missing from flow report"
            );
        }
    }
}

#[test]
fn display_format_is_stable() {
    let r = run("clock");
    let line = r.violations[0].to_string();
    assert!(
        line.starts_with("crates/executor/src/timing.rs:4: [clock/raw-clock] Instant::now"),
        "diagnostic format changed: {line}"
    );
}

#[test]
fn wire_compat_fixture_diagnostics() {
    // The check is mode-independent: both engines must report the same six
    // findings — an unmapped Error variant, a PROTOCOL_VERSION the ledger
    // has no entry for, a duplicated code, a table entry naming a vanished
    // variant, a stale section hash, and non-increasing ledger versions.
    for mode in [Mode::Flow, Mode::Lexical] {
        let r = run_mode("wire_compat", mode);
        assert_eq!(
            summarize(&r),
            vec![
                (
                    s("wire-compat"),
                    s("missing-code"),
                    s("crates/common/src/error.rs"),
                    7,
                    s("<wire>"),
                ),
                (
                    s("wire-compat"),
                    s("version-mismatch"),
                    s("crates/common/src/wire.rs"),
                    4,
                    s("<wire>"),
                ),
                (
                    s("wire-compat"),
                    s("duplicate-code"),
                    s("crates/common/src/wire.rs"),
                    15,
                    s("<wire>"),
                ),
                (
                    s("wire-compat"),
                    s("unknown-variant"),
                    s("crates/common/src/wire.rs"),
                    16,
                    s("<wire>"),
                ),
                (
                    s("wire-compat"),
                    s("ledger-stale"),
                    s("crates/common/wire_layout.txt"),
                    0,
                    s("<wire>"),
                ),
                (
                    s("wire-compat"),
                    s("version-order"),
                    s("crates/common/wire_layout.txt"),
                    0,
                    s("<wire>"),
                ),
            ],
            "mode {mode:?}"
        );
    }
}

#[test]
fn wire_compat_clean_fixture_passes() {
    // A consistent enum/table/ledger triple produces no findings; the
    // satellite discipline is "touch the layout ⇒ bump version + ledger",
    // not "never touch the layout".
    let r = run("wire_compat_clean");
    assert_eq!(
        summarize(&r),
        vec![],
        "clean wire fixture must verify clean"
    );
}

#[test]
fn allowlist_grandfathers_and_ratchets() {
    // Allowlist exactly one of the panic fixture's three sites: two fresh
    // violations remain. A bogus entry is reported stale.
    let dir = std::env::temp_dir().join(format!("ingot-verify-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let allow = dir.join("allow.txt");
    std::fs::write(
        &allow,
        "# comment\nunwrap\tcrates/storage/src/hot.rs\tmust\t1\n\
         unwrap\tcrates/storage/src/hot.rs\tgone_fn\t1\n",
    )
    .unwrap();
    let r = ingot_verify::run(&fixture("panic"), Some(&allow), Mode::Flow).expect("scan");
    assert_eq!(r.allowlisted, 1);
    assert_eq!(r.violations.len(), 2);
    assert_eq!(
        r.stale,
        vec!["unwrap\tcrates/storage/src/hot.rs\tgone_fn\t1"]
    );
    assert!(!r.clean(), "stale entries must fail the run");
    std::fs::remove_dir_all(&dir).ok();
}

/// Fixtures with findings in both engines.
const SHARED_FIXTURES: &[&str] = &[
    "lock_order",
    "panic",
    "clock",
    "ima",
    "error_type",
    "wal_ack",
    "mvcc_locks",
    "waits",
    "wire_compat",
];

/// Fixtures exercising the flow-only checks (9–12): the lexical fallback
/// has no corresponding pass and must report them clean.
const FLOW_ONLY_FIXTURES: &[&str] = &["wal_order", "wait_coverage", "swallowed", "stamp_order"];

#[test]
fn cli_exits_nonzero_on_every_fixture() {
    let bin = env!("CARGO_BIN_EXE_ingot-verify");
    for case in SHARED_FIXTURES {
        for extra in [None, Some("--lexical")] {
            let mut cmd = Command::new(bin);
            if let Some(flag) = extra {
                cmd.arg(flag);
            }
            let out = cmd
                .args(["--root"])
                .arg(fixture(case))
                .output()
                .expect("spawn ingot-verify");
            assert_eq!(
                out.status.code(),
                Some(1),
                "fixture {case} must fail ({})",
                extra.unwrap_or("flow")
            );
        }
    }
    for case in FLOW_ONLY_FIXTURES {
        let out = Command::new(bin)
            .args(["--root"])
            .arg(fixture(case))
            .output()
            .expect("spawn ingot-verify");
        assert_eq!(out.status.code(), Some(1), "fixture {case} must fail");
        // The lexical fallback has no flow checks: these trees pass it.
        let out = Command::new(bin)
            .args(["--lexical", "--root"])
            .arg(fixture(case))
            .output()
            .expect("spawn ingot-verify");
        assert_eq!(
            out.status.code(),
            Some(0),
            "fixture {case} must pass the lexical fallback"
        );
    }
}

#[test]
fn github_annotation_mode_is_parseable() {
    let bin = env!("CARGO_BIN_EXE_ingot-verify");
    let out = Command::new(bin)
        .args(["--github", "--root"])
        .arg(fixture("wal_order"))
        .output()
        .expect("spawn ingot-verify");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let ann: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("::error "))
        .collect();
    assert_eq!(ann.len(), 1, "{stdout}");
    assert!(
        ann[0].starts_with("::error file=crates/core/src/engine.rs,line=13::[wal-order/"),
        "{}",
        ann[0]
    );
}

#[test]
fn real_workspace_is_clean() {
    let bin = env!("CARGO_BIN_EXE_ingot-verify");
    let out = Command::new(bin)
        .args(["--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn ingot-verify");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "the workspace must satisfy its own invariants:\n{stdout}"
    );
    assert!(stdout.contains("workspace clean"), "{stdout}");
}
