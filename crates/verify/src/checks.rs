//! The seven invariant checks.

use std::fmt;
use std::path::Path;

use crate::policy;
use crate::scan::SourceFile;

/// One diagnostic produced by a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Check id: `lock-order`, `panic`, `clock`, `ima`, `error-type`,
    /// `wal-ack`.
    pub check: &'static str,
    /// Sub-category (`unwrap` / `expect` / `index` for `panic`; a short kind
    /// for the others).
    pub category: String,
    /// Workspace-relative file (or doc) path.
    pub file: String,
    /// 1-based line, 0 when not line-addressable (missing doc mention).
    pub line: usize,
    /// Enclosing function, `<toplevel>` when none.
    pub func: String,
    /// Nth occurrence of this category in (file, func); allowlist key part.
    pub ordinal: usize,
    /// Human-readable description.
    pub message: String,
}

impl Violation {
    /// Stable allowlist key: survives line-number churn, resists silent
    /// growth (a new occurrence in the same function gets a new ordinal).
    pub fn key(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}",
            self.category, self.file, self.func, self.ordinal
        )
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file, self.line, self.check, self.category, self.message
        )
    }
}

fn func_of(file: &SourceFile, idx: usize) -> String {
    file.tokens[idx]
        .func
        .clone()
        .unwrap_or_else(|| "<toplevel>".to_owned())
}

/// Does the token window starting at `i` match `pat` exactly?
fn seq(file: &SourceFile, i: usize, pat: &[&str]) -> bool {
    file.tokens.len() >= i + pat.len()
        && pat
            .iter()
            .enumerate()
            .all(|(j, p)| file.tokens[i + j].text == *p)
}

// ---------------------------------------------------------------------------
// Check 1: lock-order discipline.
// ---------------------------------------------------------------------------

/// `catalog.write()` only in the DDL allowlist; no lock acquisition while a
/// catalog write guard is (lexically) live.
pub fn check_lock_order(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        let scanned = file
            .crate_name
            .as_deref()
            .is_some_and(|c| policy::LOCK_ORDER_CRATES.contains(&c))
            && !file.in_tests_dir;
        if !scanned {
            continue;
        }
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.in_test || t.text != "catalog" {
                continue;
            }
            let direct = seq(file, i, &["catalog", ".", "write", "(", ")"]);
            let via_accessor = seq(file, i, &["catalog", "(", ")", ".", "write", "(", ")"]);
            if !direct && !via_accessor {
                continue;
            }
            let func = func_of(file, i);
            let allowed = policy::DDL_WRITERS
                .iter()
                .any(|(f, fun)| file.rel_path.ends_with(f) && func == *fun);
            if !allowed {
                out.push(Violation {
                    check: "lock-order",
                    category: "ddl-write".into(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    func: func.clone(),
                    ordinal: 0,
                    message: format!(
                        "catalog.write() in `{func}` — the DDL guard may only be taken by \
                         the allowlisted DDL handlers (see verify policy); DML/executor \
                         paths must use catalog.read() snapshots"
                    ),
                });
            }
            // Guard bound to a local ⇒ lexically live until the end of the
            // enclosing block; any lock acquisition in that span inverts the
            // lock order.
            let mut j = i;
            let bound = loop {
                if j == 0 {
                    break false;
                }
                j -= 1;
                match file.tokens[j].text.as_str() {
                    ";" | "{" | "}" => break false,
                    "let" => break true,
                    _ => {}
                }
            };
            if bound {
                let mut k = i + if direct { 5 } else { 7 };
                let mut depth = 0i32;
                while k < file.tokens.len() && depth >= 0 {
                    let tk = &file.tokens[k];
                    match tk.text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                    let acquires = seq(file, k, &["locks", ".", "lock", "("])
                        || seq(file, k, &["locks", "(", ")", ".", "lock", "("])
                        || (tk.text == "with_table_lock_by_name" && seq(file, k + 1, &["("]));
                    if acquires {
                        out.push(Violation {
                            check: "lock-order",
                            category: "lock-under-guard".into(),
                            file: file.rel_path.clone(),
                            line: tk.line,
                            func: func.clone(),
                            ordinal: 0,
                            message: format!(
                                "lock acquisition in `{func}` after binding a catalog write \
                                 guard on line {} — table locks must be taken before the DDL \
                                 guard, never under it",
                                t.line
                            ),
                        });
                    }
                    k += 1;
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 2: panic-freedom budget.
// ---------------------------------------------------------------------------

pub(crate) fn is_hot_path(file: &SourceFile) -> bool {
    if file.in_tests_dir {
        return false;
    }
    if policy::HOT_PATH_FILES.iter().any(|f| file.rel_path == *f) {
        return true;
    }
    file.crate_name
        .as_deref()
        .is_some_and(|c| policy::HOT_PATH_CRATES.contains(&c))
}

/// `.unwrap()` / `.expect(…)` / direct indexing in hot-path modules. Every
/// occurrence must be on the checked-in allowlist; the list only shrinks.
pub fn check_panic_freedom(files: &[SourceFile]) -> Vec<Violation> {
    check_panic_freedom_filtered(files, &std::collections::HashSet::new())
}

/// Panic-freedom scan with a set of discharged sites — `(file index, token
/// index)` pairs the flow engine's guarded-index prover has shown cannot
/// panic. Skipped sites do not advance ordinal counters, so the allowlist
/// keys stay stable as long as bless and check run under the same engine.
pub fn check_panic_freedom_filtered(
    files: &[SourceFile],
    proven: &std::collections::HashSet<(usize, usize)>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        if !is_hot_path(file) {
            continue;
        }
        // (func, category) -> next ordinal
        let mut counters: std::collections::HashMap<(String, &'static str), usize> =
            std::collections::HashMap::new();
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.in_test {
                continue;
            }
            let category: &'static str = if seq(file, i, &[".", "unwrap", "(", ")"]) {
                "unwrap"
            } else if seq(file, i, &[".", "expect", "("]) {
                "expect"
            } else if t.text == "[" && i > 0 && is_index_head(&file.tokens[i - 1].text) {
                if proven.contains(&(file_idx, i)) {
                    continue;
                }
                "index"
            } else {
                continue;
            };
            let func = func_of(file, i);
            let ord = counters.entry((func.clone(), category)).or_insert(0);
            *ord += 1;
            let what = match category {
                "unwrap" => ".unwrap()",
                "expect" => ".expect(…)",
                _ => "direct indexing",
            };
            out.push(Violation {
                check: "panic",
                category: category.into(),
                file: file.rel_path.clone(),
                line: t.line,
                func: func.clone(),
                ordinal: *ord,
                message: format!(
                    "{what} in hot-path `{func}` — propagate a Result (or allowlist with a \
                     tracking comment)"
                ),
            });
        }
    }
    out
}

pub(crate) fn is_index_head(prev: &str) -> bool {
    let first = prev.chars().next().unwrap_or(' ');
    let ident = first.is_ascii_alphabetic() || first == '_';
    (ident && !policy::NON_INDEX_KEYWORDS.contains(&prev)) || prev == ")" || prev == "]"
}

// ---------------------------------------------------------------------------
// Check 3: clock hygiene.
// ---------------------------------------------------------------------------

/// `Instant::now` / `SystemTime::now` only in the sanctioned crates, so the
/// monitor's self-timing (`monitor_ns`, Fig 5) stays attributable.
pub fn check_clock_hygiene(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        if file.in_tests_dir {
            continue;
        }
        if file
            .crate_name
            .as_deref()
            .is_some_and(|c| policy::CLOCK_EXEMPT_CRATES.contains(&c))
        {
            continue;
        }
        if policy::CLOCK_EXEMPT_FILES
            .iter()
            .any(|f| file.rel_path == *f)
        {
            continue;
        }
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.in_test {
                continue;
            }
            for src in ["Instant", "SystemTime"] {
                if t.text == src && seq(file, i, &[src, ":", ":", "now"]) {
                    let func = func_of(file, i);
                    out.push(Violation {
                        check: "clock",
                        category: "raw-clock".into(),
                        file: file.rel_path.clone(),
                        line: t.line,
                        func,
                        ordinal: 0,
                        message: format!(
                            "{src}::now outside trace/daemon/bench — use \
                             ingot_common::clock::{{MonotonicClock, SimClock}} so sensor \
                             overhead lands in monitor_ns"
                        ),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 4: IMA completeness.
// ---------------------------------------------------------------------------

fn ima_names_in(s: &str, out: &mut Vec<String>) {
    let mut rest = s;
    while let Some(pos) = rest.find("ima$") {
        let tail = &rest[pos + 4..];
        let end = tail
            .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
            .unwrap_or(tail.len());
        if end > 0 {
            out.push(format!("ima${}", &tail[..end]));
        }
        rest = &tail[end..];
    }
}

/// Every `ima$…` table registered in the core IMA module must be documented
/// in README.md or DESIGN.md and referenced by at least one test.
pub fn check_ima_completeness(root: &Path, files: &[SourceFile]) -> Vec<Violation> {
    let mut registry: Vec<String> = Vec::new();
    for file in files {
        if file.rel_path.ends_with(policy::IMA_REGISTRY_FILE) {
            for (_, s) in &file.strings {
                ima_names_in(s, &mut registry);
            }
        }
    }
    registry.sort();
    registry.dedup();

    let mut docs = String::new();
    for doc in ["README.md", "DESIGN.md"] {
        docs.push_str(&std::fs::read_to_string(root.join(doc)).unwrap_or_default());
    }

    let mut tested: Vec<String> = Vec::new();
    for file in files {
        for (line, s) in &file.strings {
            if file.line_in_test(*line) {
                ima_names_in(s, &mut tested);
            }
        }
    }

    let mut out = Vec::new();
    for name in &registry {
        if !docs.contains(name.as_str()) {
            out.push(Violation {
                check: "ima",
                category: "undocumented".into(),
                file: policy::IMA_REGISTRY_FILE.into(),
                line: 0,
                func: "<registry>".into(),
                ordinal: 0,
                message: format!(
                    "{name} is registered but appears in neither README.md nor DESIGN.md"
                ),
            });
        }
        if !tested.iter().any(|t| t == name) {
            out.push(Violation {
                check: "ima",
                category: "untested".into(),
                file: policy::IMA_REGISTRY_FILE.into(),
                line: 0,
                func: "<registry>".into(),
                ordinal: 0,
                message: format!("{name} is registered but no test references it"),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 7: wait-event discipline.
// ---------------------------------------------------------------------------

/// Unit variants of `enum WaitEvent` in the taxonomy file, with their lines.
fn wait_event_variants(files: &[SourceFile]) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    for file in files {
        if file.rel_path != policy::WAIT_EVENTS_FILE {
            continue;
        }
        for i in 0..file.tokens.len() {
            if !seq(file, i, &["enum", "WaitEvent", "{"]) {
                continue;
            }
            let mut depth = 1i32;
            let mut k = i + 3;
            while k < file.tokens.len() && depth > 0 {
                match file.tokens[k].text.as_str() {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    text => {
                        // A unit variant is an UpperCamel identifier directly
                        // followed by `,` or the closing brace; attribute and
                        // doc tokens never match that shape.
                        let upper = text.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                        let delim = file
                            .tokens
                            .get(k + 1)
                            .is_some_and(|n| n.text == "," || n.text == "}");
                        if depth == 1 && upper && delim {
                            variants.push((text.to_owned(), file.tokens[k].line));
                        }
                    }
                }
                k += 1;
            }
            break;
        }
    }
    variants
}

/// The wait-event taxonomy is closed and accounted for: every `WaitEvent`
/// variant is documented in DESIGN.md and referenced from at least one test,
/// and wait guards (`WaitGuard::begin` / `WaitGuard::ambient`) are
/// constructed only in the allowlisted instrumented modules — anywhere else
/// would charge wait time the taxonomy chapter does not describe.
pub fn check_wait_events(root: &Path, files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let variants = wait_event_variants(files);
    if !variants.is_empty() {
        let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
        for (name, line) in &variants {
            if !design.contains(name.as_str()) {
                out.push(Violation {
                    check: "waits",
                    category: "undocumented".into(),
                    file: policy::WAIT_EVENTS_FILE.into(),
                    line: *line,
                    func: "<taxonomy>".into(),
                    ordinal: 0,
                    message: format!(
                        "wait event `{name}` is not documented in DESIGN.md — every \
                         taxonomy variant needs a chapter entry"
                    ),
                });
            }
            let referenced = files.iter().any(|f| {
                f.tokens
                    .iter()
                    .any(|t| (f.in_tests_dir || t.in_test) && t.text == *name)
                    || f.strings
                        .iter()
                        .any(|(l, s)| f.line_in_test(*l) && s.contains(name.as_str()))
            });
            if !referenced {
                out.push(Violation {
                    check: "waits",
                    category: "untested".into(),
                    file: policy::WAIT_EVENTS_FILE.into(),
                    line: *line,
                    func: "<taxonomy>".into(),
                    ordinal: 0,
                    message: format!(
                        "wait event `{name}` is not referenced by any test — dead taxonomy \
                         entries hide uninstrumented code paths"
                    ),
                });
            }
        }
    }

    for file in files {
        if file.in_tests_dir || policy::WAIT_GUARD_FILES.iter().any(|f| file.rel_path == *f) {
            continue;
        }
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.in_test || t.text != "WaitGuard" {
                continue;
            }
            let begin = seq(file, i, &["WaitGuard", ":", ":", "begin"]);
            let ambient = seq(file, i, &["WaitGuard", ":", ":", "ambient"]);
            if !begin && !ambient {
                continue;
            }
            let func = func_of(file, i);
            out.push(Violation {
                check: "waits",
                category: "guard-outside-module".into(),
                file: file.rel_path.clone(),
                line: t.line,
                func: func.clone(),
                ordinal: 0,
                message: format!(
                    "wait guard constructed in `{func}` — only the instrumented modules \
                     (see verify policy WAIT_GUARD_FILES) may charge wait time"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 5: error-type discipline.
// ---------------------------------------------------------------------------

/// Public functions of the embedding API must return the workspace error
/// type: a `pub fn` in [`policy::ERROR_DISCIPLINE_FILES`] whose return type
/// is `Result<_, String>` leaks stringly-typed errors across the API
/// boundary, where callers can no longer match on error kinds.
pub fn check_error_discipline(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        if !policy::ERROR_DISCIPLINE_FILES.contains(&file.rel_path.as_str()) {
            continue;
        }
        let toks = &file.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].in_test || !seq(file, i, &["pub", "fn"]) {
                i += 1;
                continue;
            }
            let func = toks
                .get(i + 2)
                .map(|t| t.text.clone())
                .unwrap_or_else(|| "<anon>".to_owned());
            // Walk the signature (up to the body `{` or a trait-decl `;`),
            // looking for `Result <` whose depth-1 comma is followed by
            // `String` — i.e. a stringly error type in return position.
            let mut j = i + 2;
            let mut after_arrow = false;
            while j < toks.len() {
                let t = toks[j].text.as_str();
                if t == "{" || t == ";" {
                    break;
                }
                if t == "-" && toks.get(j + 1).is_some_and(|n| n.text == ">") {
                    after_arrow = true;
                }
                if after_arrow && t == "Result" && toks.get(j + 1).is_some_and(|n| n.text == "<") {
                    let mut depth = 0usize;
                    let mut k = j + 1;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "<" => depth += 1,
                            ">" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "," if depth == 1
                                && toks.get(k + 1).is_some_and(|n| n.text == "String") =>
                            {
                                out.push(Violation {
                                    check: "error-type",
                                    category: "stringly".into(),
                                    file: file.rel_path.clone(),
                                    line: toks[j].line,
                                    func: func.clone(),
                                    ordinal: 0,
                                    message: format!(
                                        "`pub fn {func}` returns Result<_, String> — \
                                         return ingot_common::Result so callers can match \
                                         on error kinds"
                                    ),
                                });
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                j += 1;
            }
            i = j.max(i + 1);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 6: commit-acknowledgement discipline.
// ---------------------------------------------------------------------------

/// A commit is acknowledged by `txns.commit(…)` — the moment the transaction
/// manager counts it committed and its effects become irrevocable. That call
/// may appear only in the allowlisted engine commit path, and there only
/// lexically after the WAL durability barrier (`commit_barrier`) in the same
/// function, so no code path can report success for a commit that would not
/// survive a crash. The check is lexical, not path-sensitive: a barrier
/// anywhere earlier in the function satisfies it, which matches the engine's
/// shape (barrier guarded by "did this txn log anything", ack at the end).
pub fn check_wal_ack(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        let scanned = file
            .crate_name
            .as_deref()
            .is_some_and(|c| policy::WAL_ACK_CRATES.contains(&c))
            && !file.in_tests_dir;
        if !scanned {
            continue;
        }
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.in_test || t.text != "txns" {
                continue;
            }
            let direct = seq(file, i, &["txns", ".", "commit", "("]);
            let via_accessor = seq(file, i, &["txns", "(", ")", ".", "commit", "("]);
            // The read-only acknowledgement owes no barrier (empty write set)
            // but is still restricted to the engine commit path.
            let read_only = seq(file, i, &["txns", ".", "commit_read_only", "("])
                || seq(file, i, &["txns", "(", ")", ".", "commit_read_only", "("]);
            if !direct && !via_accessor && !read_only {
                continue;
            }
            let func = func_of(file, i);
            let allowed = policy::WAL_COMMIT_FNS
                .iter()
                .any(|(f, fun)| file.rel_path.ends_with(f) && func == *fun);
            if !allowed {
                out.push(Violation {
                    check: "wal-ack",
                    category: "ack-outside-commit-path".into(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    func: func.clone(),
                    ordinal: 0,
                    message: format!(
                        "txns.commit() in `{func}` — commits may be acknowledged only by \
                         the engine commit path (see verify policy), which makes the WAL \
                         record durable first"
                    ),
                });
                continue;
            }
            if read_only {
                continue; // empty write set: no barrier owed
            }
            let barrier_before = (0..i)
                .rev()
                .take_while(|&j| func_of(file, j) == func)
                .any(|j| file.tokens[j].text == "commit_barrier");
            if !barrier_before {
                out.push(Violation {
                    check: "wal-ack",
                    category: "ack-before-barrier".into(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    func: func.clone(),
                    ordinal: 0,
                    message: format!(
                        "txns.commit() in `{func}` precedes the WAL durability barrier — \
                         append the Commit record and wait on commit_barrier before \
                         acknowledging"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 13: wire compatibility.
// ---------------------------------------------------------------------------

/// FNV-1a (64-bit), duplicated from `ingot_common::hash` so the verifier
/// stays dependency-free. The ledger test in `wire.rs` uses the original;
/// both must agree byte-for-byte on the descriptor hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Top-level variants of `enum <name>` in `file`, with their lines. Payload
/// fields and types never match: a variant is an UpperCamel identifier at
/// brace depth 1 / paren depth 0 followed by `,`, `(`, `{` or `}`.
fn enum_variants(file: &SourceFile, enum_name: &str) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    for i in 0..file.tokens.len() {
        if !seq(file, i, &["enum", enum_name, "{"]) {
            continue;
        }
        let mut brace = 1i32;
        let mut paren = 0i32;
        let mut k = i + 3;
        while k < file.tokens.len() && brace > 0 {
            let text = file.tokens[k].text.as_str();
            match text {
                "{" => brace += 1,
                "}" => brace -= 1,
                "(" => paren += 1,
                ")" => paren -= 1,
                _ => {
                    let upper = text.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                    let delim = file
                        .tokens
                        .get(k + 1)
                        .is_some_and(|n| matches!(n.text.as_str(), "," | "(" | "{" | "}"));
                    if brace == 1 && paren == 0 && upper && delim {
                        variants.push((text.to_owned(), file.tokens[k].line));
                    }
                }
            }
            k += 1;
        }
        break;
    }
    variants
}

/// One parsed `WireCodeEntry { variant: "…", code: N, … }` row.
struct WireTableEntry {
    variant: String,
    code: u64,
    line: usize,
}

/// Parse `WIRE_CODE_TABLE` from the protocol file: inside the table's
/// `[…]`, each `variant :` pairs with the string literal starting on its
/// line and the following `code : <N>` tokens.
fn wire_table_entries(file: &SourceFile) -> Vec<WireTableEntry> {
    let mut out = Vec::new();
    let Some(start) = file.tokens.iter().position(|t| t.text == "WIRE_CODE_TABLE") else {
        return out;
    };
    // Skip the `: &[WireCodeEntry]` type annotation: the table body is the
    // first `[` after the `=`.
    let Some(eq) = (start..file.tokens.len()).find(|&i| file.tokens[i].text == "=") else {
        return out;
    };
    let Some(open) = (eq..file.tokens.len()).find(|&i| file.tokens[i].text == "[") else {
        return out;
    };
    let mut depth = 0i32;
    let mut i = open;
    while i < file.tokens.len() {
        match file.tokens[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if seq(file, i, &["variant", ":"]) {
            let line = file.tokens[i].line;
            let variant = file
                .strings
                .iter()
                .find(|(l, _)| *l >= line)
                .map(|(_, s)| s.clone());
            let code = (i..file.tokens.len())
                .find(|&j| seq(file, j, &["code", ":"]))
                .and_then(|j| file.tokens.get(j + 2))
                .and_then(|t| t.text.parse::<u64>().ok());
            if let (Some(variant), Some(code)) = (variant, code) {
                out.push(WireTableEntry {
                    variant,
                    code,
                    line,
                });
            }
        }
        i += 1;
    }
    out
}

/// The integer assigned to `const PROTOCOL_VERSION`, if declared.
fn protocol_version(file: &SourceFile) -> Option<(u64, usize)> {
    for i in 0..file.tokens.len() {
        if seq(file, i, &["PROTOCOL_VERSION", ":", "u16", "="]) {
            return file
                .tokens
                .get(i + 4)
                .and_then(|t| t.text.parse::<u64>().ok().map(|v| (v, file.tokens[i].line)));
        }
    }
    None
}

/// Wire compatibility: the `Error` enum and `WIRE_CODE_TABLE` describe the
/// same closed set (every variant mapped, no code claimed twice, no entry
/// naming a variant that no longer exists), and the wire-layout ledger is
/// current — its header versions are strictly increasing, the newest one
/// matches `PROTOCOL_VERSION`, and its recorded hash matches the frames
/// section. Together these force the discipline "change the frame layout ⇒
/// bump the version and append a ledger entry".
pub fn check_wire_compat(root: &Path, files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(error_file) = files.iter().find(|f| f.rel_path == policy::WIRE_ERROR_FILE) else {
        return out;
    };
    let Some(wire_file) = files
        .iter()
        .find(|f| f.rel_path == policy::WIRE_PROTOCOL_FILE)
    else {
        return out;
    };
    let variants = enum_variants(error_file, "Error");
    let table = wire_table_entries(wire_file);
    if variants.is_empty() || table.is_empty() {
        return out;
    }

    let mk = |category: &str, file: &str, line: usize, message: String| Violation {
        check: "wire-compat",
        category: category.into(),
        file: file.into(),
        line,
        func: "<wire>".into(),
        ordinal: 0,
        message,
    };

    for (name, line) in &variants {
        if !table.iter().any(|e| e.variant == *name) {
            out.push(mk(
                "missing-code",
                policy::WIRE_ERROR_FILE,
                *line,
                format!(
                    "Error::{name} has no WIRE_CODE_TABLE entry — every variant needs a \
                     stable wire code so it round-trips client↔server"
                ),
            ));
        }
    }
    for (idx, e) in table.iter().enumerate() {
        if !variants.iter().any(|(n, _)| *n == e.variant) {
            out.push(mk(
                "unknown-variant",
                policy::WIRE_PROTOCOL_FILE,
                e.line,
                format!(
                    "WIRE_CODE_TABLE names `{}` which is not an Error variant — codes are \
                     never reused, so retire the entry instead of renaming it",
                    e.variant
                ),
            ));
        }
        if table[..idx].iter().any(|p| p.code == e.code) {
            out.push(mk(
                "duplicate-code",
                policy::WIRE_PROTOCOL_FILE,
                e.line,
                format!(
                    "wire code {} claimed twice (second claim by `{}`) — codes identify \
                     variants uniquely on the wire",
                    e.code, e.variant
                ),
            ));
        }
    }

    let Some((version, version_line)) = protocol_version(wire_file) else {
        out.push(mk(
            "version-missing",
            policy::WIRE_PROTOCOL_FILE,
            0,
            "no `PROTOCOL_VERSION: u16 = N` constant found".into(),
        ));
        return out;
    };
    let ledger_path = root.join(policy::WIRE_LEDGER_FILE);
    let Ok(ledger) = std::fs::read_to_string(&ledger_path) else {
        out.push(mk(
            "ledger-missing",
            policy::WIRE_LEDGER_FILE,
            0,
            format!(
                "{} not found — the frame layout must be pinned by a ledger entry",
                policy::WIRE_LEDGER_FILE
            ),
        ));
        return out;
    };
    let Some((header, section)) = ledger.split_once("---\n") else {
        out.push(mk(
            "ledger-malformed",
            policy::WIRE_LEDGER_FILE,
            0,
            "ledger has no `---` separator between headers and the frames section".into(),
        ));
        return out;
    };
    let mut entries: Vec<(u64, u64)> = Vec::new(); // (version, hash)
    for (lineno, line) in header.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let parsed = match fields.as_slice() {
            ["version", v, "hash", h] => v.parse::<u64>().ok().zip(u64::from_str_radix(h, 16).ok()),
            _ => None,
        };
        match parsed {
            Some(pair) => entries.push(pair),
            None => out.push(mk(
                "ledger-malformed",
                policy::WIRE_LEDGER_FILE,
                lineno + 1,
                format!("unparseable ledger header line `{line}` (want `version N hash <hex>`)"),
            )),
        }
    }
    let Some(&(last_version, last_hash)) = entries.last() else {
        out.push(mk(
            "ledger-malformed",
            policy::WIRE_LEDGER_FILE,
            0,
            "ledger has no `version N hash <hex>` header line".into(),
        ));
        return out;
    };
    if entries.windows(2).any(|w| w[1].0 <= w[0].0) {
        out.push(mk(
            "version-order",
            policy::WIRE_LEDGER_FILE,
            0,
            "ledger versions must be strictly increasing — the ledger is append-only".into(),
        ));
    }
    if last_version != version {
        out.push(mk(
            "version-mismatch",
            policy::WIRE_PROTOCOL_FILE,
            version_line,
            format!(
                "PROTOCOL_VERSION is {version} but the newest ledger entry is version \
                 {last_version} — a layout change needs both a version bump and a ledger \
                 entry"
            ),
        ));
    }
    if fnv1a64(section.as_bytes()) != last_hash {
        out.push(mk(
            "ledger-stale",
            policy::WIRE_LEDGER_FILE,
            0,
            "frames section does not hash to the newest ledger entry — the layout changed \
             without appending a `version N hash <fnv1a64>` line"
                .into(),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Check 8: MVCC locking discipline.
// ---------------------------------------------------------------------------

/// Does any of the `n` tokens starting at `i` equal `text`?
fn window_has(file: &SourceFile, i: usize, n: usize, text: &str) -> bool {
    file.tokens[i..file.tokens.len().min(i + n)]
        .iter()
        .any(|t| t.text == text)
}

/// Row-level MVCC discipline (PR 8), two invariants:
///
/// * **table-x-outside-ddl** — a table-exclusive lock (a literal
///   `LockMode::Exclusive` paired with `Resource::Table`, or an exclusive
///   `with_table_lock_by_name`) may be taken only by the DDL handlers in
///   [`policy::TABLE_X_LOCK_FNS`]. DML must use the shared DDL fence plus
///   row-exclusive chain-root locks; a table-X on a write path would revive
///   the pre-MVCC readers-block-writers behaviour.
/// * **commit-without-validation** — inside the sanctioned commit path
///   ([`policy::WAL_COMMIT_FNS`]), every `txns.commit(…)` acknowledgement
///   must be lexically preceded by `validate_write_set` (first-committer-
///   wins): no transaction may become visible without conflict validation.
pub fn check_mvcc_locks(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        let scanned = file
            .crate_name
            .as_deref()
            .is_some_and(|c| policy::MVCC_LOCK_CRATES.contains(&c))
            && !file.in_tests_dir;
        if !scanned {
            continue;
        }
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.in_test {
                continue;
            }
            let table_x = (seq(file, i, &["Resource", ":", ":", "Table"])
                || (t.text == "with_table_lock_by_name" && seq(file, i + 1, &["("])))
                && window_has(file, i, 12, "Exclusive");
            if table_x {
                let func = func_of(file, i);
                let allowed = policy::TABLE_X_LOCK_FNS
                    .iter()
                    .any(|(f, fun)| file.rel_path.ends_with(f) && func == *fun);
                if !allowed {
                    out.push(Violation {
                        check: "mvcc-locks",
                        category: "table-x-outside-ddl".into(),
                        file: file.rel_path.clone(),
                        line: t.line,
                        func: func.clone(),
                        ordinal: 0,
                        message: format!(
                            "table-exclusive lock in `{func}` — only DDL may exclude a \
                             table (see verify policy); DML takes the shared fence plus \
                             row-exclusive chain-root locks"
                        ),
                    });
                }
            }
            if t.text == "txns"
                && (seq(file, i, &["txns", ".", "commit", "("])
                    || seq(file, i, &["txns", "(", ")", ".", "commit", "("]))
            {
                let func = func_of(file, i);
                let in_commit_path = policy::WAL_COMMIT_FNS
                    .iter()
                    .any(|(f, fun)| file.rel_path.ends_with(f) && func == *fun);
                if !in_commit_path {
                    continue; // rogue acks are already wal-ack violations
                }
                let validated_before = (0..i)
                    .rev()
                    .take_while(|&j| func_of(file, j) == func)
                    .any(|j| file.tokens[j].text == "validate_write_set");
                if !validated_before {
                    out.push(Violation {
                        check: "mvcc-locks",
                        category: "commit-without-validation".into(),
                        file: file.rel_path.clone(),
                        line: t.line,
                        func: func.clone(),
                        ordinal: 0,
                        message: format!(
                            "txns.commit() in `{func}` without a preceding \
                             validate_write_set — first-committer-wins validation must \
                             run before a commit becomes visible"
                        ),
                    });
                }
            }
        }
    }
    out
}
