//! A lightweight syntax layer over the [`crate::lexer`] token stream.
//!
//! `ingot-verify` stays std-only (no `syn`), so this module recovers just
//! enough structure for flow-sensitive checks: `fn` items, statements,
//! `if`/`else` branches, loops, `match` arms, `let … else` divergence and
//! `?`/`return` early exits. Everything it cannot classify (closures,
//! `let x = if …`, macro bodies) is swallowed into a `Simple` statement,
//! which keeps the tree an *over*-approximation: facts generated inside a
//! swallowed expression apply to the whole statement, never to a narrower
//! scope than the real program.
//!
//! Statement spans are `[lo, hi)` index ranges into the file's token vector,
//! so checks can pattern-match tokens and recover exact line numbers.

use crate::lexer::Token;

/// One parsed function body.
pub struct FnDef {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body is test-gated (`#[test]` / `#[cfg(test)]`).
    pub in_test: bool,
    /// The body block.
    pub body: Block,
}

/// A `{ … }` block: a statement sequence.
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// One statement. Token spans are `[lo, hi)` into the file token stream.
pub enum Stmt {
    /// Anything without recovered control flow: `let`, expression
    /// statements, macro calls, trailing expressions.
    Simple {
        lo: usize,
        hi: usize,
        /// Contains a `?` operator: adds an error-exit edge.
        has_question: bool,
        /// Contains a `return` token (e.g. inside a swallowed closure or
        /// `let … else`-free diverging sub-expression): adds an exit edge
        /// while keeping the fall-through.
        has_return: bool,
        /// Terminated by `;` (a trailing expression is a return value).
        terminated: bool,
    },
    /// `let PAT = expr else { … };` — the else block diverges and its
    /// effects must not leak onto the fall-through path.
    LetElse {
        lo: usize,
        /// End of the `let PAT = expr` part (start of `else`).
        hi: usize,
        has_question: bool,
        else_b: Block,
    },
    /// `return …;` — exits the function.
    Return { lo: usize, hi: usize },
    /// `break …;` — exits the innermost loop.
    Break { lo: usize, hi: usize },
    /// `continue …;` — jumps to the innermost loop head.
    Continue { lo: usize, hi: usize },
    /// `if cond { … } [else if … ] [else { … }]`.
    If {
        /// Condition token span.
        cond: (usize, usize),
        then_b: Block,
        else_b: Option<Block>,
    },
    /// `while cond { … }` / `for pat in iter { … }` / `loop { … }`.
    Loop {
        /// Condition / iterator head span (empty for bare `loop`).
        head: (usize, usize),
        body: Block,
        /// `false` for bare `loop`: the only way past it is `break`.
        conditional: bool,
    },
    /// `match scrutinee { arms… }`. Each arm block starts with a `Simple`
    /// statement covering its pattern (and guard) tokens.
    Match {
        head: (usize, usize),
        arms: Vec<Block>,
    },
    /// A bare `{ … }` (or `unsafe { … }`) block.
    Sub { body: Block },
}

/// Parse every function body in a file's token stream (nested functions are
/// returned as their own `FnDef`, not as statements of the enclosing body).
pub fn parse_file(tokens: &[Token]) -> Vec<FnDef> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "fn" && tokens.get(i + 1).is_some_and(|t| is_ident(&t.text)) {
            i = parse_fn(tokens, i, &mut fns);
        } else {
            i += 1;
        }
    }
    fns
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
}

/// Parse `fn name …` starting at the `fn` token; returns the index after the
/// item (past the body `}` or the declaration `;`).
fn parse_fn(tokens: &[Token], at: usize, fns: &mut Vec<FnDef>) -> usize {
    let name = tokens[at + 1].text.clone();
    let line = tokens[at].line;
    // Walk the signature to the body `{` (or a bodyless decl's `;`).
    let mut j = at + 2;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            ";" if paren == 0 && bracket == 0 => return j + 1, // trait decl: no body
            "{" if paren == 0 && bracket == 0 => {
                let in_test = tokens
                    .get(j + 1)
                    .map(|t| t.in_test)
                    .unwrap_or(tokens[at].in_test);
                let (body, next) = parse_block(tokens, j, fns);
                fns.push(FnDef {
                    name,
                    line,
                    in_test,
                    body,
                });
                return next;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Parse a `{ … }` block starting at the `{`; returns (block, index past `}`).
fn parse_block(tokens: &[Token], at: usize, fns: &mut Vec<FnDef>) -> (Block, usize) {
    debug_assert_eq!(tokens[at].text, "{");
    let mut stmts = Vec::new();
    let mut k = at + 1;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "}" => return (Block { stmts }, k + 1),
            ";" => k += 1,
            "#" => k = skip_attribute(tokens, k),
            "'" if tokens.get(k + 1).is_some_and(|t| is_ident(&t.text))
                && tokens.get(k + 2).is_some_and(|t| t.text == ":") =>
            {
                k += 3; // loop label
            }
            "fn" if tokens.get(k + 1).is_some_and(|t| is_ident(&t.text)) => {
                k = parse_fn(tokens, k, fns);
            }
            "if" => {
                let (s, next) = parse_if(tokens, k, fns);
                stmts.push(s);
                k = next;
            }
            "while" | "for" => {
                let head_lo = k + 1;
                let body_at = find_body_brace(tokens, head_lo, tokens[k].text == "for");
                let (body, next) = parse_block(tokens, body_at, fns);
                stmts.push(Stmt::Loop {
                    head: (head_lo, body_at),
                    body,
                    conditional: true,
                });
                k = next;
            }
            "loop" => {
                let body_at = find_body_brace(tokens, k + 1, false);
                let (body, next) = parse_block(tokens, body_at, fns);
                stmts.push(Stmt::Loop {
                    head: (k + 1, k + 1),
                    body,
                    conditional: false,
                });
                k = next;
            }
            "match" => {
                let (s, next) = parse_match(tokens, k, fns);
                stmts.push(s);
                k = next;
            }
            "return" => {
                let hi = scan_to_semi(tokens, k + 1);
                stmts.push(Stmt::Return { lo: k, hi });
                k = hi;
            }
            "break" => {
                let hi = scan_to_semi(tokens, k + 1);
                stmts.push(Stmt::Break { lo: k, hi });
                k = hi;
            }
            "continue" => {
                let hi = scan_to_semi(tokens, k + 1);
                stmts.push(Stmt::Continue { lo: k, hi });
                k = hi;
            }
            "unsafe" | "async" if tokens.get(k + 1).is_some_and(|t| t.text == "{") => {
                let (body, next) = parse_block(tokens, k + 1, fns);
                stmts.push(Stmt::Sub { body });
                k = next;
            }
            "{" => {
                let (body, next) = parse_block(tokens, k, fns);
                stmts.push(Stmt::Sub { body });
                k = next;
            }
            ")" | "]" => k += 1, // parse confusion: skip defensively
            _ => {
                let (s, next) = parse_simple(tokens, k, fns);
                stmts.push(s);
                k = next;
            }
        }
    }
    (Block { stmts }, k)
}

/// Skip an attribute `#[…]` / `#![…]`; returns the index past the `]`.
fn skip_attribute(tokens: &[Token], at: usize) -> usize {
    let mut a = at + 1;
    if tokens.get(a).is_some_and(|t| t.text == "!") {
        a += 1;
    }
    if tokens.get(a).is_none_or(|t| t.text != "[") {
        return at + 1;
    }
    let mut depth = 0i32;
    while a < tokens.len() {
        match tokens[a].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return a + 1;
                }
            }
            _ => {}
        }
        a += 1;
    }
    a
}

/// Find the body `{` of an `if`/`while`/`for`/`loop`/`match` head starting
/// at `from`. Struct literals are forbidden in condition/scrutinee position,
/// so the first depth-0 `{` is the body — except pattern braces in
/// `if let Struct { .. } = …` (before the `=`) and `for Struct { .. } in …`
/// (before the `in`), which are consumed as balanced groups.
fn find_body_brace(tokens: &[Token], from: usize, is_for: bool) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = from;
    let saw_let = tokens.get(from).is_some_and(|t| t.text == "let");
    let mut in_pattern = saw_let || is_for;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "=" if paren == 0 && bracket == 0 && saw_let => in_pattern = false,
            "in" if paren == 0 && bracket == 0 && is_for => in_pattern = false,
            "{" if paren == 0 && bracket == 0 => {
                if in_pattern {
                    j = skip_braces(tokens, j);
                    continue;
                }
                return j;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skip a balanced `{ … }` group; returns the index past the closing `}`.
fn skip_braces(tokens: &[Token], at: usize) -> usize {
    let mut depth = 0i32;
    let mut j = at;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Scan from `from` to the terminating `;` at depth 0 (or stop before an
/// enclosing `}`); returns the index of the terminator.
fn scan_to_semi(tokens: &[Token], from: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut j = from;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => paren += 1,
            ")" => {
                if paren == 0 {
                    return j;
                }
                paren -= 1;
            }
            "[" => bracket += 1,
            "]" => {
                if bracket == 0 {
                    return j;
                }
                bracket -= 1;
            }
            "{" => brace += 1,
            "}" => {
                if brace == 0 {
                    return j;
                }
                brace -= 1;
            }
            ";" if paren == 0 && bracket == 0 && brace == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

fn parse_if(tokens: &[Token], at: usize, fns: &mut Vec<FnDef>) -> (Stmt, usize) {
    let cond_lo = at + 1;
    let body_at = find_body_brace(tokens, cond_lo, false);
    let (then_b, mut next) = parse_block(tokens, body_at, fns);
    let mut else_b = None;
    if tokens.get(next).is_some_and(|t| t.text == "else") {
        match tokens.get(next + 1).map(|t| t.text.as_str()) {
            Some("if") => {
                let (nested, n2) = parse_if(tokens, next + 1, fns);
                else_b = Some(Block {
                    stmts: vec![nested],
                });
                next = n2;
            }
            Some("{") => {
                let (b, n2) = parse_block(tokens, next + 1, fns);
                else_b = Some(b);
                next = n2;
            }
            _ => {}
        }
    }
    (
        Stmt::If {
            cond: (cond_lo, body_at),
            then_b,
            else_b,
        },
        next,
    )
}

fn parse_match(tokens: &[Token], at: usize, fns: &mut Vec<FnDef>) -> (Stmt, usize) {
    let head_lo = at + 1;
    let body_at = find_body_brace(tokens, head_lo, false);
    let mut arms = Vec::new();
    let mut k = body_at + 1;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "}" => {
                return (
                    Stmt::Match {
                        head: (head_lo, body_at),
                        arms,
                    },
                    k + 1,
                );
            }
            "," | ";" => k += 1,
            "#" => k = skip_attribute(tokens, k),
            _ => {
                let (arm, next) = parse_arm(tokens, k, fns);
                arms.push(arm);
                k = next;
            }
        }
    }
    (
        Stmt::Match {
            head: (head_lo, body_at),
            arms,
        },
        k,
    )
}

/// Parse one match arm (`pattern [if guard] => body`). The pattern/guard
/// span becomes a leading `Simple` statement of the arm block so facts
/// generated by guard expressions are not lost.
fn parse_arm(tokens: &[Token], at: usize, fns: &mut Vec<FnDef>) -> (Block, usize) {
    // Pattern + guard: scan to `=>` at depth 0.
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut j = at;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" => brace += 1,
            "}" => {
                if brace == 0 {
                    break; // malformed arm: ran into the match close
                }
                brace -= 1;
            }
            "=" if paren == 0
                && bracket == 0
                && brace == 0
                && tokens.get(j + 1).is_some_and(|t| t.text == ">") =>
            {
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let pattern = Stmt::Simple {
        lo: at,
        hi: j,
        has_question: false,
        has_return: false,
        terminated: true,
    };
    if tokens.get(j).is_none_or(|t| t.text != "=") {
        // No arrow found: consume what we scanned as a degenerate arm.
        return (
            Block {
                stmts: vec![pattern],
            },
            j,
        );
    }
    let body_at = j + 2;
    if tokens.get(body_at).is_some_and(|t| t.text == "{") {
        let (mut body, next) = parse_block(tokens, body_at, fns);
        body.stmts.insert(0, pattern);
        return (body, next);
    }
    // Expression arm: scan to `,` at depth 0 or the match's closing `}`.
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut e = body_at;
    let mut has_question = false;
    let mut has_return = false;
    while e < tokens.len() {
        match tokens[e].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" => brace += 1,
            "}" => {
                if brace == 0 {
                    break;
                }
                brace -= 1;
            }
            "," if paren == 0 && bracket == 0 && brace == 0 => break,
            "?" => has_question = true,
            "return" => has_return = true,
            _ => {}
        }
        e += 1;
    }
    let body = Stmt::Simple {
        lo: body_at,
        hi: e,
        has_question,
        has_return,
        terminated: true,
    };
    (
        Block {
            stmts: vec![pattern, body],
        },
        e,
    )
}

/// Parse a statement with no recovered control flow, detecting
/// `let … else { … };` so the diverging block does not leak onto the
/// fall-through path.
fn parse_simple(tokens: &[Token], at: usize, fns: &mut Vec<FnDef>) -> (Stmt, usize) {
    let is_let = tokens[at].text == "let";
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut j = at;
    let mut has_question = false;
    let mut has_return = false;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => paren += 1,
            ")" => {
                if paren == 0 {
                    return (simple(at, j, has_question, has_return, false), j);
                }
                paren -= 1;
            }
            "[" => bracket += 1,
            "]" => {
                if bracket == 0 {
                    return (simple(at, j, has_question, has_return, false), j);
                }
                bracket -= 1;
            }
            "{" => brace += 1,
            "}" => {
                if brace == 0 {
                    // Enclosing block close: this was a trailing expression.
                    return (simple(at, j, has_question, has_return, false), j);
                }
                brace -= 1;
            }
            ";" if paren == 0 && bracket == 0 && brace == 0 => {
                return (simple(at, j, has_question, has_return, true), j + 1);
            }
            // `let PAT = expr else {`: the RHS of let-else cannot end in `}`
            // (Rust grammar), so an `else` not preceded by `}` is let-else.
            "else"
                if is_let
                    && paren == 0
                    && bracket == 0
                    && brace == 0
                    && j > at
                    && tokens[j - 1].text != "}"
                    && tokens.get(j + 1).is_some_and(|t| t.text == "{") =>
            {
                let (else_b, next) = parse_block(tokens, j + 1, fns);
                let end = if tokens.get(next).is_some_and(|t| t.text == ";") {
                    next + 1
                } else {
                    next
                };
                return (
                    Stmt::LetElse {
                        lo: at,
                        hi: j,
                        has_question,
                        else_b,
                    },
                    end,
                );
            }
            "?" => has_question = true,
            "return" => has_return = true,
            _ => {}
        }
        j += 1;
    }
    (simple(at, j, has_question, has_return, false), j)
}

fn simple(lo: usize, hi: usize, has_question: bool, has_return: bool, terminated: bool) -> Stmt {
    Stmt::Simple {
        lo,
        hi,
        has_question,
        has_return,
        terminated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean, tokenize};

    fn parse(src: &str) -> Vec<FnDef> {
        parse_file(&tokenize(&clean(src).text))
    }

    #[test]
    fn recovers_functions_and_statements() {
        let fns = parse("fn a() { let x = 1; if x > 0 { f(x); } else { g(); } }\nfn b() {}");
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[0].body.stmts.len(), 2);
        assert!(matches!(fns[0].body.stmts[1], Stmt::If { .. }));
        assert_eq!(fns[1].name, "b");
    }

    #[test]
    fn let_else_splits_the_diverging_block() {
        let fns = parse("fn a() { let Some(x) = opt else { cleanup(); return; }; use_it(x); }");
        assert_eq!(fns[0].body.stmts.len(), 2);
        match &fns[0].body.stmts[0] {
            Stmt::LetElse { else_b, .. } => {
                assert!(else_b
                    .stmts
                    .iter()
                    .any(|s| matches!(s, Stmt::Return { .. })));
            }
            _ => panic!("expected let-else"),
        }
    }

    #[test]
    fn let_if_else_is_one_simple_statement() {
        let fns = parse("fn a() { let x = if c { f() } else { g() }; h(x); }");
        assert_eq!(fns[0].body.stmts.len(), 2);
        assert!(matches!(fns[0].body.stmts[0], Stmt::Simple { .. }));
    }

    #[test]
    fn match_arms_with_struct_patterns() {
        let fns = parse(
            "fn a(r: R) { match r { R::Commit { txn, .. } => stamp(txn), R::Abort { .. } => { \
             undo(); } } }",
        );
        match &fns[0].body.stmts[0] {
            Stmt::Match { arms, .. } => assert_eq!(arms.len(), 2),
            _ => panic!("expected match"),
        }
    }

    #[test]
    fn loops_and_breaks() {
        let fns = parse("fn a() { loop { if done() { break; } step()?; } tail(); }");
        match &fns[0].body.stmts[0] {
            Stmt::Loop {
                conditional, body, ..
            } => {
                assert!(!conditional);
                assert!(body.stmts.iter().any(|s| matches!(
                    s,
                    Stmt::Simple {
                        has_question: true,
                        ..
                    }
                )));
            }
            _ => panic!("expected loop"),
        }
    }

    #[test]
    fn nested_fns_are_separate_defs() {
        let fns = parse("fn outer() { fn inner() { x(); } inner(); }");
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"inner") && names.contains(&"outer"));
        // The outer body holds only the call, not inner's statements.
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(outer.body.stmts.len(), 1);
    }

    #[test]
    fn if_let_struct_pattern_finds_the_body() {
        let fns = parse("fn a() { if let P { x, .. } = p { f(x); } g(); }");
        assert_eq!(fns[0].body.stmts.len(), 2);
        assert!(matches!(fns[0].body.stmts[0], Stmt::If { .. }));
    }
}
