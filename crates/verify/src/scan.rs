//! Workspace discovery: walk the tree, classify files, lex each one.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Token};

/// One analysed Rust source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// `crates/<name>/…` → `<name>`; `None` for top-level `tests/` etc.
    pub crate_name: Option<String>,
    /// File lives under a `tests/`, `benches/` or `examples/` directory —
    /// wholly exempt from hot-path checks, counted as test corpus for IMA.
    pub in_tests_dir: bool,
    /// Token stream with fn / test attribution.
    pub tokens: Vec<Token>,
    /// String literal contents with start line.
    pub strings: Vec<(usize, String)>,
    /// Lines (1-based) on which at least one token is test-gated.
    test_lines: Vec<usize>,
}

impl SourceFile {
    /// Is the string literal starting on `line` inside a test region?
    pub fn line_in_test(&self, line: usize) -> bool {
        self.in_tests_dir || self.test_lines.binary_search(&line).is_ok()
    }

    /// Build an in-memory file for unit tests (no filesystem involved).
    pub fn for_tests(rel_path: &str, crate_name: &str, src: &str) -> SourceFile {
        let cleaned = lexer::clean(src);
        let tokens = lexer::tokenize(&cleaned.text);
        let mut test_lines: Vec<usize> = tokens
            .iter()
            .filter(|t| t.in_test)
            .map(|t| t.line)
            .collect();
        test_lines.dedup();
        SourceFile {
            rel_path: rel_path.to_owned(),
            crate_name: Some(crate_name.to_owned()),
            in_tests_dir: false,
            tokens,
            strings: cleaned.strings,
            test_lines,
        }
    }
}

/// Read and lex every Rust file of the workspace rooted at `root`.
///
/// Scans `crates/*/{src,tests,benches,examples}` plus the top-level `tests/`
/// and `examples/` directories. `crates/verify/fixtures` (golden violation
/// inputs) and build outputs are skipped.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            for sub in ["src", "tests", "benches", "examples"] {
                collect(root, &dir.join(sub), &mut files)?;
            }
        }
    }
    for sub in ["tests", "examples"] {
        collect(root, &root.join(sub), &mut files)?;
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack: Vec<PathBuf> = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let p = entry?.path();
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                out.push(load(root, &p)?);
            }
        }
    }
    Ok(())
}

fn load(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
    let src = fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") {
        parts.get(1).map(|s| s.to_string())
    } else {
        None
    };
    let in_tests_dir = parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    let cleaned = lexer::clean(&src);
    let tokens = lexer::tokenize(&cleaned.text);
    let mut test_lines: Vec<usize> = tokens
        .iter()
        .filter(|t| t.in_test)
        .map(|t| t.line)
        .collect();
    test_lines.dedup();
    Ok(SourceFile {
        rel_path: rel,
        crate_name,
        in_tests_dir,
        tokens,
        strings: cleaned.strings,
        test_lines,
    })
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// both `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(|p| p.to_path_buf());
    }
    None
}
