//! Per-function control-flow graphs over the [`crate::syntax`] tree.
//!
//! Nodes are statement/condition token spans plus synthetic entry, exit and
//! scope-end nodes. Scope-end nodes mark where a block's RAII bindings drop,
//! so the dataflow pass can kill guard-like facts at the right place. Edges
//! out of a condition node record which branch they take, letting the
//! dataflow pass derive facts from the condition itself (e.g. the false
//! branch of `if !self.wal.is_replaying()` is the replay path).

use crate::syntax::{Block, FnDef, Stmt};

/// One CFG edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub to: usize,
    /// `Some(true)` / `Some(false)`: the true/false branch out of a
    /// condition node. `None`: unconditional.
    pub branch: Option<bool>,
    /// Synthetic error edge from a `?` operator: excluded when computing
    /// what a callee provides on *normal* exit.
    pub is_err: bool,
}

/// CFG node payload.
#[derive(Debug, Clone, Copy)]
pub enum NodeKind {
    Entry,
    Exit,
    /// A statement or condition token span `[lo, hi)`, with the lexical
    /// block it belongs to (for RAII binding resolution).
    Span {
        lo: usize,
        hi: usize,
        block: usize,
    },
    /// End of lexical block `block`: `let`-bound guards declared in it drop.
    ScopeEnd {
        block: usize,
    },
}

pub struct Node {
    pub kind: NodeKind,
    pub succs: Vec<Edge>,
    pub preds: Vec<usize>,
}

/// A function CFG. Node 0 is the entry, node 1 the exit.
pub struct Cfg {
    pub nodes: Vec<Node>,
    /// Parent lexical block of each block id (`None` for the body block).
    pub block_parent: Vec<Option<usize>>,
}

pub const ENTRY: usize = 0;
pub const EXIT: usize = 1;

/// A dangling out-edge waiting to be wired to the next node.
#[derive(Clone, Copy)]
struct Pending {
    from: usize,
    branch: Option<bool>,
}

struct Builder {
    nodes: Vec<Node>,
    block_parent: Vec<Option<usize>>,
    /// (continue target, pending break edges) per active loop.
    loops: Vec<(usize, Vec<Pending>)>,
}

impl Builder {
    fn node(&mut self, kind: NodeKind) -> usize {
        self.nodes.push(Node {
            kind,
            succs: Vec::new(),
            preds: Vec::new(),
        });
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, branch: Option<bool>, is_err: bool) {
        self.nodes[from].succs.push(Edge { to, branch, is_err });
    }

    fn connect(&mut self, frontier: &[Pending], to: usize) {
        for p in frontier {
            self.edge(p.from, to, p.branch, false);
        }
    }

    fn lower_block(
        &mut self,
        block: &Block,
        frontier: Vec<Pending>,
        parent: Option<usize>,
    ) -> Vec<Pending> {
        let bid = self.block_parent.len();
        self.block_parent.push(parent);
        let mut frontier = frontier;
        for stmt in &block.stmts {
            frontier = self.lower_stmt(stmt, frontier, bid);
        }
        let end = self.node(NodeKind::ScopeEnd { block: bid });
        self.connect(&frontier, end);
        vec![Pending {
            from: end,
            branch: None,
        }]
    }

    fn lower_stmt(&mut self, stmt: &Stmt, frontier: Vec<Pending>, bid: usize) -> Vec<Pending> {
        match stmt {
            Stmt::Simple {
                lo,
                hi,
                has_question,
                has_return,
                ..
            } => {
                let n = self.node(NodeKind::Span {
                    lo: *lo,
                    hi: *hi,
                    block: bid,
                });
                self.connect(&frontier, n);
                if *has_question {
                    self.edge(n, EXIT, None, true);
                }
                if *has_return {
                    self.edge(n, EXIT, None, false);
                }
                vec![Pending {
                    from: n,
                    branch: None,
                }]
            }
            Stmt::LetElse {
                lo,
                hi,
                has_question,
                else_b,
            } => {
                let n = self.node(NodeKind::Span {
                    lo: *lo,
                    hi: *hi,
                    block: bid,
                });
                self.connect(&frontier, n);
                if *has_question {
                    self.edge(n, EXIT, None, true);
                }
                // The else block diverges; anything that still falls out of
                // it (malformed input) is wired to the exit, never back to
                // the main path.
                let else_f = self.lower_block(
                    else_b,
                    vec![Pending {
                        from: n,
                        branch: None,
                    }],
                    Some(bid),
                );
                self.connect(&else_f, EXIT);
                vec![Pending {
                    from: n,
                    branch: None,
                }]
            }
            Stmt::Return { lo, hi } => {
                let n = self.node(NodeKind::Span {
                    lo: *lo,
                    hi: *hi,
                    block: bid,
                });
                self.connect(&frontier, n);
                self.edge(n, EXIT, None, false);
                Vec::new()
            }
            Stmt::Break { lo, hi } => {
                let n = self.node(NodeKind::Span {
                    lo: *lo,
                    hi: *hi,
                    block: bid,
                });
                self.connect(&frontier, n);
                if let Some((_, breaks)) = self.loops.last_mut() {
                    breaks.push(Pending {
                        from: n,
                        branch: None,
                    });
                } else {
                    self.edge(n, EXIT, None, false);
                }
                Vec::new()
            }
            Stmt::Continue { lo, hi } => {
                let n = self.node(NodeKind::Span {
                    lo: *lo,
                    hi: *hi,
                    block: bid,
                });
                self.connect(&frontier, n);
                if let Some(&(head, _)) = self.loops.last() {
                    self.edge(n, head, None, false);
                } else {
                    self.edge(n, EXIT, None, false);
                }
                Vec::new()
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                let c = self.node(NodeKind::Span {
                    lo: cond.0,
                    hi: cond.1,
                    block: bid,
                });
                self.connect(&frontier, c);
                let mut out = self.lower_block(
                    then_b,
                    vec![Pending {
                        from: c,
                        branch: Some(true),
                    }],
                    Some(bid),
                );
                match else_b {
                    Some(e) => out.extend(self.lower_block(
                        e,
                        vec![Pending {
                            from: c,
                            branch: Some(false),
                        }],
                        Some(bid),
                    )),
                    None => out.push(Pending {
                        from: c,
                        branch: Some(false),
                    }),
                }
                out
            }
            Stmt::Loop {
                head,
                body,
                conditional,
            } => {
                let h = self.node(NodeKind::Span {
                    lo: head.0,
                    hi: head.1,
                    block: bid,
                });
                self.connect(&frontier, h);
                self.loops.push((h, Vec::new()));
                let body_f = self.lower_block(
                    body,
                    vec![Pending {
                        from: h,
                        branch: if *conditional { Some(true) } else { None },
                    }],
                    Some(bid),
                );
                self.connect(&body_f, h); // back edge
                let (_, breaks) = self.loops.pop().expect("loop stack");
                let mut out = breaks;
                if *conditional {
                    out.push(Pending {
                        from: h,
                        branch: Some(false),
                    });
                }
                out
            }
            Stmt::Match { head, arms } => {
                let h = self.node(NodeKind::Span {
                    lo: head.0,
                    hi: head.1,
                    block: bid,
                });
                self.connect(&frontier, h);
                if arms.is_empty() {
                    return vec![Pending {
                        from: h,
                        branch: None,
                    }];
                }
                let mut out = Vec::new();
                for arm in arms {
                    out.extend(self.lower_block(
                        arm,
                        vec![Pending {
                            from: h,
                            branch: None,
                        }],
                        Some(bid),
                    ));
                }
                out
            }
            Stmt::Sub { body } => self.lower_block(body, frontier, Some(bid)),
        }
    }
}

/// Build the CFG for one function.
pub fn build(f: &FnDef) -> Cfg {
    let mut b = Builder {
        nodes: Vec::new(),
        block_parent: Vec::new(),
        loops: Vec::new(),
    };
    let entry = b.node(NodeKind::Entry);
    debug_assert_eq!(entry, ENTRY);
    let exit = b.node(NodeKind::Exit);
    debug_assert_eq!(exit, EXIT);
    let out = b.lower_block(
        &f.body,
        vec![Pending {
            from: entry,
            branch: None,
        }],
        None,
    );
    b.connect(&out, exit);
    let mut cfg = Cfg {
        nodes: b.nodes,
        block_parent: b.block_parent,
    };
    for i in 0..cfg.nodes.len() {
        for e in cfg.nodes[i].succs.clone() {
            cfg.nodes[e.to].preds.push(i);
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean, tokenize};
    use crate::syntax::parse_file;

    fn cfg_of(src: &str) -> Cfg {
        let tokens = tokenize(&clean(src).text);
        let fns = parse_file(&tokens);
        build(&fns[0])
    }

    #[test]
    fn straight_line_chains_to_exit() {
        let c = cfg_of("fn a() { f(); g(); }");
        // entry -> f -> g -> scope-end -> exit
        assert!(c.nodes[EXIT].preds.len() == 1);
        assert!(matches!(
            c.nodes[c.nodes[EXIT].preds[0]].kind,
            NodeKind::ScopeEnd { .. }
        ));
    }

    #[test]
    fn question_mark_adds_error_edge_to_exit() {
        let c = cfg_of("fn a() { f()?; g(); }");
        let err_edges: usize = c
            .nodes
            .iter()
            .flat_map(|n| &n.succs)
            .filter(|e| e.is_err)
            .count();
        assert_eq!(err_edges, 1);
    }

    #[test]
    fn if_branches_rejoin() {
        let c = cfg_of("fn a() { if x { f(); } g(); }");
        // The condition node has a true and a false successor.
        let cond = c
            .nodes
            .iter()
            .find(|n| n.succs.iter().any(|e| e.branch == Some(true)))
            .expect("cond node");
        assert!(cond.succs.iter().any(|e| e.branch == Some(false)));
    }

    #[test]
    fn bare_loop_exits_only_via_break() {
        let c = cfg_of("fn a() { loop { if done { break; } } after(); }");
        // `after()` must be reachable (the break edge feeds it).
        let reachable = {
            let mut seen = vec![false; c.nodes.len()];
            let mut stack = vec![ENTRY];
            while let Some(n) = stack.pop() {
                if std::mem::replace(&mut seen[n], true) {
                    continue;
                }
                for e in &c.nodes[n].succs {
                    stack.push(e.to);
                }
            }
            seen
        };
        assert!(reachable[EXIT]);
    }
}
