#![forbid(unsafe_code)]
//! `ingot-verify` — project-specific static analysis for the Ingot workspace.
//!
//! The compiler cannot see Ingot's concurrency disciplines (PR 3) or the
//! paper's monitoring-overhead accounting; this crate checks them as source
//! invariants, the same "watch yourself continuously" stance the engine
//! applies to workloads:
//!
//! 1. **lock-order** — `catalog.write()` (the DDL guard) only from
//!    allowlisted DDL handlers; no table-lock acquisition on any CFG path
//!    where a write guard may still be live.
//! 2. **panic** — `.unwrap()` / `.expect()` / direct indexing budgeted in
//!    hot-path modules via a checked-in ratchet allowlist; indexing sites
//!    dominated by their own bounds check are discharged by the prover.
//! 3. **clock** — raw `Instant::now` / `SystemTime::now` only in
//!    trace/daemon/bench, so `monitor_ns` keeps meaning what Fig 5 says.
//! 4. **ima** — every registered `ima$…` virtual table is documented and
//!    referenced by at least one test.
//! 5. **error-type** — `pub fn`s of the embedding API (`core::engine`)
//!    never return `Result<_, String>`; errors cross the API boundary as
//!    `ingot_common::Error` so callers can match on kinds.
//! 6. **wal-ack** — `txns.commit(…)` (the commit acknowledgement) only in
//!    the engine commit path, and only when the WAL durability barrier
//!    dominates it on every CFG path, so no path reports success for a
//!    commit that cannot survive a crash.
//! 7. **waits** — every `WaitEvent` taxonomy variant is documented in
//!    DESIGN.md and referenced by a test, and wait guards are constructed
//!    only inside the instrumented modules (lock queue, WAL, buffer pool,
//!    retry, daemon catch-up).
//! 8. **mvcc-locks** — table-exclusive locks only from the DDL allowlist
//!    (row-level MVCC: DML takes the shared fence plus row locks, queries
//!    take none), and the engine commit path never acknowledges a commit
//!    unless first-committer-wins validation (`validate_write_set`)
//!    dominates the acknowledgement.
//! 9. **wal-order** — version stamping (`apply_version_commit`) is
//!    dominated by the WAL durability barrier: no path may expose committed
//!    versions whose Commit record could still be lost.
//! 10. **wait-coverage** — known blocking calls in the instrumented modules
//!     are dominated by a live `WaitGuard`, directly or at every call site
//!     of the enclosing helper, so no wait time escapes the ASH pipeline.
//! 11. **swallowed-results** — `let _ = …` and trailing `.ok();` may not
//!     discard a `Result` in storage/txn/core::engine outside the reviewed
//!     policy allowlist.
//! 12. **mvcc-stamp-order** — stamping never precedes the commit-ticket
//!     reservation and never follows publish/watermark release on any path.
//! 13. **wire-compat** — the `Error` enum and the wire `WIRE_CODE_TABLE`
//!     describe the same closed set (every variant mapped, no numeric code
//!     claimed twice), and the frame-layout ledger is current: versions
//!     strictly increasing, newest entry matching `PROTOCOL_VERSION`, and
//!     its hash matching the frames section — so any layout change forces
//!     a version bump plus a ledger entry.
//!
//! Checks 1, 6 and 8 run on a per-function control-flow graph with a
//! forward dataflow pass (see [`syntax`], [`cfg`], [`dataflow`],
//! [`callgraph`], [`flow`]); `--lexical` selects the original
//! token-proximity implementations as a fallback. Checks 9–12 exist only in
//! the flow engine; check 13 has no flow component and runs in both modes.
//!
//! `syn` is deliberately not used: the checks operate on a comment- and
//! literal-stripped token stream (see [`lexer`]), which keeps the tool
//! dependency-free and buildable offline.

pub mod allowlist;
pub mod callgraph;
pub mod cfg;
pub mod checks;
pub mod dataflow;
pub mod flow;
pub mod lexer;
pub mod policy;
pub mod scan;
pub mod syntax;

use std::path::Path;

pub use checks::Violation;

/// Which engine runs the flow-portable checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mode {
    /// CFG + dataflow engine: checks 1/6/8 flow-sensitively, plus 9–12 and
    /// the guarded-index prover for the panic ratchet.
    #[default]
    Flow,
    /// Original token-proximity implementations of checks 1/6/8 only; no
    /// flow-only checks, no prover. Kept as a fallback and as the baseline
    /// for the differential fixture tests.
    Lexical,
}

/// Aggregate result of a verification run.
pub struct Report {
    /// Violations that fail the run (not allowlisted).
    pub violations: Vec<Violation>,
    /// Panic-freedom sites grandfathered by the allowlist.
    pub allowlisted: usize,
    /// Allowlist entries with no matching site (ratchet: must be removed).
    pub stale: Vec<String>,
}

impl Report {
    /// Does this run pass?
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Run every check over the workspace at `root`. The panic-freedom check is
/// filtered through the allowlist at `allowlist_path` when given.
pub fn run(root: &Path, allowlist_path: Option<&Path>, mode: Mode) -> std::io::Result<Report> {
    let files = scan::scan_workspace(root)?;

    // Checks with no flow component run identically in both modes.
    let mut violations = checks::check_clock_hygiene(&files);
    violations.extend(checks::check_ima_completeness(root, &files));
    violations.extend(checks::check_error_discipline(&files));
    violations.extend(checks::check_wait_events(root, &files));
    violations.extend(checks::check_wire_compat(root, &files));

    let panic_violations = match mode {
        Mode::Flow => {
            violations.extend(flow::run_flow_checks(&files));
            let proven = flow::guarded_index_filter(&files);
            checks::check_panic_freedom_filtered(&files, &proven)
        }
        Mode::Lexical => {
            violations.extend(checks::check_lock_order(&files));
            violations.extend(checks::check_wal_ack(&files));
            violations.extend(checks::check_mvcc_locks(&files));
            checks::check_panic_freedom(&files)
        }
    };
    let (fresh, allowlisted, stale) = match allowlist_path {
        Some(p) if p.is_file() => {
            let allow = allowlist::load(p)?;
            allowlist::apply(panic_violations, &allow)
        }
        _ => (panic_violations, 0, Vec::new()),
    };
    violations.extend(fresh);
    violations.sort_by(|a, b| (&a.file, a.line, &a.category).cmp(&(&b.file, b.line, &b.category)));
    Ok(Report {
        violations,
        allowlisted,
        stale,
    })
}

/// Raw panic-freedom scan (no allowlist) — used by `--bless`. Runs the
/// guarded-index prover in flow mode so blessed ordinals match [`run`].
pub fn panic_scan(root: &Path, mode: Mode) -> std::io::Result<Vec<Violation>> {
    let files = scan::scan_workspace(root)?;
    Ok(match mode {
        Mode::Flow => {
            let proven = flow::guarded_index_filter(&files);
            checks::check_panic_freedom_filtered(&files, &proven)
        }
        Mode::Lexical => checks::check_panic_freedom(&files),
    })
}
