#![forbid(unsafe_code)]
//! CLI: `cargo run -p ingot-verify [-- --root PATH] [--bless] [--lexical] [--github]`.
//!
//! Exit status 0 when the workspace satisfies every invariant (modulo the
//! checked-in allowlist), 1 otherwise, 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ingot_verify::Mode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut bless = false;
    let mut github = false;
    let mut mode = Mode::Flow;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--bless" => bless = true,
            "--lexical" => mode = Mode::Lexical,
            "--github" => github = true,
            "--help" | "-h" => {
                eprintln!(
                    "ingot-verify: Ingot invariant checks\n\
                     \n\
                     USAGE: cargo run -p ingot-verify [-- --root PATH] [--bless] [--lexical] \
                     [--github]\n\
                     \n\
                     --root PATH   workspace root (default: nearest ancestor with crates/)\n\
                     --bless       rewrite crates/verify/allowlist.txt from the current scan\n\
                     --lexical     run the token-proximity fallback engine (checks 1/6/8 \
                     only; no flow checks 9-12, no guarded-index prover)\n\
                     --github      emit violations as GitHub workflow annotations"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ingot-verify: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| ingot_verify::scan::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("ingot-verify: could not locate the workspace root (use --root)");
            return ExitCode::from(2);
        }
    };
    let allowlist_path = root.join("crates/verify/allowlist.txt");

    if bless {
        let scan = match ingot_verify::panic_scan(&root, mode) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ingot-verify: scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        let rendered = ingot_verify::allowlist::render(&scan);
        if let Err(e) = std::fs::write(&allowlist_path, rendered) {
            eprintln!(
                "ingot-verify: cannot write {}: {e}",
                allowlist_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "ingot-verify: blessed {} panic-freedom sites into {}",
            scan.len(),
            allowlist_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let report = match ingot_verify::run(&root, Some(&allowlist_path), mode) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ingot-verify: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        if github {
            // GitHub workflow-command annotation: shows inline on the PR
            // diff. The message must stay single-line.
            println!(
                "::error file={},line={}::[{}/{}] {}",
                v.file,
                v.line,
                v.check,
                v.category,
                v.message.replace('\n', " ")
            );
        } else {
            println!("{v}");
        }
    }
    for s in &report.stale {
        println!(
            "allowlist: stale entry `{}` — the site is gone; remove the line (or --bless) \
             so the ratchet records the win",
            s.replace('\t', " ")
        );
    }
    println!(
        "ingot-verify: {} violation(s), {} stale allowlist entr(ies), {} allowlisted \
         panic site(s) pending conversion",
        report.violations.len(),
        report.stale.len(),
        report.allowlisted
    );
    if report.clean() {
        println!("ingot-verify: workspace clean");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
