//! The invariant catalogue: which crates/modules each check covers and the
//! built-in exemptions. Kept in one place so the policy is reviewable.
//!
//! See DESIGN.md "Static analysis & model checking" for the rationale behind
//! each entry.

/// Crates whose `src/` is a panic-freedom hot path: `.unwrap()`, `.expect()`
/// and direct slice indexing are budgeted (allowlist-only) here.
pub const HOT_PATH_CRATES: &[&str] = &["storage", "txn", "executor"];

/// Individual hot-path files outside the crates above.
pub const HOT_PATH_FILES: &[&str] = &["crates/core/src/engine.rs"];

/// Crates checked for lock-order discipline (`catalog.write()` reachable
/// only from the DDL allowlist, no lock acquisition under the DDL guard).
pub const LOCK_ORDER_CRATES: &[&str] = &["core", "executor", "txn", "daemon", "analyzer"];

/// `(file suffix, function)` pairs allowed to open the catalog write guard.
/// These are the DDL handlers: every one of them acquires its logical table
/// lock *before* the guard (PR 3 discipline) or runs before any session
/// exists (daemon bootstrap, analyzer apply step).
pub const DDL_WRITERS: &[(&str, &str)] = &[
    ("crates/core/src/engine.rs", "execute_inner"),
    ("crates/core/src/engine.rs", "run_create_table"),
    ("crates/core/src/engine.rs", "run_create_index"),
    ("crates/core/src/engine.rs", "add_virtual_index"),
    ("crates/core/src/engine.rs", "clear_virtual_indexes"),
    // Daemon bootstrap: registers ima$daemon_health before any session runs.
    ("crates/daemon/src/lib.rs", "new"),
    // Analyzer maintenance window: freshens/restores statistics around the
    // what-if pass; holds the DDL guard but never table locks.
    ("crates/analyzer/src/lib.rs", "analyze"),
];

/// Crates that may call `Instant::now` / `SystemTime::now` directly: the
/// wall-clock wrapper itself, the tracing subsystem, the storage daemon and
/// the benchmark harness. Everything else must route through
/// `ingot_common::clock` so monitoring overhead stays attributable.
pub const CLOCK_EXEMPT_CRATES: &[&str] =
    &["trace", "daemon", "bench", "loom-shim", "criterion-shim"];

/// Files exempt from the clock check by name.
pub const CLOCK_EXEMPT_FILES: &[&str] = &["crates/common/src/clock.rs"];

/// The file registering every `ima$…` virtual table (the IMA registry).
pub const IMA_REGISTRY_FILE: &str = "crates/core/src/ima.rs";

/// Files whose `pub fn`s form the embedding API: their fallible returns
/// must use `ingot_common::Result`, never `Result<_, String>`.
pub const ERROR_DISCIPLINE_FILES: &[&str] = &["crates/core/src/engine.rs"];

/// Crates scanned for commit-acknowledgement discipline: `txns.commit(…)`
/// (the point at which a commit becomes visible to other sessions and is
/// reported successful) may appear only in [`WAL_COMMIT_FNS`], and there
/// only after the WAL durability barrier.
pub const WAL_ACK_CRATES: &[&str] = &["core", "executor", "txn", "daemon", "analyzer"];

/// `(file suffix, function)` pairs allowed to acknowledge a commit. The
/// single sanctioned path is `Engine::commit_txn`, which appends the
/// `Commit` record and waits on `commit_barrier` before calling
/// `txns.commit`.
pub const WAL_COMMIT_FNS: &[(&str, &str)] = &[("crates/core/src/engine.rs", "commit_txn")];

/// Crates scanned for MVCC locking discipline (check 8): table-exclusive
/// locks only from DDL, and no commit acknowledgement without
/// first-committer-wins validation.
pub const MVCC_LOCK_CRATES: &[&str] = &["core", "executor", "txn", "daemon", "analyzer"];

/// `(file suffix, function)` pairs allowed to take a **table-exclusive**
/// lock (a literal `LockMode::Exclusive` on a `Resource::Table`, or an
/// exclusive `with_table_lock_by_name`). Row-level MVCC (PR 8) reserves
/// table-X for DDL: queries take no table locks and DML takes only the
/// shared DDL fence plus row-exclusive chain-root locks.
pub const TABLE_X_LOCK_FNS: &[(&str, &str)] = &[
    ("crates/core/src/engine.rs", "execute_inner"),
    ("crates/core/src/engine.rs", "run_create_index"),
];

/// The file declaring the closed wait-event taxonomy (`enum WaitEvent`).
/// Every variant must be documented in DESIGN.md and referenced from a test.
pub const WAIT_EVENTS_FILE: &str = "crates/common/src/waits.rs";

/// Files allowed to construct wait guards (`WaitGuard::begin` /
/// `WaitGuard::ambient`) outside test code. These are the instrumented
/// choke points: the taxonomy itself, retry backoff, the lock queue, the
/// WAL barriers, the buffer pool, and the daemon's catch-up loop. Guards
/// anywhere else would charge wait time the DESIGN.md taxonomy does not
/// account for.
pub const WAIT_GUARD_FILES: &[&str] = &[
    "crates/common/src/waits.rs",
    "crates/common/src/retry.rs",
    "crates/txn/src/lock.rs",
    "crates/storage/src/wal.rs",
    "crates/storage/src/buffer.rs",
    "crates/catalog/src/table.rs",
    "crates/daemon/src/lib.rs",
];

/// Rust keywords that cannot be an indexed expression head; a `[` following
/// one of these is an array literal, type, or pattern — not indexing.
pub const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "as", "move", "static", "const",
    "crate", "super", "use", "pub", "fn", "impl", "for", "while", "loop", "where", "dyn", "box",
    "break", "continue", "struct", "enum", "trait", "type", "mod", "unsafe", "async", "await",
    "self", "Self",
];
