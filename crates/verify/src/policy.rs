//! The invariant catalogue: which crates/modules each check covers and the
//! built-in exemptions. Kept in one place so the policy is reviewable.
//!
//! See DESIGN.md "Static analysis & model checking" for the rationale behind
//! each entry.

/// Crates whose `src/` is a panic-freedom hot path: `.unwrap()`, `.expect()`
/// and direct slice indexing are budgeted (allowlist-only) here.
pub const HOT_PATH_CRATES: &[&str] = &["storage", "txn", "executor"];

/// Individual hot-path files outside the crates above.
pub const HOT_PATH_FILES: &[&str] = &["crates/core/src/engine.rs"];

/// Crates checked for lock-order discipline (`catalog.write()` reachable
/// only from the DDL allowlist, no lock acquisition under the DDL guard).
pub const LOCK_ORDER_CRATES: &[&str] = &["core", "executor", "txn", "daemon", "analyzer"];

/// `(file suffix, function)` pairs allowed to open the catalog write guard.
/// These are the DDL handlers: every one of them acquires its logical table
/// lock *before* the guard (PR 3 discipline) or runs before any session
/// exists (daemon bootstrap, analyzer apply step).
pub const DDL_WRITERS: &[(&str, &str)] = &[
    ("crates/core/src/engine.rs", "execute_inner"),
    ("crates/core/src/engine.rs", "run_create_table"),
    ("crates/core/src/engine.rs", "run_create_index"),
    ("crates/core/src/engine.rs", "add_virtual_index"),
    ("crates/core/src/engine.rs", "clear_virtual_indexes"),
    // Server attach: registers ima$connections once, before the server
    // accepts any connection; holds the DDL guard but never table locks.
    ("crates/core/src/engine.rs", "attach_connections_provider"),
    // Daemon bootstrap: registers ima$daemon_health before any session runs.
    ("crates/daemon/src/lib.rs", "new"),
    // Analyzer maintenance window: freshens/restores statistics around the
    // what-if pass; holds the DDL guard but never table locks.
    ("crates/analyzer/src/lib.rs", "analyze"),
];

/// Crates that may call `Instant::now` / `SystemTime::now` directly: the
/// wall-clock wrapper itself, the tracing subsystem, the storage daemon and
/// the benchmark harness. Everything else must route through
/// `ingot_common::clock` so monitoring overhead stays attributable.
pub const CLOCK_EXEMPT_CRATES: &[&str] =
    &["trace", "daemon", "bench", "loom-shim", "criterion-shim"];

/// Files exempt from the clock check by name.
pub const CLOCK_EXEMPT_FILES: &[&str] = &["crates/common/src/clock.rs"];

/// The file registering every `ima$…` virtual table (the IMA registry).
pub const IMA_REGISTRY_FILE: &str = "crates/core/src/ima.rs";

/// Files whose `pub fn`s form the embedding API: their fallible returns
/// must use `ingot_common::Result`, never `Result<_, String>`.
pub const ERROR_DISCIPLINE_FILES: &[&str] = &["crates/core/src/engine.rs"];

/// Crates scanned for commit-acknowledgement discipline: `txns.commit(…)`
/// (the point at which a commit becomes visible to other sessions and is
/// reported successful) may appear only in [`WAL_COMMIT_FNS`], and there
/// only after the WAL durability barrier.
pub const WAL_ACK_CRATES: &[&str] = &["core", "executor", "txn", "daemon", "analyzer"];

/// `(file suffix, function)` pairs allowed to acknowledge a commit. The
/// single sanctioned path is `Engine::commit_txn`, which appends the
/// `Commit` record and waits on `commit_barrier` before calling
/// `txns.commit`.
pub const WAL_COMMIT_FNS: &[(&str, &str)] = &[("crates/core/src/engine.rs", "commit_txn")];

/// Crates scanned for MVCC locking discipline (check 8): table-exclusive
/// locks only from DDL, and no commit acknowledgement without
/// first-committer-wins validation.
pub const MVCC_LOCK_CRATES: &[&str] = &["core", "executor", "txn", "daemon", "analyzer"];

/// `(file suffix, function)` pairs allowed to take a **table-exclusive**
/// lock (a literal `LockMode::Exclusive` on a `Resource::Table`, or an
/// exclusive `with_table_lock_by_name`). Row-level MVCC (PR 8) reserves
/// table-X for DDL: queries take no table locks and DML takes only the
/// shared DDL fence plus row-exclusive chain-root locks.
pub const TABLE_X_LOCK_FNS: &[(&str, &str)] = &[
    ("crates/core/src/engine.rs", "execute_inner"),
    ("crates/core/src/engine.rs", "run_create_index"),
];

/// The file declaring the closed wait-event taxonomy (`enum WaitEvent`).
/// Every variant must be documented in DESIGN.md and referenced from a test.
pub const WAIT_EVENTS_FILE: &str = "crates/common/src/waits.rs";

/// Files allowed to construct wait guards (`WaitGuard::begin` /
/// `WaitGuard::ambient`) outside test code. These are the instrumented
/// choke points: the taxonomy itself, retry backoff, the lock queue, the
/// transaction gates (quiesce / commit publish), the WAL barriers, the
/// buffer pool, and the daemon's catch-up loop. Guards
/// anywhere else would charge wait time the DESIGN.md taxonomy does not
/// account for.
pub const WAIT_GUARD_FILES: &[&str] = &[
    "crates/common/src/waits.rs",
    "crates/common/src/retry.rs",
    "crates/txn/src/lock.rs",
    "crates/txn/src/lib.rs",
    "crates/storage/src/wal.rs",
    "crates/storage/src/buffer.rs",
    "crates/catalog/src/table.rs",
    "crates/daemon/src/lib.rs",
];

/// Files scanned by the flow-sensitive wait-coverage check (check 10):
/// every known blocking call in them must be dominated by a live
/// `WaitGuard`, either directly or at every same-crate call site of the
/// enclosing helper. These are the modules that block by design — the same
/// instrumented choke points as [`WAIT_GUARD_FILES`] plus the transaction
/// manager, whose gates (admission, quiescence, commit publish) also park.
pub const WAIT_COVERAGE_FILES: &[&str] = &[
    "crates/common/src/retry.rs",
    "crates/txn/src/lock.rs",
    "crates/txn/src/lib.rs",
    "crates/storage/src/wal.rs",
    "crates/storage/src/buffer.rs",
    "crates/catalog/src/table.rs",
    "crates/daemon/src/lib.rs",
];

/// Call names that block the calling thread. A token from this list followed
/// by `(` inside a [`WAIT_COVERAGE_FILES`] file is a blocking site.
pub const BLOCKING_CALLS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_while",
    "wait_timeout",
    "wait_timeout_while",
    "sync_all",
    "sync_data",
    "sleep",
    "park",
    "recv",
    "recv_timeout",
];

/// `(file suffix, function)` pairs exempt from wait-coverage. Each entry
/// needs a rationale:
/// * `retry.rs run` charges the *declared* backoff via `charge_ambient`
///   (under `run_sim` the wait advances a simulated clock, so a wall-clock
///   guard would record ~0) — instrumented, just not guard-shaped.
/// * `wal.rs open_in_dir` runs once at startup before any session exists;
///   its torn-tail truncation fsync cannot be attributed to a session.
/// * `wal.rs sync_file` is the raw device-sync helper: the real barrier
///   paths (`sync_to`, `truncate_to`) hold the `WalFsync` guard at the
///   call site, and the remaining caller is the simulated power-cut
///   torn-tail write, where no session is waiting.
/// * `daemon lib.rs spawn` is the monitor's pacing sleep — the daemon
///   wakes on a wall-clock interval by design; it is idle, not waiting.
pub const WAIT_EXEMPT_FNS: &[(&str, &str)] = &[
    ("crates/common/src/retry.rs", "run"),
    ("crates/storage/src/wal.rs", "open_in_dir"),
    ("crates/storage/src/wal.rs", "sync_file"),
    ("crates/daemon/src/lib.rs", "spawn"),
];

/// Crates whose `src/` is scanned for swallowed `Result`s (check 11).
pub const SWALLOW_CRATES: &[&str] = &["storage", "txn"];

/// Individual files outside the crates above scanned for swallowed
/// `Result`s.
pub const SWALLOW_FILES: &[&str] = &["crates/core/src/engine.rs"];

/// Callee names whose result may be discarded: condvar wait wrappers return
/// a guard/timeout pair the caller already holds by other means.
pub const SWALLOW_EXEMPT_CALLEES: &[&str] = &[
    "wait",
    "wait_for",
    "wait_while",
    "wait_timeout",
    "wait_timeout_while",
];

/// `(file suffix, function)` pairs allowed to discard a `Result`, each with
/// a reviewed rationale:
/// * `wal.rs append` / `wal.rs power_cut` — the torn-tail branch and the
///   crash helper simulate a power cut mid write: the truncate/write/sync
///   of the surviving prefix are best-effort device modelling, and the
///   caller already returns the injected crash error.
/// * `recovery.rs write_manifest` — the directory fsync after the manifest
///   rename is best-effort: opening a directory for sync is not supported
///   on every platform, and the file's own fsync already happened.
/// * `engine.rs abort_txn_with` appends the Abort WAL record best-effort:
///   the abort must complete even when the log device is gone, and recovery
///   treats a missing Abort record identically.
/// * `engine.rs attach_connections_provider` registers `ima$connections`
///   once per engine; an attach after a detach finds the table already
///   registered, and that duplicate error is the expected signal (the
///   registration closure reads the swapped provider slot either way).
pub const SWALLOW_ALLOW: &[(&str, &str)] = &[
    ("crates/storage/src/wal.rs", "append"),
    ("crates/storage/src/wal.rs", "power_cut"),
    ("crates/storage/src/recovery.rs", "write_manifest"),
    ("crates/core/src/engine.rs", "abort_txn_with"),
    ("crates/core/src/engine.rs", "attach_connections_provider"),
];

/// The file declaring the workspace `enum Error` (check 13 cross-checks
/// its variants against the wire code table).
pub const WIRE_ERROR_FILE: &str = "crates/common/src/error.rs";

/// The file declaring `WIRE_CODE_TABLE` and `PROTOCOL_VERSION`.
pub const WIRE_PROTOCOL_FILE: &str = "crates/common/src/wire.rs";

/// The append-only wire-layout ledger: `version N hash <fnv1a64>` header
/// lines, a `---` separator, then the frame-layout descriptor section the
/// last header line must hash.
pub const WIRE_LEDGER_FILE: &str = "crates/common/wire_layout.txt";

/// Rust keywords that cannot be an indexed expression head; a `[` following
/// one of these is an array literal, type, or pattern — not indexing.
pub const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "as", "move", "static", "const",
    "crate", "super", "use", "pub", "fn", "impl", "for", "while", "loop", "where", "dyn", "box",
    "break", "continue", "struct", "enum", "trait", "type", "mod", "unsafe", "async", "await",
    "self", "Self",
];
