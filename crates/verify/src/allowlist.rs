//! The panic-freedom allowlist: a checked-in ratchet.
//!
//! One line per grandfathered violation, keyed
//! `category<TAB>file<TAB>function<TAB>ordinal` — stable across line-number
//! churn. A violation not on the list fails the build (no new panic sites);
//! a list entry with no matching violation also fails the build (the list
//! may only shrink — rerun with `--bless` after fixing sites and commit the
//! smaller list).

use std::collections::BTreeSet;
use std::path::Path;

use crate::checks::Violation;

/// Parse an allowlist file into its set of keys.
pub fn load(path: &Path) -> std::io::Result<BTreeSet<String>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse(&text))
}

/// Parse allowlist text (comments `#`, blank lines ignored).
pub fn parse(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

/// Render the allowlist for the given violations (used by `--bless`).
pub fn render(violations: &[Violation]) -> String {
    let keys: BTreeSet<String> = violations.iter().map(|v| v.key()).collect();
    let mut out = String::new();
    out.push_str("# ingot-verify panic-freedom allowlist (ratchet: may only shrink).\n");
    out.push_str("# category<TAB>file<TAB>function<TAB>ordinal — regenerate with --bless.\n");
    out.push_str("# Entries are grandfathered panic sites pending Result conversion;\n");
    out.push_str("# see DESIGN.md \"Static analysis & model checking\".\n");
    for k in &keys {
        out.push_str(k);
        out.push('\n');
    }
    out
}

/// Split `violations` into (new, allowlisted-count) and report stale keys.
pub fn apply(
    violations: Vec<Violation>,
    allow: &BTreeSet<String>,
) -> (Vec<Violation>, usize, Vec<String>) {
    let current: BTreeSet<String> = violations.iter().map(|v| v.key()).collect();
    let stale: Vec<String> = allow.difference(&current).cloned().collect();
    let mut fresh = Vec::new();
    let mut grandfathered = 0usize;
    for v in violations {
        if allow.contains(&v.key()) {
            grandfathered += 1;
        } else {
            fresh.push(v);
        }
    }
    (fresh, grandfathered, stale)
}
