//! A minimal Rust source "cleaner" and tokenizer.
//!
//! `ingot-verify` does not need a full parse of the language — every
//! invariant it checks is expressible over a token stream with comments and
//! literal *contents* blanked out. The cleaner preserves byte positions of
//! everything it blanks (spaces for stripped characters, newlines kept), so
//! line numbers in diagnostics match the original file exactly.
//!
//! String literal contents are collected separately: the IMA-completeness
//! check needs to see `"ima$..."` names that live inside literals.

/// Output of [`clean`]: the blanked source plus every string literal.
pub struct Cleaned {
    /// Source with comments and literal contents replaced by spaces.
    pub text: String,
    /// `(start_line, contents)` of every string literal (1-based lines).
    pub strings: Vec<(usize, String)>,
}

/// Strip comments and literal contents, preserving layout.
pub fn clean(src: &str) -> Cleaned {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Push a blank (or the original byte when it is a newline, which must
    // survive so line numbers stay aligned).
    fn blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
        }
        // Line comment.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                blank(&mut out, bytes[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let mut depth = 1usize;
            blank(&mut out, b'/');
            blank(&mut out, b'*');
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string literal: r"..." / r#"..."# / br##"..."## etc.
        if (b == b'r' || b == b'b') && !prev_is_ident_char(&out) {
            let mut j = i;
            if bytes[j] == b'b' && j + 1 < bytes.len() && bytes[j + 1] == b'r' {
                j += 1;
            }
            if bytes[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < bytes.len() && bytes[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == b'"' {
                    // Emit the prefix verbatim-as-blank… keep `r#"` visible
                    // enough to not merge tokens: just blank it all.
                    let start_line = line;
                    let mut lit = String::new();
                    for &b in bytes.iter().take(k + 1).skip(i) {
                        blank(&mut out, b);
                    }
                    i = k + 1;
                    // Scan to closing `"####`.
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        if bytes[i] == b'"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < bytes.len() && bytes[i + 1 + h] == b'#'
                            {
                                h += 1;
                            }
                            if h == hashes {
                                for &b in bytes.iter().take(i + hashes + 1).skip(i) {
                                    blank(&mut out, b);
                                }
                                i += hashes + 1;
                                break 'raw;
                            }
                        }
                        lit.push(bytes[i] as char);
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                    strings.push((start_line, lit));
                    continue;
                }
            }
        }
        // Normal string literal (also b"..").
        if b == b'"' {
            let start_line = line;
            let mut lit = String::new();
            out.push(b'"');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    // A `\` line-continuation consumes the newline here, so
                    // the top-of-loop counter never sees it: count it now or
                    // every later line number in the file drifts.
                    if bytes[i + 1] == b'\n' {
                        line += 1;
                    }
                    lit.push(bytes[i] as char);
                    lit.push(bytes[i + 1] as char);
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    continue;
                }
                if bytes[i] == b'"' {
                    out.push(b'"');
                    i += 1;
                    break;
                }
                lit.push(bytes[i] as char);
                blank(&mut out, bytes[i]);
                i += 1;
            }
            strings.push((start_line, lit));
            continue;
        }
        // Char literal vs lifetime. `'a` / `'static` are lifetimes; `'x'`,
        // `'\n'` are char literals.
        if b == b'\'' {
            let n1 = bytes.get(i + 1).copied();
            let n2 = bytes.get(i + 2).copied();
            let is_lifetime =
                matches!(n1, Some(c) if c.is_ascii_alphabetic() || c == b'_') && n2 != Some(b'\'');
            if !is_lifetime {
                // Char literal: blank through the closing quote.
                blank(&mut out, b'\'');
                i += 1;
                if i < bytes.len() && bytes[i] == b'\\' {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                while i < bytes.len() && bytes[i] != b'\'' {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                if i < bytes.len() {
                    blank(&mut out, b'\'');
                    i += 1;
                }
                continue;
            }
        }
        out.push(b);
        i += 1;
    }

    Cleaned {
        text: String::from_utf8_lossy(&out).into_owned(),
        strings,
    }
}

fn prev_is_ident_char(out: &[u8]) -> bool {
    matches!(out.last(), Some(&c) if c.is_ascii_alphanumeric() || c == b'_')
}

/// One lexical token of the cleaned source.
#[derive(Debug, Clone)]
pub struct Token {
    /// Identifier text, or the punctuation character as a 1-char string.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// Inside `#[cfg(test)]` / `#[test]`-attributed items.
    pub in_test: bool,
    /// Name of the innermost enclosing `fn`, if any.
    pub func: Option<String>,
}

/// Tokenize cleaned source, attributing each token to its enclosing function
/// and flagging tokens inside test-gated items.
pub fn tokenize(cleaned: &str) -> Vec<Token> {
    let bytes = cleaned.as_bytes();
    let mut raw: Vec<(String, usize)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            raw.push((cleaned[start..i].to_owned(), line));
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
            {
                // Stop a numeric token before `..` (range) so `0..n` does not
                // swallow the dots.
                if bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    break;
                }
                i += 1;
            }
            raw.push((cleaned[start..i].to_owned(), line));
            continue;
        }
        raw.push(((b as char).to_string(), line));
        i += 1;
    }

    // Second pass: brace-scope tracking for fn names and test regions.
    #[derive(Clone)]
    struct Scope {
        func: Option<String>,
        in_test: bool,
    }
    let mut scopes: Vec<Scope> = vec![Scope {
        func: None,
        in_test: false,
    }];
    let mut out: Vec<Token> = Vec::with_capacity(raw.len());
    let mut pending_fn: Option<String> = None;
    let mut pending_test = false;
    let mut k = 0usize;
    while k < raw.len() {
        let (text, tline) = raw[k].clone();
        let cur = scopes.last().cloned().unwrap_or(Scope {
            func: None,
            in_test: false,
        });

        // Attribute: `#` (optional `!`) `[` … matching `]`.
        if text == "#" {
            let mut a = k + 1;
            if raw.get(a).map(|t| t.0.as_str()) == Some("!") {
                a += 1;
            }
            if raw.get(a).map(|t| t.0.as_str()) == Some("[") {
                let mut depth = 0usize;
                let mut has_test = false;
                // A `test` token counts only outside `not(…)` groups, so
                // `#[cfg(not(test))]` stays live while
                // `#[cfg(all(test, not(loom)))]` is a test region.
                let mut paren_depth = 0usize;
                let mut not_depths: Vec<usize> = Vec::new();
                let end = {
                    let mut e = a;
                    while e < raw.len() {
                        match raw[e].0.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "(" => paren_depth += 1,
                            ")" => {
                                if not_depths.last() == Some(&paren_depth) {
                                    not_depths.pop();
                                }
                                paren_depth = paren_depth.saturating_sub(1);
                            }
                            "not" if raw.get(e + 1).map(|t| t.0.as_str()) == Some("(") => {
                                not_depths.push(paren_depth + 1);
                            }
                            "test" if not_depths.is_empty() => has_test = true,
                            _ => {}
                        }
                        e += 1;
                    }
                    e
                };
                if has_test {
                    pending_test = true;
                }
                // Attribute tokens themselves carry the enclosing scope.
                for t in raw.iter().take((end + 1).min(raw.len())).skip(k) {
                    out.push(Token {
                        text: t.0.clone(),
                        line: t.1,
                        in_test: cur.in_test,
                        func: cur.func.clone(),
                    });
                }
                k = end + 1;
                continue;
            }
        }

        match text.as_str() {
            "fn" => {
                if let Some((name, _)) = raw.get(k + 1) {
                    pending_fn = Some(name.clone());
                }
            }
            ";" => {
                // A `;` before any `{` ends a bodyless item: clear pendings
                // only when no body followed (e.g. trait method decl).
                pending_fn = None;
                pending_test = false;
            }
            "{" => {
                let func = pending_fn.take().or_else(|| cur.func.clone());
                let in_test = cur.in_test || pending_test;
                pending_test = false;
                scopes.push(Scope { func, in_test });
            }
            "}" if scopes.len() > 1 => {
                scopes.pop();
            }
            _ => {}
        }

        // `{`/`}` tokens belong to the scope they open/close; everything else
        // to the current scope. Using the post-update scope for `{` is fine
        // for our checks.
        let eff = scopes.last().cloned().unwrap_or(cur);
        out.push(Token {
            text,
            line: tline,
            in_test: eff.in_test,
            func: eff.func,
        });
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let c = clean("let a = \"x.unwrap()\"; // b.unwrap()\n/* c.unwrap() */ d");
        assert!(!c.text.contains("unwrap"));
        assert!(c.text.contains("let a"));
        assert_eq!(c.strings.len(), 1);
        assert_eq!(c.strings[0].1, "x.unwrap()");
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let c = clean("fn f<'a>(x: &'a str) { let s = r#\"ima$locks\"#; let c = 'x'; }");
        assert!(c.text.contains("fn f"));
        assert_eq!(c.strings[0].1, "ima$locks");
        assert!(!c.text.contains("ima$"));
    }

    #[test]
    fn line_numbers_survive_cleaning() {
        let src = "line1\n/* multi\nline\ncomment */\nfive";
        let c = clean(src);
        assert_eq!(c.text.lines().count(), src.lines().count());
        let toks = tokenize(&c.text);
        let five = toks.iter().find(|t| t.text == "five").unwrap();
        assert_eq!(five.line, 5);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        // A `\` line-continuation inside a literal consumes its newline in
        // the escape branch; the line counter must still advance or every
        // later string in the file is recorded one line early.
        let src = "let a = \"first \\\n   part\";\nlet b = \"ima$after\";";
        let c = clean(src);
        assert_eq!(c.strings.len(), 2);
        assert_eq!(c.strings[1].0, 3, "string after a continuation");
        assert_eq!(c.strings[1].1, "ima$after");
    }

    #[test]
    fn fn_attribution_and_test_regions() {
        let src = "fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let toks = tokenize(&clean(src).text);
        let x = toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(x.func.as_deref(), Some("hot"));
        assert!(!x.in_test);
        let y = toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.func.as_deref(), Some("t"));
        assert!(y.in_test);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { z.unwrap(); }";
        let toks = tokenize(&clean(src).text);
        let z = toks.iter().find(|t| t.text == "z").unwrap();
        assert!(!z.in_test);
    }

    #[test]
    fn cfg_all_test_not_loom_is_a_test_region() {
        let src = "#[cfg(all(test, not(loom)))]\nmod tests { fn t() { y.unwrap(); } }";
        let toks = tokenize(&clean(src).text);
        let y = toks.iter().find(|t| t.text == "y").unwrap();
        assert!(y.in_test);
    }
}
