//! Flow-sensitive checks over the CFG/dataflow engine.
//!
//! Checks 1 (lock-order), 6 (wal-ack) and 8 (mvcc-locks) are ported here
//! from their lexical forms: "lexically preceding" becomes a genuine
//! dominance query (the fact holds on **every** CFG path into the site), so
//! the discipline survives early returns, `?` edges and helper extraction.
//! Four checks exist only in this engine:
//!
//! * **9 wal-order** — commit stamping (`apply_version_commit`) is dominated
//!   by the WAL durability barrier on all paths (replay counts: the record
//!   being replayed is the durable record).
//! * **10 wait-coverage** — calls into known blocking sites are dominated by
//!   a live `WaitGuard`, directly or through every call site of the helper.
//! * **11 swallowed-results** — `let _ = …(…)` / trailing `.ok();` may not
//!   discard a `Result` in storage/txn/core::engine outside the policy
//!   allowlist.
//! * **12 mvcc-stamp-order** — stamping never precedes ticket reservation
//!   (`start_commit`) and never follows publish/watermark release on any
//!   path.
//!
//! The panic-freedom ratchet also gains a prover here: an indexing site
//! dominated by its own bounds check (`i < v.len()`) or bounded by a
//! dominating `…min(v.len())` binding is discharged instead of allowlisted.

use std::collections::HashSet;

use crate::callgraph::Program;
use crate::checks::{is_index_head, Violation};
use crate::dataflow::{
    tseq, DDL_GUARD, PUBLISHED, RELEASED, TICKET, VALIDATED, WAIT_GUARD, WAL_DURABLE,
};
use crate::lexer::Token;
use crate::policy;
use crate::scan::SourceFile;
use crate::syntax::{Block, Stmt};

/// Run every flow-sensitive check. Returned violations are unsorted; the
/// caller merges and sorts them with the shared checks.
pub fn run_flow_checks(files: &[SourceFile]) -> Vec<Violation> {
    let program = Program::build(files);
    let mut out = check_lock_order(files, &program);
    out.extend(check_wal_ack(files, &program));
    out.extend(check_mvcc_locks(files, &program));
    out.extend(check_wal_order(files, &program));
    out.extend(check_wait_coverage(files, &program));
    out.extend(check_swallowed_results(files, &program));
    out.extend(check_stamp_order(files, &program));
    out
}

fn in_crates(files: &[SourceFile], pf_file: usize, crates: &[&str]) -> bool {
    files[pf_file]
        .crate_name
        .as_deref()
        .is_some_and(|c| crates.contains(&c))
}

fn allowed_fn(list: &[(&str, &str)], rel_path: &str, func: &str) -> bool {
    list.iter()
        .any(|(f, fun)| rel_path.ends_with(f) && func == *fun)
}

// ---------------------------------------------------------------------------
// Check 1 (flow): lock-order discipline.
// ---------------------------------------------------------------------------

fn check_lock_order(files: &[SourceFile], program: &Program) -> Vec<Violation> {
    let mut out = Vec::new();
    for pf in &program.fns {
        if !in_crates(files, pf.file, policy::LOCK_ORDER_CRATES) {
            continue;
        }
        let file = &files[pf.file];
        let tokens = &file.tokens;
        let func = &pf.def.name;
        for (node, lo, hi) in pf.analysis.spans() {
            for i in lo..hi.min(tokens.len()) {
                let ddl_write = tseq(tokens, i, &["catalog", ".", "write", "(", ")"])
                    || tseq(tokens, i, &["catalog", "(", ")", ".", "write", "(", ")"]);
                if ddl_write && !allowed_fn(policy::DDL_WRITERS, &file.rel_path, func) {
                    out.push(Violation {
                        check: "lock-order",
                        category: "ddl-write".into(),
                        file: file.rel_path.clone(),
                        line: tokens[i].line,
                        func: func.clone(),
                        ordinal: 0,
                        message: format!(
                            "catalog.write() in `{func}` — the DDL guard may only be taken by \
                             the allowlisted DDL handlers (see verify policy); DML/executor \
                             paths must use catalog.read() snapshots"
                        ),
                    });
                }
                let acquires = tseq(tokens, i, &["locks", ".", "lock", "("])
                    || tseq(tokens, i, &["locks", "(", ")", ".", "lock", "("])
                    || (tokens[i].text == "with_table_lock_by_name"
                        && tseq(tokens, i + 1, &["("])
                        && !(i > 0 && tokens[i - 1].text == "fn"));
                // "May" query: a guard live on *any* path into the
                // acquisition inverts the lock order.
                if acquires && pf.analysis.may_in[node] & DDL_GUARD != 0 {
                    let guard_line = pf.analysis.gen_line[0].unwrap_or(0);
                    out.push(Violation {
                        check: "lock-order",
                        category: "lock-under-guard".into(),
                        file: file.rel_path.clone(),
                        line: tokens[i].line,
                        func: func.clone(),
                        ordinal: 0,
                        message: format!(
                            "lock acquisition in `{func}` after binding a catalog write \
                             guard on line {guard_line} — table locks must be taken before \
                             the DDL guard, never under it"
                        ),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 6 (flow): commit-acknowledgement discipline.
// ---------------------------------------------------------------------------

fn check_wal_ack(files: &[SourceFile], program: &Program) -> Vec<Violation> {
    let mut out = Vec::new();
    for pf in &program.fns {
        if !in_crates(files, pf.file, policy::WAL_ACK_CRATES) {
            continue;
        }
        let file = &files[pf.file];
        let tokens = &file.tokens;
        let func = &pf.def.name;
        for (node, lo, hi) in pf.analysis.spans() {
            for i in lo..hi.min(tokens.len()) {
                let direct = tseq(tokens, i, &["txns", ".", "commit", "("])
                    || tseq(tokens, i, &["txns", "(", ")", ".", "commit", "("]);
                let read_only = tseq(tokens, i, &["txns", ".", "commit_read_only", "("])
                    || tseq(tokens, i, &["txns", "(", ")", ".", "commit_read_only", "("]);
                if !direct && !read_only {
                    continue;
                }
                if !allowed_fn(policy::WAL_COMMIT_FNS, &file.rel_path, func) {
                    out.push(Violation {
                        check: "wal-ack",
                        category: "ack-outside-commit-path".into(),
                        file: file.rel_path.clone(),
                        line: tokens[i].line,
                        func: func.clone(),
                        ordinal: 0,
                        message: format!(
                            "txns.commit() in `{func}` — commits may be acknowledged only by \
                             the engine commit path (see verify policy), which makes the WAL \
                             record durable first"
                        ),
                    });
                    continue;
                }
                if read_only {
                    continue; // empty write set: no barrier owed
                }
                if pf.analysis.input[node] & WAL_DURABLE == 0 {
                    let path = pf.analysis.violating_path(tokens, node, WAL_DURABLE);
                    out.push(Violation {
                        check: "wal-ack",
                        category: "ack-before-barrier".into(),
                        file: file.rel_path.clone(),
                        line: tokens[i].line,
                        func: func.clone(),
                        ordinal: 0,
                        message: format!(
                            "txns.commit() in `{func}` is not dominated by the WAL durability \
                             barrier — append the Commit record and wait on commit_barrier on \
                             every path before acknowledging{path}"
                        ),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 8 (flow): MVCC locking discipline.
// ---------------------------------------------------------------------------

fn check_mvcc_locks(files: &[SourceFile], program: &Program) -> Vec<Violation> {
    let mut out = Vec::new();
    for pf in &program.fns {
        if !in_crates(files, pf.file, policy::MVCC_LOCK_CRATES) {
            continue;
        }
        let file = &files[pf.file];
        let tokens = &file.tokens;
        let func = &pf.def.name;
        for (node, lo, hi) in pf.analysis.spans() {
            for i in lo..hi.min(tokens.len()) {
                let head = tseq(tokens, i, &["Resource", ":", ":", "Table"])
                    || (tokens[i].text == "with_table_lock_by_name"
                        && tseq(tokens, i + 1, &["("])
                        && !(i > 0 && tokens[i - 1].text == "fn"));
                let table_x = head
                    && tokens[i..hi.min(tokens.len()).min(i + 12)]
                        .iter()
                        .any(|t| t.text == "Exclusive");
                if table_x && !allowed_fn(policy::TABLE_X_LOCK_FNS, &file.rel_path, func) {
                    out.push(Violation {
                        check: "mvcc-locks",
                        category: "table-x-outside-ddl".into(),
                        file: file.rel_path.clone(),
                        line: tokens[i].line,
                        func: func.clone(),
                        ordinal: 0,
                        message: format!(
                            "table-exclusive lock in `{func}` — only DDL may exclude a \
                             table (see verify policy); DML takes the shared fence plus \
                             row-exclusive chain-root locks"
                        ),
                    });
                }
                let ack = tseq(tokens, i, &["txns", ".", "commit", "("])
                    || tseq(tokens, i, &["txns", "(", ")", ".", "commit", "("]);
                if ack
                    && allowed_fn(policy::WAL_COMMIT_FNS, &file.rel_path, func)
                    && pf.analysis.input[node] & VALIDATED == 0
                {
                    let path = pf.analysis.violating_path(tokens, node, VALIDATED);
                    out.push(Violation {
                        check: "mvcc-locks",
                        category: "commit-without-validation".into(),
                        file: file.rel_path.clone(),
                        line: tokens[i].line,
                        func: func.clone(),
                        ordinal: 0,
                        message: format!(
                            "txns.commit() in `{func}` is not dominated by \
                             validate_write_set — first-committer-wins validation must run \
                             on every path before a commit becomes visible{path}"
                        ),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 9: wal-order — stamping dominated by the durability barrier.
// ---------------------------------------------------------------------------

/// Commit-stamp sites: `…apply_version_commit(` calls (never the definition).
fn stamp_sites(tokens: &[Token], lo: usize, hi: usize) -> Vec<usize> {
    (lo..hi.min(tokens.len()))
        .filter(|&i| {
            tokens[i].text == "apply_version_commit"
                && tseq(tokens, i + 1, &["("])
                && !(i > 0 && tokens[i - 1].text == "fn")
        })
        .collect()
}

fn check_wal_order(files: &[SourceFile], program: &Program) -> Vec<Violation> {
    let mut out = Vec::new();
    for pf in &program.fns {
        if !in_crates(files, pf.file, policy::WAL_ACK_CRATES) {
            continue;
        }
        let file = &files[pf.file];
        let tokens = &file.tokens;
        for (node, lo, hi) in pf.analysis.spans() {
            for i in stamp_sites(tokens, lo, hi) {
                if pf.analysis.input[node] & WAL_DURABLE == 0 {
                    let path = pf.analysis.violating_path(tokens, node, WAL_DURABLE);
                    out.push(Violation {
                        check: "wal-order",
                        category: "stamp-before-durable".into(),
                        file: file.rel_path.clone(),
                        line: tokens[i].line,
                        func: pf.def.name.clone(),
                        ordinal: 0,
                        message: format!(
                            "version stamping in `{}` is not dominated by the WAL durability \
                             barrier — a crash here would expose committed versions whose \
                             Commit record never became durable{path}",
                            pf.def.name
                        ),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 10: wait-coverage — blocking sites under a live WaitGuard.
// ---------------------------------------------------------------------------

fn check_wait_coverage(files: &[SourceFile], program: &Program) -> Vec<Violation> {
    let mut out = Vec::new();
    for pf in &program.fns {
        let file = &files[pf.file];
        if !policy::WAIT_COVERAGE_FILES
            .iter()
            .any(|f| file.rel_path == *f)
        {
            continue;
        }
        let func = &pf.def.name;
        if allowed_fn(policy::WAIT_EXEMPT_FNS, &file.rel_path, func) {
            continue;
        }
        let tokens = &file.tokens;
        let krate = file.crate_name.clone().unwrap_or_default();
        // Covered-by-every-caller is computed once per function.
        let mut caller_covered: Option<bool> = None;
        for (node, lo, hi) in pf.analysis.spans() {
            for i in lo..hi.min(tokens.len()) {
                let blocking = policy::BLOCKING_CALLS.contains(&tokens[i].text.as_str())
                    && tseq(tokens, i + 1, &["("])
                    && !(i > 0 && tokens[i - 1].text == "fn");
                if !blocking || pf.analysis.input[node] & WAIT_GUARD != 0 {
                    continue;
                }
                // Compound statements (`let r = loop { … };`) lower to one
                // CFG span, so a guard bound earlier *inside* the same span
                // is invisible to the node-level dataflow. A bound guard
                // lexically preceding the call within the span covers it:
                // RAII keeps it live at least to the statement's end.
                let in_span_guard = (lo..i).any(|j| {
                    j > 0
                        && tokens[j - 1].text == "="
                        && (tseq(tokens, j, &["WaitGuard", ":", ":", "begin", "("])
                            || tseq(tokens, j, &["WaitGuard", ":", ":", "ambient", "("]))
                });
                if in_span_guard {
                    continue;
                }
                let covered = *caller_covered.get_or_insert_with(|| {
                    let sites = program.callsites(files, &krate, func);
                    !sites.is_empty()
                        && sites.iter().all(|&(caller, cnode)| {
                            program.fns[caller].analysis.input[cnode] & WAIT_GUARD != 0
                        })
                });
                if covered {
                    continue; // helper: every call site holds a guard
                }
                let path = pf.analysis.violating_path(tokens, node, WAIT_GUARD);
                out.push(Violation {
                    check: "wait-coverage",
                    category: "unguarded-blocking".into(),
                    file: file.rel_path.clone(),
                    line: tokens[i].line,
                    func: func.clone(),
                    ordinal: 0,
                    message: format!(
                        "blocking call `{}` in `{func}` is not dominated by a live WaitGuard \
                         (directly or at every call site) — time spent here is invisible to \
                         the wait-event/ASH pipeline{path}",
                        tokens[i].text
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 11: swallowed-results.
// ---------------------------------------------------------------------------

fn swallow_scope(file: &SourceFile) -> bool {
    if file.in_tests_dir {
        return false;
    }
    policy::SWALLOW_FILES.iter().any(|f| file.rel_path == *f)
        || file
            .crate_name
            .as_deref()
            .is_some_and(|c| policy::SWALLOW_CRATES.contains(&c))
}

fn check_swallowed_results(files: &[SourceFile], program: &Program) -> Vec<Violation> {
    let mut out = Vec::new();
    for pf in &program.fns {
        let file = &files[pf.file];
        if !swallow_scope(file) {
            continue;
        }
        let func = &pf.def.name;
        if allowed_fn(policy::SWALLOW_ALLOW, &file.rel_path, func) {
            continue;
        }
        let tokens = &file.tokens;
        for (_, lo, hi) in pf.analysis.spans() {
            let hi = hi.min(tokens.len());
            // `let _ = …(…);` — the `_` pattern drops (and silences) the
            // value; with a call in the initializer that is almost always a
            // discarded Result.
            if tseq(tokens, lo, &["let", "_", "="]) {
                let first_call = (lo + 3..hi).find(|&i| tokens[i].text == "(");
                if let Some(c) = first_call {
                    let callee = &tokens[c - 1].text;
                    if !policy::SWALLOW_EXEMPT_CALLEES.contains(&callee.as_str()) {
                        out.push(Violation {
                            check: "swallowed-results",
                            category: "let-underscore".into(),
                            file: file.rel_path.clone(),
                            line: tokens[lo].line,
                            func: func.clone(),
                            ordinal: 0,
                            message: format!(
                                "`let _ = {callee}(…)` in `{func}` discards the call's Result \
                                 — handle the error, count it, or add a policy allowlist \
                                 entry with a rationale"
                            ),
                        });
                    }
                }
            }
            // Statement-level `….ok();` — converts the Result to an Option
            // and immediately drops it.
            let terminated = tokens.get(hi).is_some_and(|t| t.text == ";");
            if terminated
                && hi >= lo + 4
                && tseq(tokens, hi - 4, &[".", "ok", "(", ")"])
                && tokens[lo].text != "let"
            {
                out.push(Violation {
                    check: "swallowed-results",
                    category: "ok-discard".into(),
                    file: file.rel_path.clone(),
                    line: tokens[hi - 4].line,
                    func: func.clone(),
                    ordinal: 0,
                    message: format!(
                        "trailing `.ok();` in `{func}` discards a Result — handle the error, \
                         count it, or add a policy allowlist entry with a rationale"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 12: mvcc-stamp-order.
// ---------------------------------------------------------------------------

fn check_stamp_order(files: &[SourceFile], program: &Program) -> Vec<Violation> {
    let mut out = Vec::new();
    for pf in &program.fns {
        if !in_crates(files, pf.file, policy::WAL_ACK_CRATES) {
            continue;
        }
        let file = &files[pf.file];
        let tokens = &file.tokens;
        for (node, lo, hi) in pf.analysis.spans() {
            for i in stamp_sites(tokens, lo, hi) {
                // Stamping after a possible publish/release: a reader could
                // observe the commit before all its versions are stamped.
                if pf.analysis.may_in[node] & (PUBLISHED | RELEASED) != 0 {
                    out.push(Violation {
                        check: "mvcc-stamp-order",
                        category: "stamp-after-release".into(),
                        file: file.rel_path.clone(),
                        line: tokens[i].line,
                        func: pf.def.name.clone(),
                        ordinal: 0,
                        message: format!(
                            "version stamping in `{}` may follow ticket publish / watermark \
                             release — every version must be stamped before the commit \
                             becomes visible to other sessions",
                            pf.def.name
                        ),
                    });
                } else if pf.analysis.input[node] & TICKET == 0 {
                    let path = pf.analysis.violating_path(tokens, node, TICKET);
                    out.push(Violation {
                        check: "mvcc-stamp-order",
                        category: "stamp-before-reserve".into(),
                        file: file.rel_path.clone(),
                        line: tokens[i].line,
                        func: pf.def.name.clone(),
                        ordinal: 0,
                        message: format!(
                            "version stamping in `{}` is not dominated by a commit-ticket \
                             reservation (start_commit) — stamps would carry an unreserved \
                             commit timestamp{path}",
                            pf.def.name
                        ),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Guarded-index prover (panic-freedom ratchet).
// ---------------------------------------------------------------------------

/// Indexing sites provable panic-free: `(file index, `[` token index)`.
///
/// Two pattern rules, both requiring syntactic dominance (the guard is an
/// ancestor condition / an earlier statement on every path to the site):
///
/// * **R1** — `base[i]` under an enclosing true branch whose condition
///   contains `i < base.len()`.
/// * **R2** — `base[s..e]` where each identifier bound is introduced by a
///   dominating `let` whose initializer clamps with `.min(base.len())`.
pub fn proven_guarded_indexes(files: &[SourceFile], program: &Program) -> HashSet<(usize, usize)> {
    let mut proven = HashSet::new();
    for pf in &program.fns {
        let file = &files[pf.file];
        if !crate::checks::is_hot_path(file) {
            continue;
        }
        let tokens = &file.tokens;
        let mut conds: Vec<(usize, usize)> = Vec::new();
        let mut lets: Vec<(usize, usize)> = Vec::new();
        walk_block(
            &pf.def.body,
            tokens,
            pf.file,
            &mut conds,
            &mut lets,
            &mut proven,
        );
    }
    proven
}

fn walk_block(
    block: &Block,
    tokens: &[Token],
    file_idx: usize,
    conds: &mut Vec<(usize, usize)>,
    lets: &mut Vec<(usize, usize)>,
    proven: &mut HashSet<(usize, usize)>,
) {
    let lets_mark = lets.len();
    for stmt in &block.stmts {
        match stmt {
            Stmt::Simple { lo, hi, .. } | Stmt::LetElse { lo, hi, .. } => {
                prove_sites(tokens, file_idx, *lo, *hi, conds, lets, proven);
                if tokens.get(*lo).is_some_and(|t| t.text == "let") {
                    lets.push((*lo, *hi));
                }
                if let Stmt::LetElse { else_b, .. } = stmt {
                    walk_block(else_b, tokens, file_idx, conds, lets, proven);
                }
            }
            Stmt::Return { lo, hi } | Stmt::Break { lo, hi } | Stmt::Continue { lo, hi } => {
                prove_sites(tokens, file_idx, *lo, *hi, conds, lets, proven);
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                prove_sites(tokens, file_idx, cond.0, cond.1, conds, lets, proven);
                conds.push(*cond);
                walk_block(then_b, tokens, file_idx, conds, lets, proven);
                conds.pop();
                if let Some(e) = else_b {
                    walk_block(e, tokens, file_idx, conds, lets, proven);
                }
            }
            Stmt::Loop {
                head,
                body,
                conditional,
            } => {
                prove_sites(tokens, file_idx, head.0, head.1, conds, lets, proven);
                if *conditional {
                    conds.push(*head);
                }
                walk_block(body, tokens, file_idx, conds, lets, proven);
                if *conditional {
                    conds.pop();
                }
            }
            Stmt::Match { head, arms } => {
                prove_sites(tokens, file_idx, head.0, head.1, conds, lets, proven);
                for arm in arms {
                    walk_block(arm, tokens, file_idx, conds, lets, proven);
                }
            }
            Stmt::Sub { body } => walk_block(body, tokens, file_idx, conds, lets, proven),
        }
    }
    lets.truncate(lets_mark);
}

fn is_lower_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
}

fn prove_sites(
    tokens: &[Token],
    file_idx: usize,
    lo: usize,
    hi: usize,
    conds: &[(usize, usize)],
    lets: &[(usize, usize)],
    proven: &mut HashSet<(usize, usize)>,
) {
    for i in lo..hi.min(tokens.len()) {
        if tokens[i].text != "[" || i == 0 || !is_index_head(&tokens[i - 1].text) {
            continue;
        }
        let base = tokens[i - 1].text.clone();
        // Matching `]`.
        let mut depth = 0i32;
        let mut j = i;
        while j < hi.min(tokens.len()) {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= hi.min(tokens.len()) {
            continue;
        }
        let inner: Vec<&str> = tokens[i + 1..j].iter().map(|t| t.text.as_str()).collect();
        let ok = match inner.as_slice() {
            // R1: `base[idx]` dominated by `idx < base.len()`.
            [idx] if is_lower_ident(idx) => conds.iter().any(|&(clo, chi)| {
                (clo..chi.min(tokens.len())).any(|k| {
                    tseq(tokens, k, &[idx, "<", &base, ".", "len", "(", ")"])
                        || tseq(
                            tokens,
                            k,
                            &[idx, "<", "self", ".", &base, ".", "len", "(", ")"],
                        )
                })
            }),
            // R2: `base[s..e]` / `base[..e]` with clamped bound bindings.
            _ if inner.contains(&".") => {
                let dots = inner.iter().filter(|t| **t == ".").count();
                if dots != 2 {
                    false
                } else {
                    let bounds: Vec<&str> = inner.iter().copied().filter(|t| *t != ".").collect();
                    !bounds.is_empty()
                        && bounds.iter().all(|b| {
                            if !is_lower_ident(b) {
                                return false;
                            }
                            lets.iter().any(|&(llo, lhi)| {
                                let lhi = lhi.min(tokens.len());
                                let declares = tseq(tokens, llo, &["let", b, "="])
                                    || tseq(tokens, llo, &["let", "mut", b, "="]);
                                let clamped = (llo..lhi)
                                    .any(|k| tseq(tokens, k, &[".", "min", "("]))
                                    && (llo..lhi)
                                        .any(|k| tseq(tokens, k, &[&base, ".", "len", "(", ")"]));
                                declares && clamped
                            })
                        })
                }
            }
            _ => false,
        };
        if ok {
            proven.insert((file_idx, i));
        }
    }
}

/// Entry point used by the panic check in flow mode.
pub fn guarded_index_filter(files: &[SourceFile]) -> HashSet<(usize, usize)> {
    let program = Program::build(files);
    proven_guarded_indexes(files, &program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean, tokenize};

    fn fake_file(rel: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::for_tests(rel, krate, src)
    }

    #[test]
    fn prover_discharges_bounds_checked_index() {
        let src = "fn f(widths: &mut [usize], i: usize, s: &str) {\n\
                   if i < widths.len() { widths[i] = widths[i].max(s.len()); }\n\
                   widths[i] = 0;\n}";
        let files = vec![fake_file("crates/storage/src/x.rs", "storage", src)];
        let proven = guarded_index_filter(&files);
        // Both guarded sites prove; the unguarded one on line 3 does not.
        let tokens = tokenize(&clean(src).text);
        let brackets: Vec<usize> = (0..tokens.len())
            .filter(|&i| tokens[i].text == "[" && i > 0 && is_index_head(&tokens[i - 1].text))
            .collect();
        assert_eq!(brackets.len(), 3);
        assert!(proven.contains(&(0, brackets[0])));
        assert!(proven.contains(&(0, brackets[1])));
        assert!(!proven.contains(&(0, brackets[2])));
    }

    #[test]
    fn prover_discharges_clamped_range() {
        let src = "fn f(rows: Vec<R>, offset: usize, limit: Option<usize>) {\n\
                   let start = offset.min(rows.len());\n\
                   let end = match limit { Some(l) => (start + l).min(rows.len()), None => \
                   rows.len() };\n\
                   let _v = rows[start..end].to_vec();\n}";
        let files = vec![fake_file("crates/executor/src/x.rs", "executor", src)];
        let proven = guarded_index_filter(&files);
        assert_eq!(proven.len(), 1);
    }

    #[test]
    fn prover_rejects_unclamped_range() {
        let src = "fn f(rows: Vec<R>, start: usize, end: usize) {\n\
                   let _v = rows[start..end].to_vec();\n}";
        let files = vec![fake_file("crates/executor/src/x.rs", "executor", src)];
        assert!(guarded_index_filter(&files).is_empty());
    }
}
