//! Workspace-wide function index with one-level interprocedural summaries.
//!
//! Every non-test function of every crate `src/` file is parsed and analyzed
//! twice: a first intraprocedural pass computes, per function, the facts it
//! provides on every normal exit; those summaries (keyed by same-crate
//! callee name) are then fed back into a second pass, so a caller of an
//! extracted helper (`self.barrier(txn)?`) sees the helper's guarantees at
//! the call site. One level is deliberate: summaries are computed from the
//! no-summary pass, so helper-of-helper chains do not propagate — deep
//! enough for the engine's commit-path shape, shallow enough to stay cheap
//! and predictable.
//!
//! Name resolution is heuristic (token `name(` within the same crate). Two
//! same-crate functions sharing a name have their summaries intersected,
//! which can only *weaken* what call sites assume — never invent a fact.

use std::collections::HashMap;

use crate::dataflow::{self, Facts, FnAnalysis};
use crate::scan::SourceFile;
use crate::syntax::{self, FnDef};

/// One analyzed function.
pub struct ProgramFn {
    /// Index into the scanned file slice.
    pub file: usize,
    pub def: FnDef,
    pub analysis: FnAnalysis,
}

/// All analyzed functions of the workspace.
pub struct Program {
    pub fns: Vec<ProgramFn>,
    /// fn indices per (crate, name).
    by_name: HashMap<(String, String), Vec<usize>>,
}

impl Program {
    /// Parse and analyze every non-test function of every crate source file.
    pub fn build(files: &[SourceFile]) -> Program {
        let mut parsed: Vec<(usize, FnDef)> = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            if file.crate_name.is_none() || file.in_tests_dir {
                continue;
            }
            for def in syntax::parse_file(&file.tokens) {
                if !def.in_test {
                    parsed.push((fi, def));
                }
            }
        }

        // Pass 1: intraprocedural, to harvest per-crate summaries.
        let empty = HashMap::new();
        let mut crate_summaries: HashMap<String, HashMap<String, Facts>> = HashMap::new();
        for (fi, def) in &parsed {
            let provides = dataflow::analyze(&files[*fi].tokens, def, &empty).provides;
            if provides == 0 {
                continue;
            }
            let krate = files[*fi].crate_name.clone().unwrap_or_default();
            let by_fn = crate_summaries.entry(krate).or_default();
            by_fn
                .entry(def.name.clone())
                .and_modify(|f| *f &= provides)
                .or_insert(provides);
        }

        // Pass 2: with summaries.
        let mut fns = Vec::new();
        let mut by_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for (fi, def) in parsed {
            let krate = files[fi].crate_name.clone().unwrap_or_default();
            let summaries = crate_summaries.get(&krate).unwrap_or(&empty);
            let analysis = dataflow::analyze(&files[fi].tokens, &def, summaries);
            by_name
                .entry((krate, def.name.clone()))
                .or_default()
                .push(fns.len());
            fns.push(ProgramFn {
                file: fi,
                def,
                analysis,
            });
        }
        Program { fns, by_name }
    }

    /// Call sites of `(crate, name)`: `(caller fn index, CFG node)` pairs for
    /// every span invoking the function within the same crate.
    pub fn callsites(&self, files: &[SourceFile], krate: &str, name: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (idx, pf) in self.fns.iter().enumerate() {
            if files[pf.file].crate_name.as_deref() != Some(krate) || pf.def.name == name {
                continue;
            }
            let tokens = &files[pf.file].tokens;
            for (node, lo, hi) in pf.analysis.spans() {
                let called = (lo..hi.min(tokens.len())).any(|i| {
                    tokens[i].text == name
                        && dataflow::tseq(tokens, i + 1, &["("])
                        && !(i > 0 && tokens[i - 1].text == "fn")
                });
                if called {
                    out.push((idx, node));
                }
            }
        }
        // Only meaningful when the name is defined once in the crate;
        // ambiguous names return no call sites (callers cannot vouch).
        let defs = self
            .by_name
            .get(&(krate.to_owned(), name.to_owned()))
            .map_or(0, |v| v.len());
        if defs > 1 {
            return Vec::new();
        }
        out
    }
}
