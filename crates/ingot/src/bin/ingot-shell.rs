#![forbid(unsafe_code)]
//! `ingot-shell` — a minimal interactive SQL shell over an in-memory Ingot
//! engine with integrated monitoring.
//!
//! ```text
//! cargo run -p ingot --bin ingot-shell
//! ingot> create table t (a int);
//! ingot> insert into t values (1), (2);
//! ingot> select * from t;
//! ingot> \monitor      -- summary of what the sensors recorded
//! ingot> \report       -- run the analyzer on the recorded workload
//! ingot> \nref 0.2     -- load a scaled NREF-like demo database
//! ingot> \q
//! ```

use std::io::{BufRead, Write};

use ingot::analyzer::{Analyzer, WorkloadView};
use ingot::executor::exec::format_rows;
use ingot::prelude::*;
use ingot::workload::NrefConfig;

fn main() {
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let session = engine.open_session();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();

    println!("Ingot shell — integrated performance monitoring for autonomous tuning");
    println!("type SQL terminated by ';', or \\help");

    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("ingot> ");
        } else {
            print!("   ... ");
        }
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match run_meta(trimmed, &engine, &session) {
                MetaOutcome::Quit => break,
                MetaOutcome::Continue => continue,
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        for stmt in split_statements(&sql) {
            match session.execute(&stmt) {
                Ok(r) => print_result(&stmt, &r),
                Err(e) => eprintln!("error: {e}"),
            }
        }
    }
}

enum MetaOutcome {
    Quit,
    Continue,
}

fn run_meta(cmd: &str, engine: &std::sync::Arc<Engine>, session: &Session) -> MetaOutcome {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        "\\q" | "\\quit" | "\\exit" => return MetaOutcome::Quit,
        "\\help" | "\\h" => {
            println!("  SQL statements end with ';'");
            println!("  \\monitor        monitor summary (statements, workload, self-time)");
            println!("  \\metrics        dump engine metrics in Prometheus text format");
            println!("  \\trace [on|off] toggle structured statement tracing");
            println!("  \\waits          wait-event totals and ASH sampler status");
            println!("  \\report         analyze the recorded workload and print the report");
            println!("  \\apply          analyze and apply the recommendations");
            println!("  \\nref [scale]   load the NREF-like demo database (default 0.1)");
            println!("  \\q              quit");
        }
        "\\monitor" => match engine.monitor() {
            Some(m) => {
                println!(
                    "statements recorded: {} ({} distinct in buffer)",
                    m.statements_recorded(),
                    m.statements().len()
                );
                println!(
                    "sensor calls: {}, total monitoring time: {:.2} ms",
                    m.sensor_calls(),
                    m.self_time_ns() as f64 / 1e6
                );
                let buf = engine.buffer_stats();
                println!(
                    "buffer: {} hits / {} misses (ratio {:.2})",
                    buf.hits,
                    buf.misses,
                    buf.hit_ratio()
                );
                let locks = engine.locks().stats();
                println!(
                    "locks: {} granted total, {} waits, {} deadlocks",
                    locks.granted_total, locks.waits_total, locks.deadlocks_total
                );
            }
            None => println!("monitoring is disabled on this instance"),
        },
        "\\metrics" => {
            print!("{}", engine.metrics_snapshot().render_prometheus());
        }
        "\\waits" => {
            if engine.wait_registry().is_none() {
                println!("wait events are disabled on this instance");
                return MetaOutcome::Continue;
            }
            match session.execute(
                "select event, count, total_ns from ima$wait_events order by total_ns desc",
            ) {
                Ok(r) => {
                    let names: Vec<String> = ["event", "count", "total_ns"]
                        .iter()
                        .map(|s| (*s).to_owned())
                        .collect();
                    print!("{}", format_rows(&names, &r.rows));
                }
                Err(e) => eprintln!("error: {e}"),
            }
            if let Some(sampler) = engine.ash_sampler() {
                println!(
                    "ash: {} samples taken, {} rows in ring (cap {}), interval {} ms",
                    sampler.samples_taken(),
                    sampler.history().len(),
                    sampler.ring_capacity(),
                    sampler.interval_ns() / 1_000_000
                );
            }
        }
        "\\trace" => match parts.next() {
            Some("on") | None => {
                engine.set_tracing(true);
                println!("tracing enabled (EXPLAIN ANALYZE and ima$operator_stats fill up)");
            }
            Some("off") => {
                engine.set_tracing(false);
                println!("tracing disabled");
            }
            Some(other) => eprintln!("expected on/off, got {other}"),
        },
        "\\report" | "\\apply" => {
            if engine.monitor().is_none() {
                println!("monitoring is disabled on this instance");
                return MetaOutcome::Continue;
            }
            // from_engine = monitor view + wait/ASH profiles, so the
            // wait-profile rules get their evidence too.
            let view = WorkloadView::from_engine(engine);
            let analyzer = Analyzer::default();
            match analyzer.analyze(engine, &view) {
                Ok(report) => {
                    println!("{}", report.render());
                    if cmd.starts_with("\\apply") {
                        match analyzer.apply(session, &report.recommendations) {
                            Ok(executed) => {
                                for sql in executed {
                                    println!("applied: {sql}");
                                }
                            }
                            Err(e) => eprintln!("apply failed: {e}"),
                        }
                    }
                }
                Err(e) => eprintln!("analysis failed: {e}"),
            }
        }
        "\\nref" => {
            let scale: f64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0.1);
            let cfg = NrefConfig::scaled(scale);
            println!("loading NREF-like database ({} proteins)…", cfg.proteins);
            match load_nref(engine, &cfg) {
                Ok(stats) => println!("loaded {} rows across six tables", stats.total()),
                Err(e) => eprintln!("load failed: {e}"),
            }
        }
        other => eprintln!("unknown command {other}; try \\help"),
    }
    MetaOutcome::Continue
}

fn print_result(stmt: &str, r: &StatementResult) {
    if !r.rows.is_empty() {
        let names = if r.columns.is_empty() {
            (0..r.rows[0].len()).map(|i| format!("c{i}")).collect()
        } else {
            r.columns.clone()
        };
        print!("{}", format_rows(&names, &r.rows));
    }
    let verb = stmt.split_whitespace().next().unwrap_or("").to_lowercase();
    println!(
        "({} rows{}; {:.2} ms; est {}, actual {})",
        r.rows.len(),
        if r.affected > 0 {
            format!(", {} affected", r.affected)
        } else {
            String::new()
        },
        r.wallclock_ns as f64 / 1e6,
        r.est_cost,
        r.actual_cost
    );
    let _ = verb;
}

/// Split a buffer on top-level semicolons (quotes respected).
fn split_statements(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in input.chars() {
        match ch {
            '\'' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ';' if !in_str => {
                let stmt = cur.trim().to_owned();
                if !stmt.is_empty() {
                    out.push(stmt);
                }
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    let tail = cur.trim();
    if !tail.is_empty() {
        out.push(tail.to_owned());
    }
    out
}
