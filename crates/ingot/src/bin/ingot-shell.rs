#![forbid(unsafe_code)]
//! `ingot-shell` — a minimal interactive SQL shell speaking the unified
//! [`Connection`] API, so the same loop runs embedded or over the wire.
//!
//! ```text
//! cargo run -p ingot --bin ingot-shell                      # embedded engine
//! cargo run -p ingot --bin ingot-shell -- --connect /tmp/ingot.sock
//! ingot> create table t (a int);
//! ingot> insert into t values (1), (2);
//! ingot> select * from t;
//! ingot> \monitor      -- summary of what the sensors recorded (embedded)
//! ingot> \report       -- run the analyzer on the recorded workload (embedded)
//! ingot> \connections  -- who is on this server (select * from ima$connections)
//! ingot> \q
//! ```
//!
//! SQL always goes through `&dyn Connection`; only the meta commands that
//! need direct engine access (`\monitor`, `\metrics`, `\trace`, `\report`,
//! `\apply`, `\nref`) are embedded-only and say so in remote mode.

use std::io::{BufRead, Write};
use std::process::ExitCode;

use ingot::analyzer::{Analyzer, WorkloadView};
use ingot::client::{connect_or_spawn, ClientConnection, SpawnOptions};
use ingot::executor::exec::format_rows;
use ingot::prelude::*;
use ingot::workload::NrefConfig;

/// What the shell is talking to. SQL runs through [`Connection`] either
/// way; `Embedded` additionally exposes the engine to meta commands.
enum Backend {
    Embedded {
        engine: std::sync::Arc<Engine>,
        session: Session,
    },
    Remote(ClientConnection),
}

impl Backend {
    fn conn(&self) -> &dyn Connection {
        match self {
            Backend::Embedded { session, .. } => session,
            Backend::Remote(c) => c,
        }
    }

    fn engine(&self) -> Option<&std::sync::Arc<Engine>> {
        match self {
            Backend::Embedded { engine, .. } => Some(engine),
            Backend::Remote(_) => None,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: ingot-shell [--connect SOCKET] [--spawn] [--data DIR]");
    eprintln!("  --connect SOCKET  talk to an ingot-server (unix:PATH, tcp:HOST:PORT, or a path)");
    eprintln!("  --spawn           with --connect: auto-spawn a server if none is listening");
    eprintln!("  --data DIR        data directory for a --spawn'ed server");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut connect: Option<String> = None;
    let mut spawn = false;
    let mut data: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next() {
                Some(v) => connect = Some(v),
                None => return usage(),
            },
            "--spawn" => spawn = true,
            "--data" => match args.next() {
                Some(v) => data = Some(v.into()),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => return usage(),
        }
    }

    let backend = match connect {
        None => {
            let engine = Engine::builder()
                .config(EngineConfig::monitoring())
                .build()
                .unwrap();
            let session = engine.open_session();
            Backend::Embedded { engine, session }
        }
        Some(spec_str) => {
            let spec = SocketSpec::parse(&spec_str);
            let conn = if spawn {
                let opts = SpawnOptions {
                    data_dir: data,
                    ..SpawnOptions::default()
                };
                connect_or_spawn(&spec, &opts)
            } else {
                ClientConnection::connect(&spec)
            };
            match conn {
                Ok(c) => Backend::Remote(c),
                Err(e) => {
                    eprintln!("connect to {spec} failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();

    match &backend {
        Backend::Embedded { .. } => {
            println!("Ingot shell — embedded engine with integrated monitoring")
        }
        Backend::Remote(c) => println!("Ingot shell — connected (session {})", c.session_id()),
    }
    println!("type SQL terminated by ';', or \\help");

    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("ingot> ");
        } else {
            print!("   ... ");
        }
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match run_meta(trimmed, &backend) {
                MetaOutcome::Quit => break,
                MetaOutcome::Continue => continue,
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        for stmt in split_statements(&sql) {
            match backend.conn().execute(&stmt) {
                Ok(r) => print_result(&r),
                Err(e) => eprintln!("error: {e}"),
            }
        }
    }
    ExitCode::SUCCESS
}

enum MetaOutcome {
    Quit,
    Continue,
}

/// Run a query through the connection and print it as a table.
fn print_query(backend: &Backend, sql: &str) {
    match backend.conn().query(sql) {
        Ok(r) => {
            let names = if r.columns.is_empty() && !r.rows.is_empty() {
                (0..r.rows[0].len()).map(|i| format!("c{i}")).collect()
            } else {
                r.columns.clone()
            };
            print!("{}", format_rows(&names, &r.rows));
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

fn embedded_only(what: &str) -> MetaOutcome {
    println!("{what} needs an embedded engine; this shell is connected over the wire");
    MetaOutcome::Continue
}

fn run_meta(cmd: &str, backend: &Backend) -> MetaOutcome {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        "\\q" | "\\quit" | "\\exit" => return MetaOutcome::Quit,
        "\\help" | "\\h" => {
            println!("  SQL statements end with ';'");
            println!("  \\connections    sessions on this server (from ima$connections)");
            println!("  \\waits          wait-event totals (and ASH status when embedded)");
            println!("  \\monitor        monitor summary (embedded only)");
            println!("  \\metrics        engine metrics in Prometheus text format (embedded only)");
            println!("  \\trace [on|off] toggle structured statement tracing (embedded only)");
            println!("  \\report         analyze the recorded workload (embedded only)");
            println!("  \\apply          analyze and apply the recommendations (embedded only)");
            println!("  \\nref [scale]   load the NREF-like demo database (embedded only)");
            println!("  \\q              quit");
        }
        "\\connections" => {
            print_query(
                backend,
                "select session, peer, client, state, statement, wait_event, idle_ms, txn_age_ms \
                 from ima$connections order by session",
            );
        }
        "\\waits" => {
            print_query(
                backend,
                "select event, count, total_ns from ima$wait_events order by total_ns desc",
            );
            if let Some(engine) = backend.engine() {
                if let Some(sampler) = engine.ash_sampler() {
                    println!(
                        "ash: {} samples taken, {} rows in ring (cap {}), interval {} ms",
                        sampler.samples_taken(),
                        sampler.history().len(),
                        sampler.ring_capacity(),
                        sampler.interval_ns() / 1_000_000
                    );
                }
            }
        }
        "\\monitor" => {
            let Some(engine) = backend.engine() else {
                return embedded_only("\\monitor");
            };
            match engine.monitor() {
                Some(m) => {
                    println!(
                        "statements recorded: {} ({} distinct in buffer)",
                        m.statements_recorded(),
                        m.statements().len()
                    );
                    println!(
                        "sensor calls: {}, total monitoring time: {:.2} ms",
                        m.sensor_calls(),
                        m.self_time_ns() as f64 / 1e6
                    );
                    let buf = engine.buffer_stats();
                    println!(
                        "buffer: {} hits / {} misses (ratio {:.2})",
                        buf.hits,
                        buf.misses,
                        buf.hit_ratio()
                    );
                    let locks = engine.locks().stats();
                    println!(
                        "locks: {} granted total, {} waits, {} deadlocks",
                        locks.granted_total, locks.waits_total, locks.deadlocks_total
                    );
                }
                None => println!("monitoring is disabled on this instance"),
            }
        }
        "\\metrics" => {
            let Some(engine) = backend.engine() else {
                return embedded_only("\\metrics");
            };
            print!("{}", engine.metrics_snapshot().render_prometheus());
        }
        "\\trace" => {
            let Some(engine) = backend.engine() else {
                return embedded_only("\\trace");
            };
            match parts.next() {
                Some("on") | None => {
                    engine.set_tracing(true);
                    println!("tracing enabled (EXPLAIN ANALYZE and ima$operator_stats fill up)");
                }
                Some("off") => {
                    engine.set_tracing(false);
                    println!("tracing disabled");
                }
                Some(other) => eprintln!("expected on/off, got {other}"),
            }
        }
        "\\report" | "\\apply" => {
            let Backend::Embedded { engine, session } = backend else {
                return embedded_only(cmd);
            };
            if engine.monitor().is_none() {
                println!("monitoring is disabled on this instance");
                return MetaOutcome::Continue;
            }
            // from_engine = monitor view + wait/ASH profiles, so the
            // wait-profile rules get their evidence too.
            let view = WorkloadView::from_engine(engine);
            let analyzer = Analyzer::default();
            match analyzer.analyze(engine, &view) {
                Ok(report) => {
                    println!("{}", report.render());
                    if cmd.starts_with("\\apply") {
                        match analyzer.apply(session, &report.recommendations) {
                            Ok(executed) => {
                                for sql in executed {
                                    println!("applied: {sql}");
                                }
                            }
                            Err(e) => eprintln!("apply failed: {e}"),
                        }
                    }
                }
                Err(e) => eprintln!("analysis failed: {e}"),
            }
        }
        "\\nref" => {
            let Some(engine) = backend.engine() else {
                return embedded_only("\\nref");
            };
            let scale: f64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0.1);
            let cfg = NrefConfig::scaled(scale);
            println!("loading NREF-like database ({} proteins)…", cfg.proteins);
            match load_nref(engine, &cfg) {
                Ok(stats) => println!("loaded {} rows across six tables", stats.total()),
                Err(e) => eprintln!("load failed: {e}"),
            }
        }
        other => eprintln!("unknown command {other}; try \\help"),
    }
    MetaOutcome::Continue
}

fn print_result(r: &StatementResult) {
    if !r.rows.is_empty() {
        let names = if r.columns.is_empty() {
            (0..r.rows[0].len()).map(|i| format!("c{i}")).collect()
        } else {
            r.columns.clone()
        };
        print!("{}", format_rows(&names, &r.rows));
    }
    println!(
        "({} rows{}; {:.2} ms; est {}, actual {})",
        r.rows.len(),
        if r.affected > 0 {
            format!(", {} affected", r.affected)
        } else {
            String::new()
        },
        r.wallclock_ns as f64 / 1e6,
        r.est_cost,
        r.actual_cost
    );
}

/// Split a buffer on top-level semicolons (quotes respected).
fn split_statements(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in input.chars() {
        match ch {
            '\'' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ';' if !in_str => {
                let stmt = cur.trim().to_owned();
                if !stmt.is_empty() {
                    out.push(stmt);
                }
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    let tail = cur.trim();
    if !tail.is_empty() {
        out.push(tail.to_owned());
    }
    out
}
