#![forbid(unsafe_code)]
//! # Ingot — integrated performance monitoring for autonomous tuning
//!
//! Umbrella crate re-exporting the whole system: a from-scratch relational
//! engine (storage, catalog, SQL, optimizer, executor, locking) whose core
//! carries the integrated monitoring of Thiem & Sattler's ICDE 2009 paper,
//! plus the storage daemon, the analyzer, and the NREF-like evaluation
//! workload.
//!
//! ```
//! use ingot::prelude::*;
//!
//! let engine = Engine::builder().config(EngineConfig::monitoring()).build().unwrap();
//! let session = engine.open_session();
//! session.execute("create table t (id int not null primary key, v int)").unwrap();
//! session.execute("insert into t values (1, 10), (2, 20)").unwrap();
//! let r = session.execute("select v from t where id = 2").unwrap();
//! assert_eq!(r.rows[0].get(0).as_int(), Some(20));
//! // Every statement was recorded by the integrated monitor:
//! let recorded = session.execute("select count(*) from ima$workload").unwrap();
//! assert!(recorded.rows[0].get(0).as_int().unwrap() >= 3);
//! ```

pub use ingot_analyzer as analyzer;
pub use ingot_catalog as catalog;
pub use ingot_client as client;
pub use ingot_common as common;
pub use ingot_core as core;
pub use ingot_daemon as daemon;
pub use ingot_executor as executor;
pub use ingot_planner as planner;
pub use ingot_server as server;
pub use ingot_sql as sql;
pub use ingot_storage as storage;
pub use ingot_trace as trace;
pub use ingot_txn as txn;
pub use ingot_workload as workload;

/// The types most applications need.
pub mod prelude {
    pub use ingot_analyzer::{Analyzer, AnalyzerConfig, Recommendation, WorkloadView};
    pub use ingot_client::{connect_or_spawn, ClientConnection, SpawnOptions};
    pub use ingot_common::{
        Connection, Cost, EngineConfig, Error, PreparedStatement, Result, RetryPolicy, Row,
        SimClock, SocketSpec, Value,
    };
    pub use ingot_core::{
        Engine, EngineBuilder, MetricsSnapshot, Monitor, PlanCacheStats, Prepared, Session,
        StatementResult, Tracer,
    };
    pub use ingot_daemon::{
        Alert, AlertRule, DaemonConfig, DaemonHealth, HealthState, StorageDaemon, WorkloadDb,
    };
    pub use ingot_server::{Server, ServerConfig};
    pub use ingot_storage::{FaultInjectingBackend, FaultPlan, MemoryBackend, RecoveryReport};
    pub use ingot_workload::{analytic_queries, load_nref, NrefConfig};
}
