//! Property-based tests of the daemon's append/retention invariants.

use std::sync::Arc;

use ingot_common::EngineConfig;
use ingot_core::Engine;
use ingot_daemon::{DaemonConfig, StorageDaemon, WorkloadDb};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// However polls interleave with statements, the workload DB ends up
    /// with exactly one row per execution — no losses, no duplicates
    /// (within ring capacity).
    #[test]
    fn polls_never_lose_or_duplicate_executions(
        batches in prop::collection::vec(1u64..20, 1..8),
    ) {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring().with_statement_capacity(4096))
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
        let daemon = StorageDaemon::new(
            Arc::clone(&engine),
            Arc::clone(&wldb),
            DaemonConfig::default(),
        );
        daemon.poll_once().unwrap();
        let mut executed = 1u64; // the create table
        for (bi, batch) in batches.iter().enumerate() {
            for i in 0..*batch {
                s.execute(&format!("insert into t values ({})", bi as u64 * 1000 + i))
                    .unwrap();
                executed += 1;
            }
            daemon.poll_once().unwrap();
        }
        prop_assert_eq!(wldb.row_count("wl_workload").unwrap(), executed);
        // Statement frequencies in the latest snapshots sum to the total.
        let rows = wldb
            .query(
                "select hash, max(frequency) from wl_statements group by hash",
            )
            .unwrap();
        let total: i64 = rows.iter().map(|r| r.get(1).as_int().unwrap()).sum();
        prop_assert_eq!(total as u64, executed);
    }

    /// Retention never deletes rows inside the window and always deletes
    /// rows outside it (when a purge actually runs).
    #[test]
    fn retention_window_is_exact(
        gaps in prop::collection::vec(1u64..3 * 24 * 3600, 2..6),
    ) {
        let engine = Engine::builder().config(EngineConfig::monitoring()).build().unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
        let retention = 4 * 24 * 3600u64;
        let daemon = StorageDaemon::new(
            Arc::clone(&engine),
            Arc::clone(&wldb),
            DaemonConfig {
                retention_secs: retention,
                ..Default::default()
            },
        );
        for (i, gap) in gaps.iter().enumerate() {
            s.execute(&format!("insert into t values ({i})")).unwrap();
            daemon.poll_once().unwrap();
            engine.sim_clock().advance_secs(*gap);
        }
        // Final purge pass: step past the purge cadence (≥1 simulated hour
        // since the last purge) so the pass definitely runs.
        engine.sim_clock().advance_secs(2 * 3600);
        daemon.poll_once().unwrap();
        let now = engine.sim_clock().now_secs();
        let cutoff = now.saturating_sub(retention) as i64;
        let rows = wldb.query("select ts from wl_workload").unwrap();
        for r in &rows {
            prop_assert!(r.get(0).as_int().unwrap() >= cutoff);
        }
    }
}
