//! The workload database: persistent, timestamped copies of the IMA data.
//!
//! "The workload database is a native Ingres database that contains the same
//! table schema as the one used in IMA. Updates on tables are appended and
//! provided with a timestamp to allow trend analysis over a longer timespan.
//! … Because the workload DB is in fact a user database, handling the
//! collected data is most simple and can be done with standard SQL."

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ingot_common::{EngineConfig, Error, Result, Row, SimClock, StmtHash, Value};
use ingot_core::{Engine, Monitor, Session};
use parking_lot::Mutex;

use crate::growth::GrowthStats;

/// DDL creating the workload-DB schema (Fig 3 + `ts` snapshot columns).
const SCHEMA: &str = "
create table wl_statements (hash text not null, query_text text, frequency int,
    first_seen_ns int, last_seen_ns int, ts int);
create table wl_workload (hash text not null, seq int, opt_cpu_ns int, opt_dio int,
    exec_cpu int, exec_dio int, est_cpu float, est_dio float, wallclock_ns int,
    monitor_ns int, at_ns int, at_secs int, ts int);
create table wl_references (hash text not null, object_type text, object_id int,
    table_id int, ts int);
create table wl_tables (table_id int not null, table_name text, frequency int,
    storage text, data_pages int, overflow_pages int, row_count int, ts int);
create table wl_indexes (index_id int not null, index_name text, table_id int,
    frequency int, pages int, ts int);
create table wl_attributes (table_id int not null, attr_id int, attr_name text,
    frequency int, has_histogram bool, ts int);
create table wl_statistics (at_ns int not null, at_secs int, sessions int,
    max_sessions int, locks_held int, lock_waiting int, lock_waits_total int,
    deadlocks_total int, active_txns int, cache_hits int, cache_misses int,
    physical_reads int, physical_writes int, statements_executed int, ts int);
create table wl_metrics (name text not null, labels text, value float, ts int);
create table wl_waits (event text not null, count int, total_ns int, ts int);
create table wl_ash (at_ns int not null, session int, hash text, statement text,
    elapsed_ns int, event text, ts int);
";

/// All workload-DB table names.
pub const WL_TABLES: &[&str] = &[
    "wl_statements",
    "wl_workload",
    "wl_references",
    "wl_tables",
    "wl_indexes",
    "wl_attributes",
    "wl_statistics",
    "wl_metrics",
    "wl_waits",
    "wl_ash",
];

/// Append cursor: what has already been copied out of the monitor.
///
/// Each poll's batch runs inside one workload-DB transaction, so it is
/// all-or-nothing: a mid-batch failure (I/O fault, crash) rolls the rows
/// back, the cursors stay unpublished, and the daemon's retry re-enters
/// [`WorkloadDb::append_from`] to append the whole batch again — no
/// duplicates, no gaps. (The pre-WAL positional mid-batch cursor is gone:
/// transactional rollback plus log replay made it redundant.)
#[derive(Clone, Default)]
struct AppendState {
    last_workload_seq: Option<u64>,
    /// Last appended frequency per statement hash.
    stmt_freq: HashMap<StmtHash, u64>,
    refs_seen: HashSet<(StmtHash, &'static str, u64)>,
    last_stat_ns: u64,
    /// Newest ASH sample timestamp already copied into `wl_ash`.
    last_ash_ns: u64,
    /// Cumulative wait nanoseconds at the last `wl_waits` snapshot — polls
    /// where nothing waited append nothing.
    last_wait_ns: u64,
}

/// The workload database. Wraps a dedicated (non-monitored) engine instance.
pub struct WorkloadDb {
    engine: Arc<Engine>,
    state: Mutex<AppendState>,
    growth: GrowthStats,
}

impl WorkloadDb {
    /// In-memory workload DB (unit tests, simulation-only experiments).
    pub fn in_memory(clock: SimClock) -> Result<Self> {
        let engine = Engine::builder()
            .config(Self::db_config())
            .clock(clock)
            .build()?;
        Self::init(engine)
    }

    /// File-backed workload DB under `dir` — the production shape: daemon
    /// appends are real disk writes.
    pub fn file_backed(dir: impl Into<std::path::PathBuf>, clock: SimClock) -> Result<Self> {
        let engine = Engine::builder()
            .config(Self::db_config())
            .clock(clock)
            .path(dir)
            .build()?;
        Self::init(engine)
    }

    /// Workload DB over an arbitrary disk backend — how the fault-injection
    /// tests wrap the store in an `ingot_storage::FaultInjectingBackend`.
    pub fn with_backend(
        backend: Box<dyn ingot_storage::DiskBackend>,
        clock: SimClock,
    ) -> Result<Self> {
        let engine = Engine::builder()
            .config(Self::db_config())
            .clock(clock)
            .backend(backend)
            .build()?;
        Self::init(engine)
    }

    /// Workload DB inside a caller-built engine (custom configs: tiny
    /// buffer pools, single-page heap extents). The engine should not be
    /// monitored — the workload DB is the *store*, not a workload source.
    pub fn with_engine(engine: Arc<Engine>) -> Result<Self> {
        Self::init(engine)
    }

    /// The engine configuration the standard constructors use.
    pub fn default_config() -> EngineConfig {
        Self::db_config()
    }

    /// Inspect and repair a file-backed workload DB directory after a
    /// crash: pages past the last durable checkpoint whose checksums do not
    /// match (torn writes) are truncated away, and partial trailing pages
    /// are dropped. [`WorkloadDb::file_backed`] already runs this (plus WAL
    /// replay of committed appends) when it reopens a directory; calling it
    /// directly is useful for inspecting the page-level damage report.
    pub fn recover(dir: impl AsRef<std::path::Path>) -> Result<ingot_storage::RecoveryReport> {
        ingot_storage::recover(dir.as_ref())
    }

    fn db_config() -> EngineConfig {
        // The workload DB is not itself monitored, and it gets a modest
        // cache so appends spill to the backend regularly.
        EngineConfig {
            monitor_enabled: false,
            buffer_pool_pages: 256,
            heap_main_pages: 4,
            ..EngineConfig::default()
        }
    }

    fn init(engine: Arc<Engine>) -> Result<Self> {
        {
            // After a crash the schema may already be back: the checkpoint
            // manifest carries it and WAL replay redoes any later DDL. Only
            // the tables still missing are created. SCHEMA lists one CREATE
            // per entry of WL_TABLES, in the same order.
            let stmts: Vec<&str> = SCHEMA
                .split(';')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            debug_assert_eq!(stmts.len(), WL_TABLES.len());
            let session = engine.open_session();
            for (table, stmt) in WL_TABLES.iter().zip(&stmts) {
                if engine.catalog().read().resolve_table(table).is_err() {
                    session.execute(stmt)?;
                }
            }
        }
        Ok(WorkloadDb {
            engine,
            state: Mutex::new(AppendState::default()),
            growth: GrowthStats::default(),
        })
    }

    /// The engine holding the workload DB (SQL access for analyzers:
    /// `wldb.session().execute("select … from wl_workload …")`).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Open a SQL session on the workload DB.
    pub fn session(&self) -> Session {
        self.engine.open_session()
    }

    /// Growth accounting (reproduces the §V-A "28 MB per hour" analysis).
    pub fn growth(&self) -> &GrowthStats {
        &self.growth
    }

    /// One row into `table` through the engine's locked, WAL-observed insert
    /// path ([`Session::insert_direct`]) — every append is redo-logged like
    /// any other DML. Returns the row's byte size for growth accounting.
    fn insert(&self, session: &Session, table: &str, row: Row) -> Result<u64> {
        let bytes = row.byte_size() as u64;
        session.insert_direct(table, &row)?;
        Ok(bytes)
    }

    /// Copy everything new in `monitor` into the workload DB, stamping rows
    /// with `now_secs` (simulated seconds). The whole batch runs in one
    /// transaction: all rows ride a single WAL durability barrier at commit,
    /// and a failure anywhere rolls the batch back so the daemon's retry
    /// appends it in full.
    pub fn append_from(&self, monitor: &Monitor, now_secs: u64) -> Result<()> {
        let mut state = self.state.lock();
        // Cursors advance on a scratch copy and publish only after the
        // transaction commits: an aborted batch must be retried in full.
        let mut scratch = state.clone();
        let session = self.engine.open_session();
        session.begin()?;
        let appended = self
            .append_batch(&session, monitor, now_secs, &mut scratch)
            .and_then(|totals| session.commit().map(|()| totals));
        // On error the session drops with its transaction open, which aborts
        // it (a failed commit already rolled back); `state` stays unchanged.
        let (rows, bytes) = appended?;
        *state = scratch;
        self.growth
            .record_append(rows, bytes, self.engine.sim_clock().now_secs());
        Ok(())
    }

    fn append_batch(
        &self,
        session: &Session,
        monitor: &Monitor,
        now_secs: u64,
        state: &mut AppendState,
    ) -> Result<(u64, u64)> {
        let ts = Value::Int(now_secs as i64);
        let mut rows = 0u64;
        let mut bytes = 0u64;

        // Statements whose frequency changed since the last poll.
        for s in monitor.statements() {
            let prev = state.stmt_freq.get(&s.hash).copied().unwrap_or(0);
            if s.frequency != prev {
                let n = self.insert(
                    session,
                    "wl_statements",
                    Row::new(vec![
                        Value::Str(s.hash.to_string()),
                        Value::Str(s.text.clone()),
                        Value::Int(s.frequency as i64),
                        Value::Int(s.first_seen_ns as i64),
                        Value::Int(s.last_seen_ns as i64),
                        ts.clone(),
                    ]),
                )?;
                bytes += n;
                rows += 1;
                state.stmt_freq.insert(s.hash, s.frequency);
            }
        }

        // Workload executions beyond the last copied sequence number.
        for w in monitor.workload() {
            if state.last_workload_seq.is_some_and(|last| w.seq <= last) {
                continue;
            }
            bytes += self.insert(
                session,
                "wl_workload",
                Row::new(vec![
                    Value::Str(w.hash.to_string()),
                    Value::Int(w.seq as i64),
                    Value::Int(w.opt_time_ns as i64),
                    Value::Int(w.opt_io as i64),
                    Value::Int(w.exec_cpu as i64),
                    Value::Int(w.exec_io as i64),
                    Value::Float(w.est.cpu),
                    Value::Float(w.est.io),
                    Value::Int(w.wallclock_ns as i64),
                    Value::Int(w.monitor_ns as i64),
                    Value::Int(w.at_ns as i64),
                    Value::Int(w.at_sim_secs as i64),
                    ts.clone(),
                ]),
            )?;
            rows += 1;
            state.last_workload_seq = Some(w.seq);
        }

        // New object references.
        for r in monitor.references() {
            let key = (r.hash, r.object.tag(), r.object_id);
            if state.refs_seen.contains(&key) {
                continue;
            }
            bytes += self.insert(
                session,
                "wl_references",
                Row::new(vec![
                    Value::Str(r.hash.to_string()),
                    Value::Str(r.object.tag().to_owned()),
                    Value::Int(r.object_id as i64),
                    Value::Int(i64::from(r.table.raw())),
                    ts.clone(),
                ]),
            )?;
            rows += 1;
            state.refs_seen.insert(key);
        }

        // Object-usage snapshots: appended every poll for trend analysis.
        // No cursor needed — the enclosing transaction makes the snapshot
        // all-or-nothing, so a faulted batch leaves no partial snapshot for
        // the retry to complete.
        for t in monitor.tables() {
            bytes += self.insert(
                session,
                "wl_tables",
                Row::new(vec![
                    Value::Int(i64::from(t.id.raw())),
                    Value::Str(t.name.clone()),
                    Value::Int(t.frequency as i64),
                    Value::Str(t.storage.clone()),
                    Value::Int(t.data_pages as i64),
                    Value::Int(t.overflow_pages as i64),
                    Value::Int(t.rows as i64),
                    ts.clone(),
                ]),
            )?;
            rows += 1;
        }
        for i in monitor.indexes() {
            bytes += self.insert(
                session,
                "wl_indexes",
                Row::new(vec![
                    Value::Int(i64::from(i.id.raw())),
                    Value::Str(i.name.clone()),
                    Value::Int(i64::from(i.table.raw())),
                    Value::Int(i.frequency as i64),
                    Value::Int(i.pages as i64),
                    ts.clone(),
                ]),
            )?;
            rows += 1;
        }
        for a in monitor.attributes() {
            bytes += self.insert(
                session,
                "wl_attributes",
                Row::new(vec![
                    Value::Int(i64::from(a.table.raw())),
                    Value::Int(a.column as i64),
                    Value::Str(a.name.clone()),
                    Value::Int(a.frequency as i64),
                    Value::Bool(a.has_histogram),
                    ts.clone(),
                ]),
            )?;
            rows += 1;
        }

        // New statistics samples.
        for s in monitor.statistics() {
            if s.at_ns <= state.last_stat_ns {
                continue;
            }
            bytes += self.insert(
                session,
                "wl_statistics",
                Row::new(vec![
                    Value::Int(s.at_ns as i64),
                    Value::Int(s.at_sim_secs as i64),
                    Value::Int(s.sessions as i64),
                    Value::Int(s.max_sessions as i64),
                    Value::Int(s.locks_held as i64),
                    Value::Int(s.lock_waiting as i64),
                    Value::Int(s.lock_waits_total as i64),
                    Value::Int(s.deadlocks_total as i64),
                    Value::Int(s.active_txns as i64),
                    Value::Int(s.cache_hits as i64),
                    Value::Int(s.cache_misses as i64),
                    Value::Int(s.physical_reads as i64),
                    Value::Int(s.physical_writes as i64),
                    Value::Int(s.statements_executed as i64),
                    ts.clone(),
                ]),
            )?;
            rows += 1;
            state.last_stat_ns = s.at_ns;
        }

        Ok((rows, bytes))
    }

    /// Append a flattened [`MetricsSnapshot`] — every sample becomes one
    /// `wl_metrics` row, so engine-level time series (buffer hit rates,
    /// latency histogram buckets, …) are queryable alongside the Fig 3
    /// workload tables.
    ///
    /// [`MetricsSnapshot`]: ingot_core::MetricsSnapshot
    pub fn append_metrics(
        &self,
        snapshot: &ingot_core::MetricsSnapshot,
        now_secs: u64,
    ) -> Result<()> {
        let ts = Value::Int(now_secs as i64);
        let session = self.engine.open_session();
        session.begin()?;
        let mut rows = 0u64;
        let mut bytes = 0u64;
        for (name, labels, value) in snapshot.flatten() {
            bytes += self.insert(
                &session,
                "wl_metrics",
                Row::new(vec![
                    Value::Str(name),
                    Value::Str(labels),
                    Value::Float(value),
                    ts.clone(),
                ]),
            )?;
            rows += 1;
        }
        session.commit()?;
        self.growth
            .record_append(rows, bytes, self.engine.sim_clock().now_secs());
        Ok(())
    }

    /// Roll the monitored engine's wait-event counters and new ASH samples
    /// into `wl_waits` / `wl_ash`, stamped with `now_secs`. Like
    /// [`WorkloadDb::append_from`], the batch is one transaction and the ASH
    /// cursor publishes only after commit, so a faulted poll re-appends the
    /// same samples without duplicates. A no-op when the engine's wait
    /// subsystem is off.
    pub fn append_waits(&self, source: &Engine, now_secs: u64) -> Result<()> {
        let (Some(registry), Some(sampler)) = (source.wait_registry(), source.ash_sampler()) else {
            return Ok(());
        };
        let mut state = self.state.lock();
        // Idle fast path: nothing charged and nothing recorded since the
        // last poll means no transaction at all — an idle engine's polls
        // read one counter snapshot and one ring high-water mark.
        let grand_total: u64 = registry
            .counters()
            .snapshot()
            .iter()
            .map(|t| t.total_ns)
            .sum();
        if grand_total <= state.last_wait_ns && sampler.latest_recorded_ns() <= state.last_ash_ns {
            return Ok(());
        }
        let mut scratch = state.clone();
        let ts = Value::Int(now_secs as i64);
        let session = self.engine.open_session();
        session.begin()?;
        let appended = (|| {
            let mut rows = 0u64;
            let mut bytes = 0u64;
            // Cumulative per-event totals, snapshot-style like wl_tables —
            // but only when some wait has been charged since the last poll,
            // so an idle interval appends nothing.
            let totals = registry.counters().snapshot();
            let grand_total: u64 = totals.iter().map(|t| t.total_ns).sum();
            if grand_total > scratch.last_wait_ns {
                for t in totals.iter().filter(|t| t.count > 0) {
                    bytes += self.insert(
                        &session,
                        "wl_waits",
                        Row::new(vec![
                            Value::Str(t.event.name().to_owned()),
                            Value::Int(t.count as i64),
                            Value::Int(t.total_ns as i64),
                            ts.clone(),
                        ]),
                    )?;
                    rows += 1;
                }
                scratch.last_wait_ns = grand_total;
            }
            // ASH samples newer than the cursor. Every session row from one
            // sampler tick carries the same `at_ns`, so the cutoff must be
            // snapshotted before the loop and the cursor advanced only after
            // it — bumping the cursor row-by-row would drop all but the
            // first session of each tick.
            let cutoff = scratch.last_ash_ns;
            for sample in sampler.history() {
                if sample.at_ns <= cutoff {
                    continue;
                }
                bytes += self.insert(
                    &session,
                    "wl_ash",
                    Row::new(vec![
                        Value::Int(sample.at_ns as i64),
                        Value::Int(sample.session_id as i64),
                        Value::Str(sample.hash.to_string()),
                        Value::Str(sample.template.clone()),
                        Value::Int(sample.elapsed_ns as i64),
                        Value::Str(sample.event.to_owned()),
                        ts.clone(),
                    ]),
                )?;
                rows += 1;
                scratch.last_ash_ns = scratch.last_ash_ns.max(sample.at_ns);
            }
            Ok((rows, bytes))
        })()
        .and_then(|totals| session.commit().map(|()| totals));
        let (rows, bytes) = appended?;
        *state = scratch;
        self.growth
            .record_append(rows, bytes, self.engine.sim_clock().now_secs());
        Ok(())
    }

    /// Delete rows older than `cutoff_secs` from every workload table (the
    /// retention window; paper default seven days).
    pub fn purge_older_than(&self, cutoff_secs: u64) -> Result<()> {
        if cutoff_secs == 0 {
            return Ok(());
        }
        let session = self.session();
        for table in WL_TABLES {
            session.execute(&format!("delete from {table} where ts < {cutoff_secs}"))?;
        }
        Ok(())
    }

    /// Row count of one workload table.
    pub fn row_count(&self, table: &str) -> Result<u64> {
        let session = self.session();
        let r = session.execute(&format!("select count(*) from {table}"))?;
        r.rows[0]
            .get(0)
            .as_int()
            .map(|n| n as u64)
            .ok_or_else(|| Error::daemon("count(*) returned non-integer"))
    }

    /// Run a query against the workload DB and return its rows.
    pub fn query(&self, sql: &str) -> Result<Vec<Row>> {
        Ok(self.session().execute(sql)?.rows)
    }

    /// Durably checkpoint the workload DB — fsync of every data file plus
    /// the recovery manifest (page checksums + epoch + schema snapshot) and
    /// WAL truncation to the new cut. Committed appends are already durable
    /// the moment [`WorkloadDb::append_from`] returns (the WAL barrier);
    /// this bounds the log's length and replay time.
    pub fn flush(&self) -> Result<()> {
        self.engine.checkpoint().map(|_| ())
    }

    /// Total pages of the workload DB (its on-disk size).
    pub fn total_pages(&self) -> u64 {
        self.engine.total_data_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::EngineConfig;

    #[test]
    fn schema_is_created() {
        let db = WorkloadDb::in_memory(SimClock::new()).unwrap();
        for t in WL_TABLES {
            assert_eq!(db.row_count(t).unwrap(), 0, "{t}");
        }
    }

    #[test]
    fn append_is_incremental() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        s.execute("insert into t values (1)").unwrap();
        let db = WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap();
        db.append_from(engine.monitor().unwrap(), 100).unwrap();
        assert_eq!(db.row_count("wl_workload").unwrap(), 2);
        // Same statement again: one new workload row, statement frequency row.
        s.execute("insert into t values (1)").unwrap();
        db.append_from(engine.monitor().unwrap(), 130).unwrap();
        assert_eq!(db.row_count("wl_workload").unwrap(), 3);
        let rows = db
            .query("select frequency from wl_statements where query_text like 'insert%' order by ts desc limit 1")
            .unwrap();
        assert_eq!(rows[0].get(0), &Value::Int(2));
    }

    #[test]
    fn append_waits_is_cursor_gated() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let registry = engine.wait_registry().unwrap();
        let sampler = engine.ash_sampler().unwrap();
        registry.charge(ingot_common::WaitEvent::LockWaitX, 1_000);
        let slot = sampler.register_session(99);
        slot.begin_statement(StmtHash::of("select 1"), "select 1".into(), 0);
        sampler.sample_now(10);
        let db = WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap();
        db.append_waits(&engine, 100).unwrap();
        assert_eq!(db.row_count("wl_waits").unwrap(), 1);
        assert_eq!(db.row_count("wl_ash").unwrap(), 1);
        // Nothing new since: the cursors keep the next poll a no-op.
        db.append_waits(&engine, 130).unwrap();
        assert_eq!(db.row_count("wl_waits").unwrap(), 1);
        assert_eq!(db.row_count("wl_ash").unwrap(), 1);
        // Fresh waits and samples append again (cumulative snapshot rows).
        registry.charge(ingot_common::WaitEvent::WalFsync, 2_000);
        sampler.sample_now(20);
        db.append_waits(&engine, 160).unwrap();
        assert_eq!(db.row_count("wl_waits").unwrap(), 3);
        assert_eq!(db.row_count("wl_ash").unwrap(), 2);
        let rows = db
            .query("select total_ns from wl_waits where event = 'LockWaitX' order by ts limit 1")
            .unwrap();
        assert_eq!(rows[0].get(0), &Value::Int(1_000));
    }

    #[test]
    fn append_waits_keeps_every_session_of_one_tick() {
        // All rows of one sampler tick share the same at_ns; the rollup
        // cursor must not drop the tick's remaining sessions after copying
        // the first (regression: cursor advanced inside the copy loop).
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let sampler = engine.ash_sampler().unwrap();
        let slots: Vec<_> = (1..=3)
            .map(|id| {
                let slot = sampler.register_session(id);
                slot.begin_statement(StmtHash::of("select 1"), "select 1".into(), 0);
                slot
            })
            .collect();
        sampler.sample_now(10);
        let db = WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap();
        db.append_waits(&engine, 100).unwrap();
        assert_eq!(db.row_count("wl_ash").unwrap(), 3);
        let sessions: std::collections::BTreeSet<i64> = db
            .query("select session from wl_ash")
            .unwrap()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        assert_eq!(sessions.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        // The cursor still gates the next poll: same tick, nothing new.
        db.append_waits(&engine, 130).unwrap();
        assert_eq!(db.row_count("wl_ash").unwrap(), 3);
        // A later tick appends all its sessions again.
        sampler.sample_now(20);
        db.append_waits(&engine, 160).unwrap();
        assert_eq!(db.row_count("wl_ash").unwrap(), 6);
        drop(slots);
    }

    #[test]
    fn purge_respects_cutoff() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        let db = WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap();
        db.append_from(engine.monitor().unwrap(), 100).unwrap();
        s.execute("insert into t values (1)").unwrap();
        db.append_from(engine.monitor().unwrap(), 900).unwrap();
        db.purge_older_than(500).unwrap();
        let rows = db.query("select ts from wl_workload").unwrap();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.get(0).as_int().unwrap() >= 500));
    }

    #[test]
    fn growth_accounting_tracks_bytes() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        for i in 0..50 {
            s.execute(&format!("insert into t values ({i})")).unwrap();
        }
        let db = WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap();
        db.append_from(engine.monitor().unwrap(), 0).unwrap();
        let g = db.growth();
        assert!(g.rows_appended() > 50);
        assert!(g.bytes_appended() > 1000);
    }

    #[test]
    fn file_backed_db_writes_real_files() {
        let dir = std::env::temp_dir().join(format!("ingot-wldb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let engine = Engine::builder()
                .config(EngineConfig::monitoring())
                .build()
                .unwrap();
            let s = engine.open_session();
            s.execute("create table t (a int)").unwrap();
            let db = WorkloadDb::file_backed(&dir, engine.sim_clock().clone()).unwrap();
            db.append_from(engine.monitor().unwrap(), 0).unwrap();
            db.flush().unwrap();
        }
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(!files.is_empty(), "expected data files in {dir:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
