//! The workload database: persistent, timestamped copies of the IMA data.
//!
//! "The workload database is a native Ingres database that contains the same
//! table schema as the one used in IMA. Updates on tables are appended and
//! provided with a timestamp to allow trend analysis over a longer timespan.
//! … Because the workload DB is in fact a user database, handling the
//! collected data is most simple and can be done with standard SQL."

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ingot_common::{EngineConfig, Error, Result, Row, SimClock, StmtHash, Value};
use ingot_core::{Engine, Monitor, Session};
use parking_lot::Mutex;

use crate::growth::GrowthStats;

/// DDL creating the workload-DB schema (Fig 3 + `ts` snapshot columns).
const SCHEMA: &str = "
create table wl_statements (hash text not null, query_text text, frequency int,
    first_seen_ns int, last_seen_ns int, ts int);
create table wl_workload (hash text not null, seq int, opt_cpu_ns int, opt_dio int,
    exec_cpu int, exec_dio int, est_cpu float, est_dio float, wallclock_ns int,
    monitor_ns int, at_ns int, at_secs int, ts int);
create table wl_references (hash text not null, object_type text, object_id int,
    table_id int, ts int);
create table wl_tables (table_id int not null, table_name text, frequency int,
    storage text, data_pages int, overflow_pages int, row_count int, ts int);
create table wl_indexes (index_id int not null, index_name text, table_id int,
    frequency int, pages int, ts int);
create table wl_attributes (table_id int not null, attr_id int, attr_name text,
    frequency int, has_histogram bool, ts int);
create table wl_statistics (at_ns int not null, at_secs int, sessions int,
    max_sessions int, locks_held int, lock_waiting int, lock_waits_total int,
    deadlocks_total int, active_txns int, cache_hits int, cache_misses int,
    physical_reads int, physical_writes int, statements_executed int, ts int);
create table wl_metrics (name text not null, labels text, value float, ts int);
";

/// All workload-DB table names.
pub const WL_TABLES: &[&str] = &[
    "wl_statements",
    "wl_workload",
    "wl_references",
    "wl_tables",
    "wl_indexes",
    "wl_attributes",
    "wl_statistics",
    "wl_metrics",
];

/// Append cursor: what has already been copied out of the monitor.
///
/// Every cursor advances only *after* the corresponding insert succeeds, so
/// a mid-batch failure (I/O fault, crash of the workload DB) never skips
/// rows: the daemon's retry re-enters [`WorkloadDb::append_from`] and picks
/// up exactly where the failed batch stopped.
#[derive(Default)]
struct AppendState {
    last_workload_seq: Option<u64>,
    /// Last appended frequency per statement hash.
    stmt_freq: HashMap<StmtHash, u64>,
    refs_seen: HashSet<(StmtHash, &'static str, u64)>,
    last_stat_ns: u64,
    /// Mid-batch progress through the object-snapshot section (tables,
    /// indexes, attributes — appended unconditionally each poll): the
    /// timestamp being appended and how many snapshot rows already landed.
    /// Present only while an `append_from` for that timestamp failed
    /// partway; cleared when the batch completes so the next poll appends
    /// a full snapshot again.
    objects_done: Option<(u64, usize)>,
}

/// The workload database. Wraps a dedicated (non-monitored) engine instance.
pub struct WorkloadDb {
    engine: Arc<Engine>,
    state: Mutex<AppendState>,
    growth: GrowthStats,
}

impl WorkloadDb {
    /// In-memory workload DB (unit tests, simulation-only experiments).
    pub fn in_memory(clock: SimClock) -> Result<Self> {
        let engine = Engine::builder()
            .config(Self::db_config())
            .clock(clock)
            .build()?;
        Self::init(engine)
    }

    /// File-backed workload DB under `dir` — the production shape: daemon
    /// appends are real disk writes.
    pub fn file_backed(dir: impl Into<std::path::PathBuf>, clock: SimClock) -> Result<Self> {
        let engine = Engine::builder()
            .config(Self::db_config())
            .clock(clock)
            .path(dir)
            .build()?;
        Self::init(engine)
    }

    /// Workload DB over an arbitrary disk backend — how the fault-injection
    /// tests wrap the store in an `ingot_storage::FaultInjectingBackend`.
    pub fn with_backend(
        backend: Box<dyn ingot_storage::DiskBackend>,
        clock: SimClock,
    ) -> Result<Self> {
        let engine = Engine::builder()
            .config(Self::db_config())
            .clock(clock)
            .backend(backend)
            .build()?;
        Self::init(engine)
    }

    /// Workload DB inside a caller-built engine (custom configs: tiny
    /// buffer pools, single-page heap extents). The engine should not be
    /// monitored — the workload DB is the *store*, not a workload source.
    pub fn with_engine(engine: Arc<Engine>) -> Result<Self> {
        Self::init(engine)
    }

    /// The engine configuration the standard constructors use.
    pub fn default_config() -> EngineConfig {
        Self::db_config()
    }

    /// Inspect and repair a file-backed workload DB directory after a
    /// crash: pages past the last durable checkpoint whose checksums do not
    /// match (torn writes) are truncated away, and partial trailing pages
    /// are dropped. Run this *before* [`WorkloadDb::file_backed`] reopens
    /// the directory; the returned report says how many rows survived.
    pub fn recover(dir: impl AsRef<std::path::Path>) -> Result<ingot_storage::RecoveryReport> {
        ingot_storage::recover(dir.as_ref())
    }

    fn db_config() -> EngineConfig {
        // The workload DB is not itself monitored, and it gets a modest
        // cache so appends spill to the backend regularly.
        EngineConfig {
            monitor_enabled: false,
            buffer_pool_pages: 256,
            heap_main_pages: 4,
            ..EngineConfig::default()
        }
    }

    fn init(engine: Arc<Engine>) -> Result<Self> {
        {
            let session = engine.open_session();
            for stmt in SCHEMA.split(';') {
                let stmt = stmt.trim();
                if !stmt.is_empty() {
                    session.execute(stmt)?;
                }
            }
        }
        Ok(WorkloadDb {
            engine,
            state: Mutex::new(AppendState::default()),
            growth: GrowthStats::default(),
        })
    }

    /// The engine holding the workload DB (SQL access for analyzers:
    /// `wldb.session().execute("select … from wl_workload …")`).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Open a SQL session on the workload DB.
    pub fn session(&self) -> Session {
        self.engine.open_session()
    }

    /// Growth accounting (reproduces the §V-A "28 MB per hour" analysis).
    pub fn growth(&self) -> &GrowthStats {
        &self.growth
    }

    fn insert(&self, table: &str, row: Row) -> Result<()> {
        let bytes = row.byte_size() as u64;
        // Snapshot read: the workload DB is private to the daemon (single
        // writer), so the `&self` insert needs no catalog write guard.
        let catalog = self.engine.catalog().read();
        let id = catalog.resolve_table(table)?;
        catalog.insert_row(id, &row)?;
        drop(catalog);
        self.growth
            .record_append(1, bytes, self.engine.sim_clock().now_secs());
        Ok(())
    }

    /// Copy everything new in `monitor` into the workload DB, stamping rows
    /// with `now_secs` (simulated seconds).
    pub fn append_from(&self, monitor: &Monitor, now_secs: u64) -> Result<()> {
        let ts = Value::Int(now_secs as i64);
        let mut state = self.state.lock();

        // Statements whose frequency changed since the last poll. The
        // cursor moves only once the row is in: a failed insert leaves the
        // old frequency recorded, so the retry re-appends this statement.
        for s in monitor.statements() {
            let prev = state.stmt_freq.get(&s.hash).copied().unwrap_or(0);
            if s.frequency != prev {
                self.insert(
                    "wl_statements",
                    Row::new(vec![
                        Value::Str(s.hash.to_string()),
                        Value::Str(s.text.clone()),
                        Value::Int(s.frequency as i64),
                        Value::Int(s.first_seen_ns as i64),
                        Value::Int(s.last_seen_ns as i64),
                        ts.clone(),
                    ]),
                )?;
                state.stmt_freq.insert(s.hash, s.frequency);
            }
        }

        // Workload executions beyond the last copied sequence number.
        for w in monitor.workload() {
            if state.last_workload_seq.is_some_and(|last| w.seq <= last) {
                continue;
            }
            self.insert(
                "wl_workload",
                Row::new(vec![
                    Value::Str(w.hash.to_string()),
                    Value::Int(w.seq as i64),
                    Value::Int(w.opt_time_ns as i64),
                    Value::Int(w.opt_io as i64),
                    Value::Int(w.exec_cpu as i64),
                    Value::Int(w.exec_io as i64),
                    Value::Float(w.est.cpu),
                    Value::Float(w.est.io),
                    Value::Int(w.wallclock_ns as i64),
                    Value::Int(w.monitor_ns as i64),
                    Value::Int(w.at_ns as i64),
                    Value::Int(w.at_sim_secs as i64),
                    ts.clone(),
                ]),
            )?;
            state.last_workload_seq = Some(w.seq);
        }

        // New object references.
        for r in monitor.references() {
            let key = (r.hash, r.object.tag(), r.object_id);
            if state.refs_seen.contains(&key) {
                continue;
            }
            self.insert(
                "wl_references",
                Row::new(vec![
                    Value::Str(r.hash.to_string()),
                    Value::Str(r.object.tag().to_owned()),
                    Value::Int(r.object_id as i64),
                    Value::Int(i64::from(r.table.raw())),
                    ts.clone(),
                ]),
            )?;
            state.refs_seen.insert(key);
        }

        // Object-usage snapshots: appended every poll for trend analysis.
        // There is no natural cursor here (every poll appends a full
        // snapshot), so a positional one tracks mid-batch progress: the
        // monitor's iteration order is deterministic (tables, then indexes,
        // then attributes, each sorted), and `objects_done` counts how many
        // rows of *this* timestamp's snapshot already landed. A retry after
        // a fault appends only the missing suffix — no duplicates, no gaps.
        let done = match state.objects_done {
            Some((t, n)) if t == now_secs => n,
            _ => 0,
        };
        state.objects_done = Some((now_secs, done));
        let mut idx = 0usize;
        for t in monitor.tables() {
            if idx >= done {
                self.insert(
                    "wl_tables",
                    Row::new(vec![
                        Value::Int(i64::from(t.id.raw())),
                        Value::Str(t.name.clone()),
                        Value::Int(t.frequency as i64),
                        Value::Str(t.storage.clone()),
                        Value::Int(t.data_pages as i64),
                        Value::Int(t.overflow_pages as i64),
                        Value::Int(t.rows as i64),
                        ts.clone(),
                    ]),
                )?;
                state.objects_done = Some((now_secs, idx + 1));
            }
            idx += 1;
        }
        for i in monitor.indexes() {
            if idx >= done {
                self.insert(
                    "wl_indexes",
                    Row::new(vec![
                        Value::Int(i64::from(i.id.raw())),
                        Value::Str(i.name.clone()),
                        Value::Int(i64::from(i.table.raw())),
                        Value::Int(i.frequency as i64),
                        Value::Int(i.pages as i64),
                        ts.clone(),
                    ]),
                )?;
                state.objects_done = Some((now_secs, idx + 1));
            }
            idx += 1;
        }
        for a in monitor.attributes() {
            if idx >= done {
                self.insert(
                    "wl_attributes",
                    Row::new(vec![
                        Value::Int(i64::from(a.table.raw())),
                        Value::Int(a.column as i64),
                        Value::Str(a.name.clone()),
                        Value::Int(a.frequency as i64),
                        Value::Bool(a.has_histogram),
                        ts.clone(),
                    ]),
                )?;
                state.objects_done = Some((now_secs, idx + 1));
            }
            idx += 1;
        }

        // New statistics samples.
        for s in monitor.statistics() {
            if s.at_ns <= state.last_stat_ns {
                continue;
            }
            self.insert(
                "wl_statistics",
                Row::new(vec![
                    Value::Int(s.at_ns as i64),
                    Value::Int(s.at_sim_secs as i64),
                    Value::Int(s.sessions as i64),
                    Value::Int(s.max_sessions as i64),
                    Value::Int(s.locks_held as i64),
                    Value::Int(s.lock_waiting as i64),
                    Value::Int(s.lock_waits_total as i64),
                    Value::Int(s.deadlocks_total as i64),
                    Value::Int(s.active_txns as i64),
                    Value::Int(s.cache_hits as i64),
                    Value::Int(s.cache_misses as i64),
                    Value::Int(s.physical_reads as i64),
                    Value::Int(s.physical_writes as i64),
                    Value::Int(s.statements_executed as i64),
                    ts.clone(),
                ]),
            )?;
            state.last_stat_ns = s.at_ns;
        }

        // The whole batch landed: the next poll appends a fresh snapshot.
        state.objects_done = None;
        Ok(())
    }

    /// Append a flattened [`MetricsSnapshot`] — every sample becomes one
    /// `wl_metrics` row, so engine-level time series (buffer hit rates,
    /// latency histogram buckets, …) are queryable alongside the Fig 3
    /// workload tables.
    ///
    /// [`MetricsSnapshot`]: ingot_core::MetricsSnapshot
    pub fn append_metrics(
        &self,
        snapshot: &ingot_core::MetricsSnapshot,
        now_secs: u64,
    ) -> Result<()> {
        let ts = Value::Int(now_secs as i64);
        for (name, labels, value) in snapshot.flatten() {
            self.insert(
                "wl_metrics",
                Row::new(vec![
                    Value::Str(name),
                    Value::Str(labels),
                    Value::Float(value),
                    ts.clone(),
                ]),
            )?;
        }
        Ok(())
    }

    /// Delete rows older than `cutoff_secs` from every workload table (the
    /// retention window; paper default seven days).
    pub fn purge_older_than(&self, cutoff_secs: u64) -> Result<()> {
        if cutoff_secs == 0 {
            return Ok(());
        }
        let session = self.session();
        for table in WL_TABLES {
            session.execute(&format!("delete from {table} where ts < {cutoff_secs}"))?;
        }
        Ok(())
    }

    /// Row count of one workload table.
    pub fn row_count(&self, table: &str) -> Result<u64> {
        let session = self.session();
        let r = session.execute(&format!("select count(*) from {table}"))?;
        r.rows[0]
            .get(0)
            .as_int()
            .map(|n| n as u64)
            .ok_or_else(|| Error::daemon("count(*) returned non-integer"))
    }

    /// Run a query against the workload DB and return its rows.
    pub fn query(&self, sql: &str) -> Result<Vec<Row>> {
        Ok(self.session().execute(sql)?.rows)
    }

    /// Flush dirty pages and durably checkpoint the workload DB — fsync of
    /// every data file plus the recovery manifest (page checksums + epoch).
    /// An acknowledged flush therefore survives a crash: `recover` restores
    /// exactly this state, truncating any later torn writes.
    pub fn flush(&self) -> Result<()> {
        self.engine.checkpoint().map(|_| ())
    }

    /// Total pages of the workload DB (its on-disk size).
    pub fn total_pages(&self) -> u64 {
        self.engine.total_data_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::EngineConfig;

    #[test]
    fn schema_is_created() {
        let db = WorkloadDb::in_memory(SimClock::new()).unwrap();
        for t in WL_TABLES {
            assert_eq!(db.row_count(t).unwrap(), 0, "{t}");
        }
    }

    #[test]
    fn append_is_incremental() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        s.execute("insert into t values (1)").unwrap();
        let db = WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap();
        db.append_from(engine.monitor().unwrap(), 100).unwrap();
        assert_eq!(db.row_count("wl_workload").unwrap(), 2);
        // Same statement again: one new workload row, statement frequency row.
        s.execute("insert into t values (1)").unwrap();
        db.append_from(engine.monitor().unwrap(), 130).unwrap();
        assert_eq!(db.row_count("wl_workload").unwrap(), 3);
        let rows = db
            .query("select frequency from wl_statements where query_text like 'insert%' order by ts desc limit 1")
            .unwrap();
        assert_eq!(rows[0].get(0), &Value::Int(2));
    }

    #[test]
    fn purge_respects_cutoff() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        let db = WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap();
        db.append_from(engine.monitor().unwrap(), 100).unwrap();
        s.execute("insert into t values (1)").unwrap();
        db.append_from(engine.monitor().unwrap(), 900).unwrap();
        db.purge_older_than(500).unwrap();
        let rows = db.query("select ts from wl_workload").unwrap();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.get(0).as_int().unwrap() >= 500));
    }

    #[test]
    fn growth_accounting_tracks_bytes() {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        for i in 0..50 {
            s.execute(&format!("insert into t values ({i})")).unwrap();
        }
        let db = WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap();
        db.append_from(engine.monitor().unwrap(), 0).unwrap();
        let g = db.growth();
        assert!(g.rows_appended() > 50);
        assert!(g.bytes_appended() > 1000);
    }

    #[test]
    fn file_backed_db_writes_real_files() {
        let dir = std::env::temp_dir().join(format!("ingot-wldb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let engine = Engine::builder()
                .config(EngineConfig::monitoring())
                .build()
                .unwrap();
            let s = engine.open_session();
            s.execute("create table t (a int)").unwrap();
            let db = WorkloadDb::file_backed(&dir, engine.sim_clock().clone()).unwrap();
            db.append_from(engine.monitor().unwrap(), 0).unwrap();
            db.flush().unwrap();
        }
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(!files.is_empty(), "expected data files in {dir:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
