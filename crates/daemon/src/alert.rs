//! Active alerting.
//!
//! "The daemon provides an active alerting mechanism that informs the DBA in
//! case of a defined database event such as reaching the maximum number of
//! users on the system. The DBA can easily set up his own alerts by creating
//! more triggers." Rules here are predicates over the latest statistics
//! sample; each rule fires once per threshold crossing (edge-triggered, like
//! a trigger that re-arms when the condition clears).

use std::sync::Arc;

use ingot_core::monitor::StatSample;
use parking_lot::Mutex;

/// A fired alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// The rule that fired.
    pub rule: String,
    /// Human-readable description.
    pub message: String,
    /// Simulated-clock seconds at which it fired.
    pub at_secs: u64,
}

type Predicate = Arc<dyn Fn(&StatSample) -> Option<String> + Send + Sync>;

/// A DBA-defined alerting rule.
#[derive(Clone)]
pub struct AlertRule {
    /// Rule name (shown in alerts).
    pub name: String,
    predicate: Predicate,
}

impl AlertRule {
    /// A rule from an arbitrary predicate: return `Some(message)` to fire.
    pub fn custom(
        name: impl Into<String>,
        predicate: impl Fn(&StatSample) -> Option<String> + Send + Sync + 'static,
    ) -> Self {
        AlertRule {
            name: name.into(),
            predicate: Arc::new(predicate),
        }
    }

    /// Fires when concurrent sessions exceed `limit` (the paper's example:
    /// "reaching the maximum number of users on the system").
    pub fn max_sessions(limit: u64) -> Self {
        Self::custom("max_sessions", move |s| {
            (s.sessions > limit).then(|| {
                format!(
                    "sessions {} exceeded the configured limit {limit}",
                    s.sessions
                )
            })
        })
    }

    /// Fires when any deadlock has been detected since the rule last cleared.
    pub fn deadlocks() -> Self {
        let last_seen = Mutex::new(0u64);
        Self::custom("deadlocks", move |s| {
            let mut last = last_seen.lock();
            if s.deadlocks_total > *last {
                *last = s.deadlocks_total;
                Some(format!(
                    "{} deadlock(s) detected in total",
                    s.deadlocks_total
                ))
            } else {
                None
            }
        })
    }

    /// Fires while more than `limit` transactions are blocked on locks.
    pub fn lock_waiting_above(limit: u64) -> Self {
        Self::custom("lock_waiting", move |s| {
            (s.lock_waiting > limit).then(|| {
                format!(
                    "{} transactions blocked on locks (limit {limit})",
                    s.lock_waiting
                )
            })
        })
    }

    /// Fires when the buffer-cache hit ratio drops below `ratio` (0..1).
    pub fn cache_hit_ratio_below(ratio: f64) -> Self {
        Self::custom("cache_hit_ratio", move |s| {
            let total = s.cache_hits + s.cache_misses;
            if total < 100 {
                return None; // not enough traffic to judge
            }
            let r = s.cache_hits as f64 / total as f64;
            (r < ratio).then(|| format!("cache hit ratio {r:.2} below {ratio:.2}"))
        })
    }
}

struct ArmedRule {
    rule: AlertRule,
    /// Edge triggering: true while the condition holds.
    firing: bool,
}

/// Rule registry + fired-alert queue.
#[derive(Default)]
pub struct AlertState {
    rules: Mutex<Vec<ArmedRule>>,
    queue: Mutex<Vec<Alert>>,
}

impl AlertState {
    /// Register a rule.
    pub fn add_rule(&self, rule: AlertRule) {
        self.rules.lock().push(ArmedRule {
            rule,
            firing: false,
        });
    }

    /// Evaluate all rules against `sample`.
    pub fn evaluate(&self, sample: &StatSample, now_secs: u64) {
        let mut fired = Vec::new();
        {
            let mut rules = self.rules.lock();
            for armed in rules.iter_mut() {
                match (armed.rule.predicate)(sample) {
                    Some(message) if !armed.firing => {
                        armed.firing = true;
                        fired.push(Alert {
                            rule: armed.rule.name.clone(),
                            message,
                            at_secs: now_secs,
                        });
                    }
                    Some(_) => {} // still firing: no duplicate alert
                    None => armed.firing = false,
                }
            }
        }
        if !fired.is_empty() {
            self.queue.lock().extend(fired);
        }
    }

    /// Push an alert directly, bypassing rule evaluation. Used by the
    /// daemon's health-state machine to report its own degradation and
    /// recovery through the same channel DBA rules use.
    pub fn raise(&self, rule: impl Into<String>, message: impl Into<String>, at_secs: u64) {
        self.queue.lock().push(Alert {
            rule: rule.into(),
            message: message.into(),
            at_secs,
        });
    }

    /// Drain the alert queue.
    pub fn take(&self) -> Vec<Alert> {
        std::mem::take(&mut self.queue.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(sessions: u64, deadlocks: u64) -> StatSample {
        StatSample {
            sessions,
            deadlocks_total: deadlocks,
            ..Default::default()
        }
    }

    #[test]
    fn edge_triggered_firing() {
        let st = AlertState::default();
        st.add_rule(AlertRule::max_sessions(2));
        st.evaluate(&sample(3, 0), 10);
        st.evaluate(&sample(4, 0), 20); // still above: no re-fire
        assert_eq!(st.take().len(), 1);
        st.evaluate(&sample(1, 0), 30); // clears
        st.evaluate(&sample(5, 0), 40); // re-fires
        let alerts = st.take();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].at_secs, 40);
    }

    #[test]
    fn deadlock_rule_fires_per_increase() {
        let st = AlertState::default();
        st.add_rule(AlertRule::deadlocks());
        st.evaluate(&sample(0, 0), 0);
        assert!(st.take().is_empty());
        st.evaluate(&sample(0, 1), 1);
        assert_eq!(st.take().len(), 1);
        // Unchanged count: the inner predicate returns None, the rule clears,
        // and a later increase fires again.
        st.evaluate(&sample(0, 1), 2);
        assert!(st.take().is_empty());
        st.evaluate(&sample(0, 3), 3);
        assert_eq!(st.take().len(), 1);
    }

    #[test]
    fn cache_ratio_needs_traffic() {
        let st = AlertState::default();
        st.add_rule(AlertRule::cache_hit_ratio_below(0.9));
        let mut s = StatSample {
            cache_hits: 10,
            cache_misses: 40,
            ..Default::default()
        };
        st.evaluate(&s, 0); // only 50 accesses: below the traffic floor
        assert!(st.take().is_empty());
        s.cache_hits = 50;
        s.cache_misses = 200;
        st.evaluate(&s, 1);
        assert_eq!(st.take().len(), 1);
    }
}
