//! The daemon's health-state machine and its counters.
//!
//! ```text
//!            transient failure            consecutive failures
//!            (after retries)              >= quarantine_after,
//!   Healthy ───────────────▶ Degraded ──────────────────────▶ Quarantined
//!      ▲                        │  ▲                               │
//!      └────────────────────────┘  └───────────────────────────────┘
//!        successful poll             permanent I/O error (direct)
//!  (buffered snapshots replayed)
//! ```
//!
//! * **Healthy** — polls append to the workload DB normally.
//! * **Degraded** — the workload DB is failing transiently; snapshot
//!   timestamps are buffered (bounded by the catch-up window) and replayed
//!   in order once a poll succeeds, so a transient outage loses no monitor
//!   data.
//! * **Quarantined** — the workload DB failed permanently (or kept failing
//!   past the threshold); appends stop, snapshots are counted as dropped,
//!   and a self-alert is raised. Monitoring itself (ring buffers, alert
//!   evaluation) continues — graceful degradation, not shutdown.
//!
//! Counters are exported through the `ima$daemon_health` virtual table.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};

use ingot_common::{Row, Value};
use parking_lot::Mutex;

/// Daemon health states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Appends succeed.
    Healthy,
    /// Transient failures; buffering snapshots for catch-up.
    Degraded,
    /// Permanent failure; appends suspended.
    Quarantined,
}

impl HealthState {
    fn from_u8(v: u8) -> HealthState {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::Quarantined,
        }
    }

    /// Lower-case name, as shown in `ima$daemon_health.state`.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
        }
    }
}

/// Shared, lock-free health counters (the `ima$daemon_health` row source).
pub struct DaemonHealth {
    state: AtomicU8,
    polls: AtomicU64,
    failed_polls: AtomicU64,
    consecutive_failures: AtomicU64,
    retries: AtomicU64,
    buffered_snapshots: AtomicU64,
    recovered_snapshots: AtomicU64,
    dropped_snapshots: AtomicU64,
    /// Sim-clock seconds when the daemon left Healthy; -1 while healthy.
    degraded_since_secs: AtomicI64,
    last_error: Mutex<Option<String>>,
}

impl Default for DaemonHealth {
    fn default() -> Self {
        DaemonHealth {
            state: AtomicU8::new(0),
            polls: AtomicU64::new(0),
            failed_polls: AtomicU64::new(0),
            consecutive_failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            buffered_snapshots: AtomicU64::new(0),
            recovered_snapshots: AtomicU64::new(0),
            dropped_snapshots: AtomicU64::new(0),
            // A daemon that has never degraded reports -1, not epoch 0.
            degraded_since_secs: AtomicI64::new(-1),
            last_error: Mutex::new(None),
        }
    }
}

impl DaemonHealth {
    /// Current state.
    pub fn state(&self) -> HealthState {
        HealthState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Transition into `state`, tracking when Healthy was left.
    pub fn set_state(&self, state: HealthState, now_secs: u64) {
        let prev = self.state.swap(
            match state {
                HealthState::Healthy => 0,
                HealthState::Degraded => 1,
                HealthState::Quarantined => 2,
            },
            Ordering::Relaxed,
        );
        match (HealthState::from_u8(prev), state) {
            (HealthState::Healthy, HealthState::Healthy) => {}
            (HealthState::Healthy, _) => {
                self.degraded_since_secs
                    .store(now_secs as i64, Ordering::Relaxed);
            }
            (_, HealthState::Healthy) => {
                self.degraded_since_secs.store(-1, Ordering::Relaxed);
                self.consecutive_failures.store(0, Ordering::Relaxed);
                *self.last_error.lock() = None;
            }
            _ => {}
        }
    }

    /// Count one poll attempt.
    pub fn record_poll(&self) -> u64 {
        self.polls.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Count a failed poll; returns the new consecutive-failure count.
    pub fn record_failure(&self, error: &ingot_common::Error) -> u64 {
        self.failed_polls.fetch_add(1, Ordering::Relaxed);
        *self.last_error.lock() = Some(error.to_string());
        self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Count retry attempts performed by the backoff loop.
    pub fn record_retries(&self, n: u64) {
        if n > 0 {
            self.retries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adjust the buffered-snapshot gauge to `n`.
    pub fn set_buffered(&self, n: u64) {
        self.buffered_snapshots.store(n, Ordering::Relaxed);
    }

    /// Count snapshots recovered from the catch-up buffer.
    pub fn record_recovered(&self, n: u64) {
        if n > 0 {
            self.recovered_snapshots.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count snapshots dropped (buffer overflow or quarantine).
    pub fn record_dropped(&self, n: u64) {
        if n > 0 {
            self.dropped_snapshots.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Polls performed.
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Failed polls.
    pub fn failed_polls(&self) -> u64 {
        self.failed_polls.load(Ordering::Relaxed)
    }

    /// Consecutive failed polls (reset on success).
    pub fn consecutive_failures(&self) -> u64 {
        self.consecutive_failures.load(Ordering::Relaxed)
    }

    /// Retry attempts performed.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Snapshots currently buffered for catch-up.
    pub fn buffered_snapshots(&self) -> u64 {
        self.buffered_snapshots.load(Ordering::Relaxed)
    }

    /// Snapshots recovered from the buffer after healing.
    pub fn recovered_snapshots(&self) -> u64 {
        self.recovered_snapshots.load(Ordering::Relaxed)
    }

    /// Snapshots lost to buffer overflow or quarantine.
    pub fn dropped_snapshots(&self) -> u64 {
        self.dropped_snapshots.load(Ordering::Relaxed)
    }

    /// Most recent error message, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// The `ima$daemon_health` row (see
    /// `ingot_core::daemon_health_schema` for the column order).
    pub fn snapshot_row(&self) -> Row {
        Row::new(vec![
            Value::Str(self.state().name().to_owned()),
            Value::Int(self.polls() as i64),
            Value::Int(self.failed_polls() as i64),
            Value::Int(self.consecutive_failures() as i64),
            Value::Int(self.retries() as i64),
            Value::Int(self.buffered_snapshots() as i64),
            Value::Int(self.recovered_snapshots() as i64),
            Value::Int(self.dropped_snapshots() as i64),
            Value::Int(self.degraded_since_secs.load(Ordering::Relaxed)),
            Value::Str(self.last_error().unwrap_or_default()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::Error;

    #[test]
    fn state_transitions_track_degradation_window() {
        let h = DaemonHealth::default();
        assert_eq!(h.state(), HealthState::Healthy);
        h.set_state(HealthState::Degraded, 100);
        assert_eq!(h.state(), HealthState::Degraded);
        assert_eq!(h.snapshot_row().get(8), &Value::Int(100));
        // Degraded -> Quarantined keeps the original since-timestamp.
        h.set_state(HealthState::Quarantined, 500);
        assert_eq!(h.snapshot_row().get(8), &Value::Int(100));
        // Recovery clears the window, the consecutive count and the error.
        h.record_failure(&Error::transient_io("x"));
        h.set_state(HealthState::Healthy, 900);
        assert_eq!(h.snapshot_row().get(8), &Value::Int(-1));
        assert_eq!(h.consecutive_failures(), 0);
        assert_eq!(h.last_error(), None);
    }

    #[test]
    fn counters_accumulate() {
        let h = DaemonHealth::default();
        h.record_poll();
        h.record_poll();
        let consec = h.record_failure(&Error::transient_io("blip"));
        assert_eq!(consec, 1);
        h.record_retries(3);
        h.set_buffered(2);
        h.record_recovered(2);
        h.record_dropped(1);
        assert_eq!(h.polls(), 2);
        assert_eq!(h.failed_polls(), 1);
        assert_eq!(h.retries(), 3);
        assert_eq!(h.buffered_snapshots(), 2);
        assert_eq!(h.recovered_snapshots(), 2);
        assert_eq!(h.dropped_snapshots(), 1);
        assert!(h.last_error().unwrap().contains("blip"));
    }
}
