//! Workload-DB growth accounting.
//!
//! §V-A: "At its highest throughput of logging 33 statements per second …
//! the workload DB grows at a rate of about 28 megabytes per hour. This data
//! is kept for seven days by default, so that the size of the workload DB is
//! limited in total to about 4.7 gigabytes." The counters here regenerate
//! that analysis for any measured run.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative append counters with rate derivation.
#[derive(Debug, Default)]
pub struct GrowthStats {
    rows: AtomicU64,
    bytes: AtomicU64,
    first_secs: AtomicU64,
    last_secs: AtomicU64,
    started: AtomicU64,
}

impl GrowthStats {
    /// Record an append of `rows` rows totalling `bytes` at simulated time
    /// `now_secs`.
    pub fn record_append(&self, rows: u64, bytes: u64, now_secs: u64) {
        self.rows.fetch_add(rows, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        if self.started.swap(1, Ordering::Relaxed) == 0 {
            self.first_secs.store(now_secs, Ordering::Relaxed);
        }
        self.last_secs.fetch_max(now_secs, Ordering::Relaxed);
    }

    /// Rows appended so far.
    pub fn rows_appended(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Payload bytes appended so far.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Observed span of appends in simulated seconds.
    pub fn span_secs(&self) -> u64 {
        self.last_secs
            .load(Ordering::Relaxed)
            .saturating_sub(self.first_secs.load(Ordering::Relaxed))
    }

    /// Growth rate in bytes per (simulated) hour; `None` before a span of at
    /// least one second exists.
    pub fn bytes_per_hour(&self) -> Option<f64> {
        let span = self.span_secs();
        if span == 0 {
            return None;
        }
        Some(self.bytes_appended() as f64 * 3600.0 / span as f64)
    }

    /// Projected steady-state size under a retention window, in bytes
    /// (rate × window) — the paper's "limited in total to about 4.7 GB".
    pub fn projected_size(&self, retention_secs: u64) -> Option<f64> {
        self.bytes_per_hour()
            .map(|bph| bph * retention_secs as f64 / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_derivation() {
        let g = GrowthStats::default();
        assert!(g.bytes_per_hour().is_none());
        g.record_append(10, 1000, 100);
        g.record_append(10, 1000, 460); // 360 s span, 2000 bytes
        assert_eq!(g.rows_appended(), 20);
        let rate = g.bytes_per_hour().unwrap();
        assert!((rate - 20_000.0).abs() < 1.0, "rate {rate}");
        // Seven-day projection = rate × 168 h.
        let proj = g.projected_size(7 * 24 * 3600).unwrap();
        assert!((proj - 20_000.0 * 168.0).abs() < 1.0);
    }

    #[test]
    fn first_append_anchors_span() {
        let g = GrowthStats::default();
        g.record_append(1, 1, 50);
        assert_eq!(g.span_secs(), 0);
        g.record_append(1, 1, 80);
        assert_eq!(g.span_secs(), 30);
    }
}
