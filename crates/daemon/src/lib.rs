#![forbid(unsafe_code)]
//! The storage daemon (§IV-B of the paper).
//!
//! "Data storage is performed by a lightweight daemon running in the
//! background. The tool periodically wakes up and queries the IMA database
//! to get the newest data … and then appends the collected data to the
//! workload database."
//!
//! * Poll interval defaults to 30 s ("collecting up to 1000 statements
//!   within an interval of 30 seconds has proven to be enough").
//! * The workload database is a normal Ingot database with the same schema
//!   as the IMA tables plus snapshot timestamps, held in **real files** so
//!   the daemon's appends genuinely hit the disk.
//! * Entries are retained for seven days by default ("to allow recording
//!   the workload of a typical work week").
//! * An active alerting mechanism evaluates DBA-defined rules on every poll
//!   ("informs the DBA in case of a defined database event such as reaching
//!   the maximum number of users on the system").
//! * The daemon is **self-healing**: workload-DB failures run through a
//!   `Healthy → Degraded → Quarantined` state machine ([`health`]) with
//!   retry/backoff, a bounded catch-up buffer for missed snapshots, and
//!   self-alerts through the same [`alert::AlertState`] DBA rules use. Its
//!   counters are queryable as the `ima$daemon_health` virtual table.

pub mod alert;
pub mod growth;
pub mod health;
pub mod wldb;

pub use alert::{Alert, AlertRule};
pub use growth::GrowthStats;
pub use health::{DaemonHealth, HealthState};
pub use wldb::WorkloadDb;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ingot_common::waits::{WaitEvent, WaitGuard};
use ingot_common::{Error, Result, RetryPolicy};
use ingot_core::{Engine, Monitor};
use parking_lot::Mutex;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Wake-up interval. Paper default: 30 s.
    pub interval: Duration,
    /// Retention window in *simulated* seconds. Paper default: 7 days.
    pub retention_secs: u64,
    /// Flush the workload DB to disk after every poll (the paper's "writes
    /// to disk every few minutes" corresponds to flushing every N polls).
    pub polls_per_flush: u32,
    /// Backoff policy for transient workload-DB failures within one poll
    /// (waits advance the simulated clock, not the wall clock).
    pub retry: RetryPolicy,
    /// How many missed snapshots the daemon buffers while Degraded. When
    /// the buffer overflows the *oldest* timestamp is dropped (and counted
    /// in `ima$daemon_health.dropped_snapshots`).
    pub catchup_window: usize,
    /// Consecutive failed polls before the daemon quarantines itself.
    /// Permanent (non-transient) errors quarantine immediately.
    pub quarantine_after: u32,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            interval: Duration::from_secs(30),
            retention_secs: 7 * 24 * 3600,
            polls_per_flush: 4,
            retry: RetryPolicy::default(),
            catchup_window: 16,
            quarantine_after: 8,
        }
    }
}

/// Rule name under which the daemon raises alerts about itself.
pub const DAEMON_HEALTH_RULE: &str = "daemon_health";

/// The storage daemon: owns the workload DB and polls a monitored engine.
pub struct StorageDaemon {
    engine: Arc<Engine>,
    wldb: Arc<WorkloadDb>,
    config: DaemonConfig,
    alerts: Arc<alert::AlertState>,
    health: Arc<DaemonHealth>,
    /// Timestamps of snapshots that failed to append, oldest first,
    /// replayed in order once the workload DB heals.
    pending: Mutex<VecDeque<u64>>,
    last_purge_secs: AtomicU64,
}

impl StorageDaemon {
    /// Create a daemon for `engine`, writing into `wldb`. Registers the
    /// `ima$daemon_health` virtual table on `engine`'s catalog so the
    /// daemon's own health is queryable over SQL like any other IMA data.
    pub fn new(engine: Arc<Engine>, wldb: Arc<WorkloadDb>, config: DaemonConfig) -> Self {
        let health = Arc::new(DaemonHealth::default());
        {
            // A second daemon on the same engine would collide on the table
            // name; keep the first registration rather than failing.
            let h = Arc::clone(&health);
            let mut catalog = engine.catalog().write();
            let _ = ingot_core::register_daemon_health_table(
                &mut catalog,
                Arc::new(move || vec![h.snapshot_row()]),
            );
        }
        StorageDaemon {
            engine,
            wldb,
            config,
            alerts: Arc::new(alert::AlertState::default()),
            health,
            pending: Mutex::new(VecDeque::new()),
            last_purge_secs: AtomicU64::new(0),
        }
    }

    /// The daemon's health counters (also exposed as `ima$daemon_health`).
    pub fn health(&self) -> &Arc<DaemonHealth> {
        &self.health
    }

    /// The workload database.
    pub fn wldb(&self) -> &Arc<WorkloadDb> {
        &self.wldb
    }

    /// Register an alerting rule (the paper's trigger mechanism: "the DBA
    /// can easily set up his own alerts").
    pub fn add_rule(&self, rule: AlertRule) {
        self.alerts.add_rule(rule);
    }

    /// Alerts fired so far (drains the queue).
    pub fn take_alerts(&self) -> Vec<Alert> {
        self.alerts.take()
    }

    /// Number of polls performed.
    pub fn poll_count(&self) -> u64 {
        self.health.polls()
    }

    /// One synchronous poll: sample statistics, pull new monitor data into
    /// the workload DB, purge expired rows, evaluate alert rules, and
    /// (periodically) flush to disk. Deterministic — tests and experiment
    /// harnesses call this directly; [`StorageDaemon::spawn`] calls it on a
    /// timer.
    ///
    /// Failures run through the health-state machine: transient errors are
    /// retried with backoff inside the poll, then (still failing) degrade
    /// the daemon and buffer the snapshot timestamp for catch-up; permanent
    /// errors — or [`DaemonConfig::quarantine_after`] consecutive failures —
    /// quarantine it. Alert rules are evaluated on *every* poll regardless,
    /// so monitoring degrades gracefully instead of stopping.
    pub fn poll_once(&self) -> Result<()> {
        let polls = self.health.record_poll();
        // Statistics sensor fires on the daemon's schedule.
        self.engine.sample_statistics();
        // The ASH sampler is cooperative: the daemon is one of its tick
        // sources, so an engine idle between statements still gets sampled
        // on the poll cadence.
        if let Some(sampler) = self.engine.ash_sampler() {
            sampler.sample_if_due(self.engine.wall_clock().now_nanos());
        }
        // Version-chain GC rides the poll cadence, best-effort: a busy engine
        // (quiesce timeout) just means the chains wait for the next poll.
        let _ = self.engine.mvcc_gc();
        let Some(monitor) = self.engine.monitor() else {
            return Ok(());
        };
        let now_secs = self.engine.sim_clock().now_secs();

        let quarantined = self.health.state() == HealthState::Quarantined;
        let mut outcome = if quarantined {
            self.health.record_dropped(1);
            Err(Error::daemon(
                "storage daemon quarantined; snapshot dropped",
            ))
        } else {
            self.try_append(monitor, now_secs)
        };

        match &outcome {
            Ok(()) => {
                if let Err(e) = self.housekeep(polls, now_secs) {
                    self.note_failure(&e, now_secs);
                    outcome = Err(e);
                }
            }
            Err(e) => {
                if !quarantined {
                    // The current snapshot did not land; queue it so the
                    // next successful poll replays it.
                    self.buffer_snapshot(now_secs);
                }
                self.note_failure(e, now_secs);
            }
        }

        // Active alerting keeps working even while storage is down.
        if let Some(sample) = monitor.statistics().last() {
            self.alerts.evaluate(sample, now_secs);
        }
        outcome
    }

    /// Replay buffered snapshots oldest-first, then append the current one,
    /// each wrapped in the retry/backoff policy. On success the daemon is
    /// healthy again (with a recovery self-alert if it wasn't).
    fn try_append(&self, monitor: &Monitor, now_secs: u64) -> Result<()> {
        {
            // Replaying buffered snapshots is time the daemon spends catching
            // up instead of monitoring; charge it as DaemonCatchup so a DBA
            // can see recovery cost in `ima$wait_events`. No-op when the
            // buffer is empty or the wait subsystem is off.
            let _catchup = if self.pending.lock().is_empty() {
                WaitGuard::disabled()
            } else {
                WaitGuard::begin(self.engine.wait_registry(), WaitEvent::DaemonCatchup)
            };
            loop {
                let Some(ts) = self.pending.lock().front().copied() else {
                    break;
                };
                self.append_with_retry(monitor, ts)?;
                self.pending.lock().pop_front();
                self.health.record_recovered(1);
                self.health.set_buffered(self.pending.lock().len() as u64);
            }
        }
        self.append_with_retry(monitor, now_secs)?;
        if self.health.state() != HealthState::Healthy {
            self.health.set_state(HealthState::Healthy, now_secs);
            self.alerts.raise(
                DAEMON_HEALTH_RULE,
                "storage daemon recovered; buffered snapshots replayed",
                now_secs,
            );
        }
        Ok(())
    }

    fn append_with_retry(&self, monitor: &Monitor, ts: u64) -> Result<()> {
        let mut attempts = 0u64;
        let result = self
            .config
            .retry
            .run_sim(self.engine.sim_clock(), |attempt| {
                attempts = u64::from(attempt);
                self.wldb.append_from(monitor, ts)
            });
        self.health.record_retries(attempts.saturating_sub(1));
        result
    }

    /// Retention purge (at most once per simulated hour), the engine-level
    /// metrics snapshot, and the periodic durable flush — run only after a
    /// successful append.
    fn housekeep(&self, polls: u64, now_secs: u64) -> Result<()> {
        // Engine gauges/counters/histograms land next to the Fig 3 rows so
        // time-series queries can correlate them with the workload.
        self.wldb
            .append_metrics(&self.engine.metrics_snapshot(), now_secs)?;
        // Wait-event counters and new ASH samples ride the same cadence.
        self.wldb.append_waits(&self.engine, now_secs)?;
        let last = self.last_purge_secs.load(Ordering::Relaxed);
        if now_secs.saturating_sub(last) >= 3600 {
            self.last_purge_secs.store(now_secs, Ordering::Relaxed);
            self.wldb
                .purge_older_than(now_secs.saturating_sub(self.config.retention_secs))?;
        }
        if polls.is_multiple_of(u64::from(self.config.polls_per_flush.max(1))) {
            let mut attempts = 0u64;
            let result = self
                .config
                .retry
                .run_sim(self.engine.sim_clock(), |attempt| {
                    attempts = u64::from(attempt);
                    self.wldb.flush()
                });
            self.health.record_retries(attempts.saturating_sub(1));
            result?;
        }
        Ok(())
    }

    /// Queue a missed snapshot timestamp, dropping the oldest entries past
    /// the catch-up window.
    fn buffer_snapshot(&self, ts: u64) {
        let mut pending = self.pending.lock();
        if pending.back().copied() != Some(ts) {
            pending.push_back(ts);
        }
        let window = self.config.catchup_window.max(1);
        while pending.len() > window {
            pending.pop_front();
            self.health.record_dropped(1);
        }
        self.health.set_buffered(pending.len() as u64);
    }

    /// Record a failed poll and drive the state machine: permanent errors
    /// quarantine immediately, transient ones degrade and eventually
    /// quarantine after `quarantine_after` consecutive failures. Each
    /// transition raises a self-alert on the DBA alert channel.
    fn note_failure(&self, error: &Error, now_secs: u64) {
        let consecutive = self.health.record_failure(error);
        let threshold = u64::from(self.config.quarantine_after.max(1));
        if !error.is_transient() || consecutive >= threshold {
            if self.health.state() != HealthState::Quarantined {
                self.health.set_state(HealthState::Quarantined, now_secs);
                self.alerts.raise(
                    DAEMON_HEALTH_RULE,
                    format!(
                        "storage daemon quarantined after {consecutive} consecutive failure(s): {error}"
                    ),
                    now_secs,
                );
            }
        } else if self.health.state() == HealthState::Healthy {
            self.health.set_state(HealthState::Degraded, now_secs);
            self.alerts.raise(
                DAEMON_HEALTH_RULE,
                format!("storage daemon degraded (buffering snapshots): {error}"),
                now_secs,
            );
        }
    }

    /// Start the background thread. Returns a handle that stops and joins
    /// the daemon on drop (or via [`DaemonHandle::stop`]); errs if the OS
    /// refuses to spawn the thread.
    pub fn spawn(self) -> Result<DaemonHandle> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let interval = self.config.interval;
        let daemon = Arc::new(self);
        let daemon2 = Arc::clone(&daemon);
        let handle = std::thread::Builder::new()
            .name("ingot-daemon".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    // A failed poll must not kill the daemon: the health
                    // machine has recorded it (and alerted); the next
                    // interval retries or stays quarantined.
                    let _ = daemon2.poll_once();
                    // Sleep in small slices so stop() is responsive.
                    let mut remaining = interval;
                    let slice = Duration::from_millis(10);
                    while remaining > Duration::ZERO && !stop2.load(Ordering::Relaxed) {
                        let nap = remaining.min(slice);
                        // Daemon pacing is the one sanctioned sleeper: the
                        // monitor wakes on a wall-clock interval by design.
                        #[allow(clippy::disallowed_methods)]
                        std::thread::sleep(nap);
                        remaining = remaining.saturating_sub(nap);
                    }
                }
            })
            .map_err(|e| Error::daemon(format!("failed to spawn daemon thread: {e}")))?;
        Ok(DaemonHandle {
            daemon,
            stop,
            handle: Some(handle),
        })
    }
}

/// Handle to a running daemon thread.
pub struct DaemonHandle {
    daemon: Arc<StorageDaemon>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon (for reading alerts, the workload DB, poll counts).
    pub fn daemon(&self) -> &Arc<StorageDaemon> {
        &self.daemon
    }

    /// Stop and join the background thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests wait out real daemon intervals
mod tests {
    use super::*;
    use ingot_common::EngineConfig;

    fn setup() -> (Arc<Engine>, Arc<WorkloadDb>) {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
        (engine, wldb)
    }

    #[test]
    fn poll_copies_monitor_data() {
        let (engine, wldb) = setup();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        s.execute("insert into t values (1)").unwrap();
        s.execute("select * from t").unwrap();
        let daemon = StorageDaemon::new(
            Arc::clone(&engine),
            Arc::clone(&wldb),
            DaemonConfig::default(),
        );
        daemon.poll_once().unwrap();
        assert_eq!(wldb.row_count("wl_statements").unwrap(), 3);
        assert_eq!(wldb.row_count("wl_workload").unwrap(), 3);
        assert!(wldb.row_count("wl_statistics").unwrap() >= 1);
        // A second poll with no new work appends nothing to the workload.
        daemon.poll_once().unwrap();
        assert_eq!(wldb.row_count("wl_workload").unwrap(), 3);
    }

    #[test]
    fn background_thread_polls_and_stops() {
        let (engine, wldb) = setup();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        let daemon = StorageDaemon::new(
            Arc::clone(&engine),
            Arc::clone(&wldb),
            DaemonConfig {
                interval: Duration::from_millis(20),
                ..Default::default()
            },
        );
        let handle = daemon.spawn().unwrap();
        std::thread::sleep(Duration::from_millis(120));
        let polls = handle.daemon().poll_count();
        assert!(polls >= 3, "expected several polls, got {polls}");
        handle.stop();
    }

    #[test]
    fn retention_purges_old_rows() {
        let (engine, wldb) = setup();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        s.execute("select * from t").unwrap();
        let daemon = StorageDaemon::new(
            Arc::clone(&engine),
            Arc::clone(&wldb),
            DaemonConfig {
                retention_secs: 7 * 24 * 3600,
                ..Default::default()
            },
        );
        daemon.poll_once().unwrap();
        let before = wldb.row_count("wl_workload").unwrap();
        assert!(before > 0);
        // Fast-forward nine simulated days and poll again.
        engine.sim_clock().advance_secs(9 * 24 * 3600);
        daemon.poll_once().unwrap();
        assert_eq!(wldb.row_count("wl_workload").unwrap(), 0);
    }

    #[test]
    fn poll_appends_metrics_snapshots() {
        let (engine, wldb) = setup();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        s.execute("insert into t values (1)").unwrap();
        let daemon = StorageDaemon::new(
            Arc::clone(&engine),
            Arc::clone(&wldb),
            DaemonConfig::default(),
        );
        daemon.poll_once().unwrap();
        let n = wldb.row_count("wl_metrics").unwrap();
        assert!(n > 0, "expected metrics rows after a poll");
        let rows = wldb
            .query("select value from wl_metrics where name = 'ingot_statements_executed_total'")
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].get(0).as_f64().unwrap() >= 2.0);
        // Each poll appends a fresh snapshot (time series, not upsert).
        daemon.poll_once().unwrap();
        assert!(wldb.row_count("wl_metrics").unwrap() > n);
    }

    #[test]
    fn alerts_fire_on_threshold() {
        let (engine, wldb) = setup();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        let daemon = StorageDaemon::new(Arc::clone(&engine), wldb, DaemonConfig::default());
        daemon.add_rule(AlertRule::max_sessions(1));
        let _s2 = engine.open_session();
        let _s3 = engine.open_session();
        daemon.poll_once().unwrap();
        let alerts = daemon.take_alerts();
        assert_eq!(alerts.len(), 1, "alerts: {alerts:?}");
        assert!(alerts[0].message.contains("sessions"));
        // Rules only re-fire after the condition clears.
        daemon.poll_once().unwrap();
        assert!(daemon.take_alerts().is_empty());
    }
}
