//! The storage daemon (§IV-B of the paper).
//!
//! "Data storage is performed by a lightweight daemon running in the
//! background. The tool periodically wakes up and queries the IMA database
//! to get the newest data … and then appends the collected data to the
//! workload database."
//!
//! * Poll interval defaults to 30 s ("collecting up to 1000 statements
//!   within an interval of 30 seconds has proven to be enough").
//! * The workload database is a normal Ingot database with the same schema
//!   as the IMA tables plus snapshot timestamps, held in **real files** so
//!   the daemon's appends genuinely hit the disk.
//! * Entries are retained for seven days by default ("to allow recording
//!   the workload of a typical work week").
//! * An active alerting mechanism evaluates DBA-defined rules on every poll
//!   ("informs the DBA in case of a defined database event such as reaching
//!   the maximum number of users on the system").

pub mod alert;
pub mod growth;
pub mod wldb;

pub use alert::{Alert, AlertRule};
pub use growth::GrowthStats;
pub use wldb::WorkloadDb;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ingot_common::Result;
use ingot_core::Engine;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Wake-up interval. Paper default: 30 s.
    pub interval: Duration,
    /// Retention window in *simulated* seconds. Paper default: 7 days.
    pub retention_secs: u64,
    /// Flush the workload DB to disk after every poll (the paper's "writes
    /// to disk every few minutes" corresponds to flushing every N polls).
    pub polls_per_flush: u32,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            interval: Duration::from_secs(30),
            retention_secs: 7 * 24 * 3600,
            polls_per_flush: 4,
        }
    }
}

/// The storage daemon: owns the workload DB and polls a monitored engine.
pub struct StorageDaemon {
    engine: Arc<Engine>,
    wldb: Arc<WorkloadDb>,
    config: DaemonConfig,
    alerts: Arc<alert::AlertState>,
    polls: std::sync::atomic::AtomicU64,
    last_purge_secs: std::sync::atomic::AtomicU64,
}

impl StorageDaemon {
    /// Create a daemon for `engine`, writing into `wldb`.
    pub fn new(engine: Arc<Engine>, wldb: Arc<WorkloadDb>, config: DaemonConfig) -> Self {
        StorageDaemon {
            engine,
            wldb,
            config,
            alerts: Arc::new(alert::AlertState::default()),
            polls: std::sync::atomic::AtomicU64::new(0),
            last_purge_secs: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The workload database.
    pub fn wldb(&self) -> &Arc<WorkloadDb> {
        &self.wldb
    }

    /// Register an alerting rule (the paper's trigger mechanism: "the DBA
    /// can easily set up his own alerts").
    pub fn add_rule(&self, rule: AlertRule) {
        self.alerts.add_rule(rule);
    }

    /// Alerts fired so far (drains the queue).
    pub fn take_alerts(&self) -> Vec<Alert> {
        self.alerts.take()
    }

    /// Number of polls performed.
    pub fn poll_count(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// One synchronous poll: sample statistics, pull new monitor data into
    /// the workload DB, purge expired rows, evaluate alert rules, and
    /// (periodically) flush to disk. Deterministic — tests and experiment
    /// harnesses call this directly; [`StorageDaemon::spawn`] calls it on a
    /// timer.
    pub fn poll_once(&self) -> Result<()> {
        let polls = self.polls.fetch_add(1, Ordering::Relaxed) + 1;
        // Statistics sensor fires on the daemon's schedule.
        self.engine.sample_statistics();
        let Some(monitor) = self.engine.monitor() else {
            return Ok(());
        };
        let now_secs = self.engine.sim_clock().now_secs();
        self.wldb.append_from(monitor, now_secs)?;
        // Retention runs on a coarser cadence than the appends: purging
        // scans the workload tables, and the window moves slowly anyway —
        // at most once per simulated hour.
        let last = self.last_purge_secs.load(Ordering::Relaxed);
        if now_secs.saturating_sub(last) >= 3600 {
            self.last_purge_secs.store(now_secs, Ordering::Relaxed);
            self.wldb
                .purge_older_than(now_secs.saturating_sub(self.config.retention_secs))?;
        }

        if let Some(sample) = monitor.statistics().last() {
            self.alerts.evaluate(sample, now_secs);
        }
        if polls.is_multiple_of(u64::from(self.config.polls_per_flush.max(1))) {
            self.wldb.flush()?;
        }
        Ok(())
    }

    /// Start the background thread. Returns a handle that stops and joins
    /// the daemon on drop (or via [`DaemonHandle::stop`]).
    pub fn spawn(self) -> DaemonHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let interval = self.config.interval;
        let daemon = Arc::new(self);
        let daemon2 = Arc::clone(&daemon);
        let handle = std::thread::Builder::new()
            .name("ingot-daemon".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    if let Err(e) = daemon2.poll_once() {
                        // A failed poll must not kill the daemon; the next
                        // interval retries.
                        eprintln!("ingot-daemon: poll failed: {e}");
                    }
                    // Sleep in small slices so stop() is responsive.
                    let mut remaining = interval;
                    let slice = Duration::from_millis(10);
                    while remaining > Duration::ZERO && !stop2.load(Ordering::Relaxed) {
                        let nap = remaining.min(slice);
                        std::thread::sleep(nap);
                        remaining = remaining.saturating_sub(nap);
                    }
                }
            })
            .expect("spawn daemon thread");
        DaemonHandle {
            daemon,
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle to a running daemon thread.
pub struct DaemonHandle {
    daemon: Arc<StorageDaemon>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon (for reading alerts, the workload DB, poll counts).
    pub fn daemon(&self) -> &Arc<StorageDaemon> {
        &self.daemon
    }

    /// Stop and join the background thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingot_common::EngineConfig;

    fn setup() -> (Arc<Engine>, Arc<WorkloadDb>) {
        let engine = Engine::new(EngineConfig::monitoring());
        let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
        (engine, wldb)
    }

    #[test]
    fn poll_copies_monitor_data() {
        let (engine, wldb) = setup();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        s.execute("insert into t values (1)").unwrap();
        s.execute("select * from t").unwrap();
        let daemon = StorageDaemon::new(Arc::clone(&engine), Arc::clone(&wldb), DaemonConfig::default());
        daemon.poll_once().unwrap();
        assert_eq!(wldb.row_count("wl_statements").unwrap(), 3);
        assert_eq!(wldb.row_count("wl_workload").unwrap(), 3);
        assert!(wldb.row_count("wl_statistics").unwrap() >= 1);
        // A second poll with no new work appends nothing to the workload.
        daemon.poll_once().unwrap();
        assert_eq!(wldb.row_count("wl_workload").unwrap(), 3);
    }

    #[test]
    fn background_thread_polls_and_stops() {
        let (engine, wldb) = setup();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        let daemon = StorageDaemon::new(
            Arc::clone(&engine),
            Arc::clone(&wldb),
            DaemonConfig {
                interval: Duration::from_millis(20),
                ..Default::default()
            },
        );
        let handle = daemon.spawn();
        std::thread::sleep(Duration::from_millis(120));
        let polls = handle.daemon().poll_count();
        assert!(polls >= 3, "expected several polls, got {polls}");
        handle.stop();
    }

    #[test]
    fn retention_purges_old_rows() {
        let (engine, wldb) = setup();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        s.execute("select * from t").unwrap();
        let daemon = StorageDaemon::new(
            Arc::clone(&engine),
            Arc::clone(&wldb),
            DaemonConfig {
                retention_secs: 7 * 24 * 3600,
                ..Default::default()
            },
        );
        daemon.poll_once().unwrap();
        let before = wldb.row_count("wl_workload").unwrap();
        assert!(before > 0);
        // Fast-forward nine simulated days and poll again.
        engine.sim_clock().advance_secs(9 * 24 * 3600);
        daemon.poll_once().unwrap();
        assert_eq!(wldb.row_count("wl_workload").unwrap(), 0);
    }

    #[test]
    fn alerts_fire_on_threshold() {
        let (engine, wldb) = setup();
        let s = engine.open_session();
        s.execute("create table t (a int)").unwrap();
        let daemon = StorageDaemon::new(Arc::clone(&engine), wldb, DaemonConfig::default());
        daemon.add_rule(AlertRule::max_sessions(1));
        let _s2 = engine.open_session();
        let _s3 = engine.open_session();
        daemon.poll_once().unwrap();
        let alerts = daemon.take_alerts();
        assert_eq!(alerts.len(), 1, "alerts: {alerts:?}");
        assert!(alerts[0].message.contains("sessions"));
        // Rules only re-fire after the condition clears.
        daemon.poll_once().unwrap();
        assert!(daemon.take_alerts().is_empty());
    }
}
