#![forbid(unsafe_code)]
//! Offline vendored shim for the `rand` crate (0.8 API subset).
//!
//! The Ingot build image has no network access and no cargo registry cache, so
//! external crates are vendored as minimal local shims (see DESIGN.md §10.4).
//! This one covers exactly what the workload generator and benches use:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! integer and float ranges, and `Rng::gen::<f64>()`.
//!
//! The generator is a SplitMix64 — deterministic, seedable, and statistically
//! fine for synthetic workload generation. It is **not** the same stream as
//! the real `rand::rngs::SmallRng`, so seeds produce different (but equally
//! deterministic) workloads than they would with the registry crate.

use std::ops::{Range, RangeInclusive};

/// Trait for seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core randomness source (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that `Rng::gen` can produce (stand-in for the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Unbiased-enough sampling for workload generation: modulo reduction over a
// 64-bit draw. Bias is < span/2^64, irrelevant at the spans Ingot uses.
macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods over a randomness source (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Sample a value of type `T` (e.g. `gen::<f64>()` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small fast deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        SmallRng { state }
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&u));
            let i: i64 = rng.gen_range(-50..=50);
            assert!((-50..=50).contains(&i));
            let f: f64 = rng.gen_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..200 {
            match rng.gen_range(0u64..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }
}
