//! The wire-connection fleet registry behind `ima$connections`.
//!
//! One [`ConnShared`] per live connection, written by the handler thread and
//! read by the reaper (heartbeat expiry) and the `ima$connections` provider.
//! Everything the provider reads is either atomic or behind its own short
//! mutex — a fleet snapshot never blocks the statement path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ingot_common::{MonotonicClock, Row, Value};
use ingot_core::ActiveSession;
use parking_lot::Mutex;

use crate::socket::Stream;

/// Lifecycle state reported in `ima$connections.state`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Accepted, `hello` not yet completed.
    Handshake,
    /// Between statements, no open transaction.
    Idle,
    /// A statement is executing right now.
    Active,
    /// Between statements inside an explicit transaction.
    IdleInTxn,
    /// Server is draining; the connection is finishing up.
    Draining,
}

impl ConnState {
    /// The SQL-visible state label.
    pub fn as_str(self) -> &'static str {
        match self {
            ConnState::Handshake => "handshake",
            ConnState::Idle => "idle",
            ConnState::Active => "active",
            ConnState::IdleInTxn => "idle_in_txn",
            ConnState::Draining => "draining",
        }
    }
}

/// Per-connection record shared between handler, reaper and IMA provider.
#[derive(Debug)]
pub struct ConnShared {
    /// Registry key (not the engine session id).
    pub conn_id: u64,
    /// Transport peer label (`unix` or the TCP peer address).
    pub peer: String,
    /// Arrived over the Unix-domain listener (filesystem permissions gate
    /// those peers; admin verbs like `Shutdown` trust them by default).
    pub via_unix: bool,
    /// Client self-identification from `hello`.
    pub client: Mutex<String>,
    /// Engine session id (0 until the handshake opens the session).
    pub session_id: AtomicU64,
    /// Current lifecycle state.
    pub state: Mutex<ConnState>,
    /// Statement currently executing (raw text), `None` when idle.
    pub current_sql: Mutex<Option<String>>,
    /// Last frame observed from the peer, wall-clock nanoseconds.
    pub last_activity_ns: AtomicU64,
    /// When the open explicit transaction began; 0 = no transaction.
    pub txn_since_ns: AtomicU64,
    /// Raised by the reaper (heartbeat expiry) or the drain deadline; the
    /// handler abandons the connection at the next flag check.
    pub kill: AtomicBool,
    /// OS-handle clone used to shutdown a handler blocked in `read`.
    pub stream: Mutex<Option<Stream>>,
    /// The engine session's ASH slot (wait sink); fills `wait_event`.
    pub ash: Mutex<Option<Arc<ActiveSession>>>,
}

impl ConnShared {
    /// Mark peer traffic now (any frame counts as a heartbeat).
    pub fn touch(&self, now_ns: u64) {
        self.last_activity_ns.store(now_ns, Ordering::Relaxed);
    }

    /// Request an out-of-band close: flag + socket shutdown so a blocked
    /// `read` returns immediately.
    pub fn kill_now(&self) {
        self.kill.store(true, Ordering::Relaxed);
        if let Some(s) = self.stream.lock().as_ref() {
            s.shutdown();
        }
    }
}

/// All live connections of one server.
pub struct ConnRegistry {
    clock: MonotonicClock,
    conns: Mutex<HashMap<u64, Arc<ConnShared>>>,
    next_id: AtomicU64,
    /// Last instant the fleet was non-empty (or the server started); the
    /// idle auto-shutdown clock measures from here.
    last_nonempty_ns: AtomicU64,
}

impl ConnRegistry {
    /// Empty registry reading `clock`.
    pub fn new(clock: MonotonicClock) -> Self {
        let now = clock.now_nanos();
        ConnRegistry {
            clock,
            conns: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            last_nonempty_ns: AtomicU64::new(now),
        }
    }

    /// The registry's wall clock (shared with the engine).
    pub fn clock(&self) -> &MonotonicClock {
        &self.clock
    }

    /// Admit a freshly accepted connection.
    pub fn register(&self, peer: String, via_unix: bool, stream: Stream) -> Arc<ConnShared> {
        let now = self.clock.now_nanos();
        let shared = Arc::new(ConnShared {
            conn_id: self.next_id.fetch_add(1, Ordering::Relaxed),
            peer,
            via_unix,
            client: Mutex::new(String::new()),
            session_id: AtomicU64::new(0),
            state: Mutex::new(ConnState::Handshake),
            current_sql: Mutex::new(None),
            last_activity_ns: AtomicU64::new(now),
            txn_since_ns: AtomicU64::new(0),
            kill: AtomicBool::new(false),
            stream: Mutex::new(Some(stream)),
            ash: Mutex::new(None),
        });
        self.conns
            .lock()
            .insert(shared.conn_id, Arc::clone(&shared));
        self.last_nonempty_ns.store(now, Ordering::Relaxed);
        shared
    }

    /// Remove a fully torn-down connection. The fleet was non-empty until
    /// this very moment, so the idle clock restarts here either way.
    pub fn deregister(&self, conn_id: u64) {
        let mut conns = self.conns.lock();
        conns.remove(&conn_id);
        self.last_nonempty_ns
            .store(self.clock.now_nanos(), Ordering::Relaxed);
    }

    /// Live connection count.
    pub fn len(&self) -> usize {
        self.conns.lock().len()
    }

    /// Is the fleet empty?
    pub fn is_empty(&self) -> bool {
        self.conns.lock().is_empty()
    }

    /// Snapshot of every live connection (reaper, drain sweep).
    pub fn snapshot(&self) -> Vec<Arc<ConnShared>> {
        self.conns.lock().values().cloned().collect()
    }

    /// Nanoseconds the fleet has been continuously empty (0 when occupied).
    pub fn idle_ns(&self) -> u64 {
        if !self.is_empty() {
            return 0;
        }
        self.clock
            .now_nanos()
            .saturating_sub(self.last_nonempty_ns.load(Ordering::Relaxed))
    }

    /// The `ima$connections` rows: `session, peer, client, state,
    /// statement, wait_event, idle_ms, txn_age_ms` (see
    /// `ingot_core::connections_schema`).
    pub fn rows(&self) -> Vec<Row> {
        let now = self.clock.now_nanos();
        let mut out: Vec<(u64, Row)> = self
            .conns
            .lock()
            .values()
            .map(|c| {
                let wait = c
                    .ash
                    .lock()
                    .as_ref()
                    .and_then(|slot| slot.waits().current_wait())
                    .map(|(e, _)| Value::Str(e.name().to_string()))
                    .unwrap_or(Value::Null);
                let stmt = c
                    .current_sql
                    .lock()
                    .as_ref()
                    .map(|s| Value::Str(s.clone()))
                    .unwrap_or(Value::Null);
                let idle_ms =
                    now.saturating_sub(c.last_activity_ns.load(Ordering::Relaxed)) / 1_000_000;
                let txn_since = c.txn_since_ns.load(Ordering::Relaxed);
                let txn_age_ms = if txn_since == 0 {
                    -1
                } else {
                    (now.saturating_sub(txn_since) / 1_000_000) as i64
                };
                let row = Row::new(vec![
                    Value::Int(c.session_id.load(Ordering::Relaxed) as i64),
                    Value::Str(c.peer.clone()),
                    Value::Str(c.client.lock().clone()),
                    Value::Str(c.state.lock().as_str().to_string()),
                    stmt,
                    wait,
                    Value::Int(idle_ms as i64),
                    Value::Int(txn_age_ms),
                ]);
                (c.conn_id, row)
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out.into_iter().map(|(_, row)| row).collect()
    }
}
