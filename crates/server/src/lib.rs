#![deny(unsafe_code)]
//! `ingot-server`: the engine served over a Unix/TCP socket.
//!
//! The paper's integrated-monitoring loop assumes a long-lived server that
//! many clients share; this crate is that daemon. One process embeds one
//! [`Engine`], accepts wire connections (length-prefixed binary frames, see
//! `ingot_common::wire`), and multiplexes each connection onto its own
//! engine [`Session`] — so every wire client rides the shared plan cache,
//! the MVCC snapshots, the WAL group commit and the full `ima$…` monitoring
//! surface exactly as an embedded caller would.
//!
//! Lifecycle:
//!
//! * **Bind** ([`Server::bind`]) — stale-socket recovery is bind-race safe:
//!   connect-probe before unlink, re-probe instead of re-unlink on a
//!   post-unlink `AddrInUse` (see [`socket::bind`]).
//! * **Serve** ([`Server::run`]) — per-connection handler threads; a reaper
//!   thread drives ASH sampling, heartbeat expiry (orphaned connections are
//!   killed and their open transaction aborts, charged to
//!   `ima$transactions`), and the idle auto-shutdown clock.
//! * **Drain** — on SIGTERM ([`signal`]) or [`StopHandle::request_stop`]:
//!   stop accepting, let in-flight statements and open transactions finish
//!   up to [`ServerConfig::drain_deadline_ms`], then abort idle-in-txn
//!   stragglers. Acknowledged commits are durable before the ack leaves the
//!   server, so a drain never loses one.
//!
//! The fleet is observable as the `ima$connections` virtual table (peer,
//! state, current statement, wait event, idle time, transaction age),
//! attached through the engine's swappable provider slot so an in-process
//! restart serves fresh rows.

pub mod registry;
pub mod signal;
pub mod socket;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ingot_common::wire::{self, Request, Response, WireError, PROTOCOL_VERSION};
use ingot_common::{Error, Result, StatementResult};
use ingot_core::{Engine, Prepared};
use ingot_trace::{MetricsSnapshot, ServerStats};
use parking_lot::{Condvar, Mutex};

use registry::{ConnRegistry, ConnShared, ConnState};
use socket::{Listener, SocketSpec, Stream};

/// Handler read-timeout: how often a blocked connection checks its kill /
/// drain flags.
const READ_POLL_MS: u64 = 200;

/// Accept-loop and reaper tick.
const TICK_MS: u64 = 20;

/// Extra grace after the drain deadline for killed handlers to unwind.
const KILL_GRACE_MS: u64 = 2_000;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub socket: SocketSpec,
    /// A connection with no traffic for this long (and no statement in
    /// flight) is treated as orphaned and reaped. Clients idle longer than
    /// this must send `Heartbeat` frames.
    pub heartbeat_timeout_ms: u64,
    /// Exit after the fleet has been empty this long; 0 disables.
    pub idle_shutdown_ms: u64,
    /// Graceful-drain budget: how long open transactions may keep running
    /// after a stop request before they are aborted.
    pub drain_deadline_ms: u64,
    /// Per-frame size ceiling.
    pub max_frame_bytes: u32,
    /// Honour the `Shutdown` verb from TCP peers. Unix-socket peers may
    /// always stop the server (filesystem permissions already gate them);
    /// over TCP the verb is refused unless this opts in — otherwise any
    /// client that can reach the port could terminate the shared process.
    pub allow_remote_shutdown: bool,
}

impl ServerConfig {
    /// Defaults for `socket`: 5 s heartbeat timeout, no idle shutdown,
    /// 1 s drain deadline.
    pub fn new(socket: SocketSpec) -> Self {
        ServerConfig {
            socket,
            heartbeat_timeout_ms: 5_000,
            idle_shutdown_ms: 0,
            drain_deadline_ms: 1_000,
            max_frame_bytes: wire::MAX_FRAME_BYTES,
            allow_remote_shutdown: false,
        }
    }
}

/// Why [`Server::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// A stop was requested (signal, `Shutdown` verb or [`StopHandle`]) and
    /// the fleet drained.
    Drained,
    /// The fleet stayed empty past [`ServerConfig::idle_shutdown_ms`].
    IdleShutdown,
}

/// Condvar-based pacing (the workspace bans `std::thread::sleep`): waits
/// are interruptible, so a stop request shortens every pending pause.
struct Pacer {
    m: Mutex<()>,
    cv: Condvar,
}

impl Pacer {
    fn new() -> Self {
        Pacer {
            m: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn pause(&self, ms: u64) {
        let mut g = self.m.lock();
        let _ = self.cv.wait_for(&mut g, Duration::from_millis(ms));
    }

    fn notify(&self) {
        self.cv.notify_all();
    }
}

/// Everything the handler and reaper threads share.
struct ServerCtx {
    engine: Arc<Engine>,
    registry: Arc<ConnRegistry>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    pacer: Arc<Pacer>,
    max_frame: u32,
    allow_remote_shutdown: bool,
}

/// Requests a running server to drain and exit; cloneable, cheap, safe to
/// use from any thread (tests stand in for SIGTERM with this).
#[derive(Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    pacer: Arc<Pacer>,
}

impl StopHandle {
    /// Trigger the same graceful drain a SIGTERM would.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.pacer.notify();
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    config: ServerConfig,
    listener: Listener,
    ctx: Arc<ServerCtx>,
}

impl Server {
    /// Bind `config.socket` (with stale-socket recovery) and attach the
    /// `ima$connections` provider to `engine`. The server does not accept
    /// until [`run`](Self::run).
    pub fn bind(engine: Arc<Engine>, config: ServerConfig) -> Result<Server> {
        let listener = socket::bind(&config.socket)?;
        let registry = Arc::new(ConnRegistry::new(*engine.wall_clock()));
        let rows_src = Arc::clone(&registry);
        engine.attach_connections_provider(Arc::new(move || rows_src.rows()))?;
        let ctx = Arc::new(ServerCtx {
            engine,
            registry,
            stats: Arc::new(ServerStats::new()),
            stop: Arc::new(AtomicBool::new(false)),
            draining: Arc::new(AtomicBool::new(false)),
            pacer: Arc::new(Pacer::new()),
            max_frame: config.max_frame_bytes,
            allow_remote_shutdown: config.allow_remote_shutdown,
        });
        Ok(Server {
            config,
            listener,
            ctx,
        })
    }

    /// The wire-traffic counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.ctx.stats
    }

    /// The embedded engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.ctx.engine
    }

    /// The spec actually bound (a `tcp:…:0` request resolves to the
    /// kernel-assigned port).
    pub fn local_spec(&self) -> SocketSpec {
        self.listener.local_spec()
    }

    /// A handle that triggers graceful drain from another thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            stop: Arc::clone(&self.ctx.stop),
            pacer: Arc::clone(&self.ctx.pacer),
        }
    }

    /// Engine metrics merged with this server's wire counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.ctx.engine.metrics_snapshot();
        self.ctx.stats.contribute(&mut snap);
        snap
    }

    fn stop_requested(&self) -> bool {
        self.ctx.stop.load(Ordering::Relaxed) || signal::term_requested()
    }

    /// Accept and serve until a stop request or idle shutdown, then drain.
    ///
    /// Drain sequence: close the listener (new connects are refused and the
    /// Unix socket file unlinked — a later starter's connect-probe gets
    /// "refused" and recovers), mark the fleet draining (handlers say
    /// `Goodbye` to idle connections and let in-flight statements and open
    /// transactions finish), and after
    /// [`drain_deadline_ms`](ServerConfig::drain_deadline_ms) abort
    /// idle-in-txn stragglers by force-closing them — Session teardown rolls
    /// the transaction back, charged to `ima$transactions`. A best-effort
    /// checkpoint then shrinks the restart's WAL replay.
    pub fn run(self) -> Result<RunOutcome> {
        self.listener.set_nonblocking()?;
        let handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let reaper_done = Arc::new(AtomicBool::new(false));
        let reaper = {
            let ctx = Arc::clone(&self.ctx);
            let done = Arc::clone(&reaper_done);
            let heartbeat_ns = self.config.heartbeat_timeout_ms.saturating_mul(1_000_000);
            std::thread::spawn(move || reaper_loop(&ctx, &done, heartbeat_ns))
        };

        let via_unix = matches!(self.listener, Listener::Unix(..));
        let outcome = loop {
            if self.stop_requested() {
                break RunOutcome::Drained;
            }
            if self.config.idle_shutdown_ms > 0
                && self.ctx.registry.idle_ns()
                    >= self.config.idle_shutdown_ms.saturating_mul(1_000_000)
            {
                break RunOutcome::IdleShutdown;
            }
            match self.listener.accept() {
                Ok(Some((stream, peer))) => {
                    self.ctx
                        .stats
                        .connections_opened
                        .fetch_add(1, Ordering::Relaxed);
                    match stream.try_clone() {
                        Ok(clone) => {
                            let shared = self.ctx.registry.register(peer, via_unix, clone);
                            let ctx = Arc::clone(&self.ctx);
                            handles.lock().push(std::thread::spawn(move || {
                                serve_conn(&ctx, &shared, stream);
                            }));
                        }
                        Err(_) => drop(stream),
                    }
                }
                Ok(None) => self.ctx.pacer.pause(TICK_MS),
                // Transient accept failures (EMFILE pressure, aborted
                // connects) must not take the whole server down.
                Err(_) => self.ctx.pacer.pause(TICK_MS),
            }
        };

        // --- drain ---
        self.ctx.draining.store(true, Ordering::Relaxed);
        self.listener.close();
        self.ctx.pacer.notify();
        let clock = *self.ctx.registry.clock();
        let deadline = clock.now_nanos() + self.config.drain_deadline_ms.saturating_mul(1_000_000);
        while !self.ctx.registry.is_empty() && clock.now_nanos() < deadline {
            self.ctx.pacer.pause(10);
        }
        for conn in self.ctx.registry.snapshot() {
            conn.kill_now();
        }
        let grace = deadline + KILL_GRACE_MS * 1_000_000;
        while !self.ctx.registry.is_empty() && clock.now_nanos() < grace {
            self.ctx.pacer.pause(10);
        }
        reaper_done.store(true, Ordering::Relaxed);
        self.ctx.pacer.notify();
        let _ = reaper.join();
        for h in handles.lock().drain(..) {
            let _ = h.join();
        }
        let _ = self.ctx.engine.checkpoint();
        self.ctx.engine.detach_connections_provider();
        Ok(outcome)
    }
}

/// ASH sampling, heartbeat expiry and nothing else — the reaper never
/// touches the statement path.
fn reaper_loop(ctx: &ServerCtx, done: &AtomicBool, heartbeat_ns: u64) {
    while !done.load(Ordering::Relaxed) {
        ctx.pacer.pause(TICK_MS);
        let now = ctx.registry.clock().now_nanos();
        if let Some(sampler) = ctx.engine.ash_sampler() {
            sampler.sample_if_due(now);
        }
        for conn in ctx.registry.snapshot() {
            // A connection mid-statement is alive even when silent: the
            // client is waiting for our response, not heartbeating.
            if *conn.state.lock() == ConnState::Active {
                continue;
            }
            let last = conn.last_activity_ns.load(Ordering::Relaxed);
            if now.saturating_sub(last) > heartbeat_ns && !conn.kill.load(Ordering::Relaxed) {
                conn.kill_now();
                ctx.stats.connections_reaped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Full connection lifecycle: handshake, serve, teardown. Teardown always
/// runs — dropping the engine [`Session`] aborts an open transaction
/// (charged to `ima$transactions`) and releases its locks, which is exactly
/// the orphan-reap path.
fn serve_conn(ctx: &Arc<ServerCtx>, shared: &Arc<ConnShared>, mut stream: Stream) {
    let _ = handshake_and_serve(ctx, shared, &mut stream);
    shared.stream.lock().take();
    ctx.registry.deregister(shared.conn_id);
    ctx.stats.connections_closed.fetch_add(1, Ordering::Relaxed);
}

/// Read one frame, treating poll timeouts as flag-check ticks. `Ok(None)`
/// means the connection is over (EOF, kill, or drain while idle).
fn read_or_tick(
    ctx: &ServerCtx,
    shared: &ConnShared,
    stream: &mut Stream,
    in_txn: impl Fn() -> bool,
) -> Result<Option<(u8, Vec<u8>)>> {
    loop {
        if shared.kill.load(Ordering::Relaxed) {
            return Ok(None);
        }
        if ctx.draining.load(Ordering::Relaxed) || ctx.stop.load(Ordering::Relaxed) {
            *shared.state.lock() = ConnState::Draining;
            if !in_txn() {
                // Idle and not mid-transaction: say goodbye and leave. A
                // connection inside a transaction keeps serving until it
                // commits/rolls back or the drain deadline kills it.
                let _ = wire::write_response(stream, &Response::Goodbye);
                return Ok(None);
            }
        }
        match wire::read_frame(stream, ctx.max_frame) {
            Ok(frame) => return Ok(frame),
            // Read timeout: no bytes in READ_POLL_MS. Loop to re-check
            // flags. (A timeout *mid-frame* would lose sync, but the next
            // decode then fails and closes the connection — acceptable for
            // a peer that stalls mid-frame for 200 ms.)
            Err(Error::TransientIo(_)) => continue,
            Err(e) => return Err(e),
        }
    }
}

fn send(ctx: &ServerCtx, stream: &mut Stream, resp: &Response) -> Result<()> {
    let (mut op, mut body) = resp.to_frame();
    let mut is_err = matches!(resp, Response::Err(_));
    // A response that does not fit under the frame cap (a giant result set,
    // typically) must not reach the wire: the peer would reject the length
    // prefix as stream corruption and the connection would die. Replace it
    // with a clean, small error frame instead.
    if 1 + body.len() as u64 > u64::from(ctx.max_frame.min(wire::MAX_FRAME_BYTES)) {
        let e = Error::execution(format!(
            "response of {} bytes exceeds the {}-byte frame cap; narrow the \
             result set (e.g. with LIMIT)",
            1 + body.len(),
            ctx.max_frame.min(wire::MAX_FRAME_BYTES),
        ));
        (op, body) = Response::Err(WireError::from_error(&e)).to_frame();
        is_err = true;
    }
    if is_err {
        ctx.stats.errors_sent.fetch_add(1, Ordering::Relaxed);
    }
    ctx.stats.frames_out.fetch_add(1, Ordering::Relaxed);
    ctx.stats
        .bytes_out
        .fetch_add(body.len() as u64, Ordering::Relaxed);
    wire::write_frame(stream, op, &body)
}

/// Execute one statement on behalf of the wire client, with the fleet-view
/// bookkeeping (state `active`, current statement text) around it.
fn run_statement(
    ctx: &ServerCtx,
    shared: &ConnShared,
    sql: &str,
    exec: impl FnOnce() -> Result<StatementResult>,
) -> Response {
    *shared.state.lock() = ConnState::Active;
    *shared.current_sql.lock() = Some(sql.to_string());
    ctx.stats.statements_served.fetch_add(1, Ordering::Relaxed);
    let result = exec();
    *shared.current_sql.lock() = None;
    match result {
        Ok(r) => Response::Rows(r),
        Err(e) => Response::Err(WireError::from_error(&e)),
    }
}

fn ok_or_err(result: Result<()>) -> Response {
    match result {
        Ok(()) => Response::Ok,
        Err(e) => Response::Err(WireError::from_error(&e)),
    }
}

fn handshake_and_serve(
    ctx: &Arc<ServerCtx>,
    shared: &Arc<ConnShared>,
    stream: &mut Stream,
) -> Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(READ_POLL_MS)))?;

    // --- handshake: the first frame must be Hello with our exact version.
    let Some((op, body)) = read_or_tick(ctx, shared, stream, || false)? else {
        return Ok(());
    };
    ctx.stats.frames_in.fetch_add(1, Ordering::Relaxed);
    ctx.stats
        .bytes_in
        .fetch_add(body.len() as u64, Ordering::Relaxed);
    let hello = Request::decode(op, &body)?;
    let Request::Hello { version, client } = hello else {
        let e = Error::protocol("first frame must be hello");
        let _ = send(ctx, stream, &Response::Err(WireError::from_error(&e)));
        return Err(e);
    };
    if version != PROTOCOL_VERSION {
        let e = Error::protocol(format!(
            "protocol version mismatch: client speaks {version}, server speaks \
             {PROTOCOL_VERSION}"
        ));
        let _ = send(ctx, stream, &Response::Err(WireError::from_error(&e)));
        return Err(e);
    }
    *shared.client.lock() = client;

    let session = ctx.engine.open_session();
    shared
        .session_id
        .store(session.id().raw(), Ordering::Relaxed);
    *shared.ash.lock() = session.ash_slot().cloned();
    *shared.state.lock() = ConnState::Idle;
    shared.touch(ctx.registry.clock().now_nanos());
    send(
        ctx,
        stream,
        &Response::HelloOk {
            version: PROTOCOL_VERSION,
            session_id: session.id().raw(),
        },
    )?;

    // --- serve. Prepared handles borrow `session`, so the map lives in
    // this same frame (declared after the session: dropped first).
    let mut prepared: HashMap<u64, Prepared<'_>> = HashMap::new();
    let mut next_handle: u64 = 1;

    loop {
        let Some((op, body)) = read_or_tick(ctx, shared, stream, || session.in_transaction())?
        else {
            return Ok(());
        };
        ctx.stats.frames_in.fetch_add(1, Ordering::Relaxed);
        ctx.stats
            .bytes_in
            .fetch_add(body.len() as u64, Ordering::Relaxed);
        shared.touch(ctx.registry.clock().now_nanos());
        let req = match Request::decode(op, &body) {
            Ok(r) => r,
            Err(e) => {
                let _ = send(ctx, stream, &Response::Err(WireError::from_error(&e)));
                return Err(e);
            }
        };
        // Every verb — not just statements — runs as `active`, so the reaper
        // never mistakes a commit (or begin/rollback/set) stalled past the
        // heartbeat timeout for an orphan and kills it mid-verb.
        *shared.state.lock() = ConnState::Active;
        let resp = match req {
            Request::Hello { .. } => {
                Response::Err(WireError::from_error(&Error::protocol("duplicate hello")))
            }
            Request::Prepare { sql } => match session.prepare(&sql) {
                Ok(p) => {
                    let id = next_handle;
                    next_handle += 1;
                    let param_count = p.param_count() as u64;
                    prepared.insert(id, p);
                    Response::PreparedOk { id, param_count }
                }
                Err(e) => Response::Err(WireError::from_error(&e)),
            },
            Request::ExecutePrepared { id, params } => match prepared.get(&id) {
                Some(p) => run_statement(ctx, shared, p.text(), || p.execute(&params)),
                None => Response::Err(WireError::from_error(&Error::execution(format!(
                    "unknown prepared handle {id}"
                )))),
            },
            Request::Execute { sql, params } => {
                if params.is_empty() {
                    run_statement(ctx, shared, &sql, || session.execute(&sql))
                } else {
                    run_statement(ctx, shared, &sql, || {
                        session.prepare(&sql)?.execute(&params)
                    })
                }
            }
            Request::Query { sql } => run_statement(ctx, shared, &sql, || session.execute(&sql)),
            Request::Set { name, value } => {
                ok_or_err(session.set_option(&name, &value).map(|_| ()))
            }
            Request::Begin => ok_or_err(session.begin()),
            Request::Commit => ok_or_err(session.commit()),
            Request::Rollback => ok_or_err(session.rollback()),
            Request::ClosePrepared { id } => {
                prepared.remove(&id);
                Response::Ok
            }
            Request::Heartbeat => {
                ctx.stats.heartbeats.fetch_add(1, Ordering::Relaxed);
                Response::Pong
            }
            Request::Close => {
                let _ = send(ctx, stream, &Response::Goodbye);
                return Ok(());
            }
            Request::Shutdown => {
                if shared.via_unix || ctx.allow_remote_shutdown {
                    let _ = send(ctx, stream, &Response::Goodbye);
                    ctx.stop.store(true, Ordering::Relaxed);
                    ctx.pacer.notify();
                    return Ok(());
                }
                // Any client that can reach a TCP port must not be able to
                // terminate the shared server; refuse but keep serving.
                Response::Err(WireError::from_error(&Error::execution(
                    "shutdown refused: only unix-socket peers may stop this \
                     server (start it with --allow-remote-shutdown to permit \
                     tcp clients)",
                )))
            }
        };
        // Fleet-view bookkeeping: transaction age + idle state. The verb may
        // have run longer than the heartbeat budget, so re-stamp activity
        // *after* it finishes — the flip back to idle below must never expose
        // a pre-execution timestamp to the reaper.
        let now = ctx.registry.clock().now_nanos();
        shared.touch(now);
        let in_txn = session.in_transaction();
        if in_txn {
            let _ =
                shared
                    .txn_since_ns
                    .compare_exchange(0, now, Ordering::Relaxed, Ordering::Relaxed);
        } else {
            shared.txn_since_ns.store(0, Ordering::Relaxed);
        }
        *shared.state.lock() = if ctx.draining.load(Ordering::Relaxed) {
            ConnState::Draining
        } else if in_txn {
            ConnState::IdleInTxn
        } else {
            ConnState::Idle
        };
        send(ctx, stream, &resp)?;
    }
}

/// One-call convenience used by the daemon binary and tests: build an
/// engine per `opts`, bind, install nothing (signals are the binary's
/// concern), and return the bound server.
pub fn serve_engine(engine: Arc<Engine>, config: ServerConfig) -> Result<Server> {
    Server::bind(engine, config)
}
