//! SIGTERM / SIGINT → graceful-drain flag.
//!
//! The workspace bans `unsafe` everywhere (`#![forbid(unsafe_code)]` in
//! every other crate root); this crate relaxes that to `#![deny]` solely
//! for this module, because registering a signal handler is impossible
//! without FFI and the container image carries no `libc`/`signal-hook`
//! crate to delegate to. The exemption is as small as it can be made:
//!
//! * one `extern "C"` declaration of POSIX `signal(2)` from the platform
//!   libc the binary already links against,
//! * a handler that performs exactly one async-signal-safe operation — a
//!   relaxed store to a `static AtomicBool`.
//!
//! Everything else (drain sequencing, deadline handling) happens on normal
//! threads that poll [`term_requested`]. Tests never raise real signals;
//! they call [`request_term`] which stores the same flag.

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX signal numbers (Linux; identical on the BSDs for these two).
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_signum: i32) {
    // Async-signal-safe: a single atomic store, nothing else.
    TERM.store(true, Ordering::Relaxed);
}

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        // POSIX signal(2). The return value (previous handler) is unused.
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install(signum: i32, handler: extern "C" fn(i32)) {
        // SAFETY: `signal` is the libc the binary links against; the handler
        // is a plain `extern "C" fn(i32)` that only stores an AtomicBool,
        // which is async-signal-safe. No data is passed across the boundary.
        unsafe {
            signal(signum, handler);
        }
    }
}

/// Install the SIGTERM/SIGINT handler. Idempotent; call once at startup of
/// the daemon binary. In-process servers (tests, embedded supervisors)
/// skip this and use [`request_term`] / their per-server stop flag.
pub fn install_term_handler() {
    ffi::install(SIGTERM, on_term);
    ffi::install(SIGINT, on_term);
}

/// Has a termination signal (or [`request_term`]) been observed?
pub fn term_requested() -> bool {
    TERM.load(Ordering::Relaxed)
}

/// Raise the termination flag without a signal (tests, admin `Shutdown`).
pub fn request_term() {
    TERM.store(true, Ordering::Relaxed);
}

/// Clear the flag (tests that run several servers in one process).
pub fn reset_term() {
    TERM.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        reset_term();
        assert!(!term_requested());
        request_term();
        assert!(term_requested());
        reset_term();
        assert!(!term_requested());
    }
}
