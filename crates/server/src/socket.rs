//! Server-side transport: listeners plus bind-race-safe stale-socket
//! recovery. The connected-stream types live in [`ingot_common::net`]
//! (shared with `ingot-client`).

use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;

use ingot_common::net::connect as probe_connect;
use ingot_common::{Error, Result};

pub use ingot_common::net::{SocketSpec, Stream};

/// A bound listener over either transport.
pub enum Listener {
    /// Unix-domain listener; the path is kept for unlink-on-close.
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Accept one connection; `Ok(None)` when nonblocking and nothing is
    /// pending. Returns the stream plus a peer label for `ima$connections`.
    pub fn accept(&self) -> Result<Option<(Stream, String)>> {
        match self {
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Ok(Some((Stream::Unix(s), "unix".to_string()))),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e.into()),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, peer)) => {
                    s.set_nodelay(true).ok();
                    Ok(Some((Stream::Tcp(s), peer.to_string())))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e.into()),
            },
        }
    }

    /// The spec actually bound — resolves a `tcp:…:0` request to the
    /// kernel-assigned port, so tests and spawners can connect back.
    pub fn local_spec(&self) -> SocketSpec {
        match self {
            Listener::Unix(_, path) => SocketSpec::Unix(path.clone()),
            Listener::Tcp(l) => match l.local_addr() {
                Ok(addr) => SocketSpec::Tcp(addr.to_string()),
                Err(_) => SocketSpec::Tcp(String::new()),
            },
        }
    }

    /// Switch the listener to nonblocking accepts.
    pub fn set_nonblocking(&self) -> Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
            Listener::Tcp(l) => l.set_nonblocking(true)?,
        }
        Ok(())
    }

    /// Stop listening; unlinks a Unix socket path.
    pub fn close(&self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Bind `spec`, recovering a *stale* Unix socket file (a previous server
/// died without unlinking) without racing a *live* server.
///
/// The order matters: probe first, then unlink, then bind — and on a
/// post-unlink `AddrInUse`, probe again instead of unlinking again. Two
/// servers started concurrently thus converge on exactly one bound listener
/// and one already-running error; an unconditional unlink could instead
/// delete the *winner's* freshly bound socket.
pub fn bind(spec: &SocketSpec) -> Result<Listener> {
    match spec {
        SocketSpec::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str()).map_err(|e| {
                if e.kind() == std::io::ErrorKind::AddrInUse {
                    Error::daemon(format!("another server is live on tcp:{addr}"))
                } else {
                    e.into()
                }
            })?;
            Ok(Listener::Tcp(l))
        }
        SocketSpec::Unix(path) => {
            match UnixListener::bind(path) {
                Ok(l) => return Ok(Listener::Unix(l, path.clone())),
                Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {}
                Err(e) => return Err(e.into()),
            }
            // The path exists. Live server or stale file? Connect-probe.
            if probe_connect(spec).is_ok() {
                return Err(Error::daemon(format!(
                    "another server is live on unix:{}",
                    path.display()
                )));
            }
            // Refused/errored: stale. Unlink and take one more bind attempt;
            // a concurrent starter may win the race, in which case the
            // re-probe classifies it as live.
            let _ = std::fs::remove_file(path);
            match UnixListener::bind(path) {
                Ok(l) => Ok(Listener::Unix(l, path.clone())),
                Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                    if probe_connect(spec).is_ok() {
                        Err(Error::daemon(format!(
                            "another server is live on unix:{}",
                            path.display()
                        )))
                    } else {
                        Err(Error::Io(format!(
                            "socket {} stays bound but unconnectable",
                            path.display()
                        )))
                    }
                }
                Err(e) => Err(e.into()),
            }
        }
    }
}

/// Probe whether a server is accepting on `spec` without handshaking.
pub fn probe(spec: &SocketSpec) -> bool {
    probe_connect(spec).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_socket_is_recovered_live_socket_is_not() {
        let dir = std::env::temp_dir().join(format!("ingot-sock-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("srv.sock");
        let spec = SocketSpec::Unix(path.clone());
        // Fake a stale socket: bind then drop the listener without unlink.
        let stale = UnixListener::bind(&path).unwrap();
        drop(stale);
        assert!(path.exists(), "dropping a listener leaves the file behind");
        // Recovery: probe finds nobody home, unlink + rebind succeeds.
        let live = bind(&spec).expect("stale socket must be recovered");
        // A second bind while the first is live must refuse, not steal.
        let err = match bind(&spec) {
            Ok(_) => panic!("live socket must not be stolen"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("live"), "{err}");
        live.close();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
