//! The `ingot-server` daemon binary.
//!
//! ```text
//! ingot-server --socket unix:/tmp/ingot.sock [--data DIR]
//!              [--heartbeat-timeout-ms N] [--idle-shutdown-ms N]
//!              [--drain-deadline-ms N] [--allow-remote-shutdown] [--original]
//! ```
//!
//! `--data DIR` makes the engine file-backed under `DIR` (pages + WAL), so
//! a restart recovers acknowledged commits; without it the database is
//! in-memory and dies with the process. `--original` builds the unmonitored
//! paper baseline (no `ima$…` tables, no wait events). SIGTERM/SIGINT
//! trigger graceful drain; exit code 0 means every connection was drained
//! or the idle-shutdown clock expired.

use std::process::ExitCode;
use std::sync::Arc;

use ingot_common::EngineConfig;
use ingot_core::Engine;
use ingot_server::socket::SocketSpec;
use ingot_server::{signal, Server, ServerConfig};

struct Args {
    socket: SocketSpec,
    data: Option<std::path::PathBuf>,
    heartbeat_timeout_ms: u64,
    idle_shutdown_ms: u64,
    drain_deadline_ms: u64,
    allow_remote_shutdown: bool,
    original: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut socket = None;
    let mut data = None;
    let mut heartbeat_timeout_ms = 5_000;
    let mut idle_shutdown_ms = 0;
    let mut drain_deadline_ms = 1_000;
    let mut allow_remote_shutdown = false;
    let mut original = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--socket" => socket = Some(SocketSpec::parse(&value("--socket")?)),
            "--data" => data = Some(std::path::PathBuf::from(value("--data")?)),
            "--heartbeat-timeout-ms" => {
                heartbeat_timeout_ms = value("--heartbeat-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-timeout-ms: {e}"))?
            }
            "--idle-shutdown-ms" => {
                idle_shutdown_ms = value("--idle-shutdown-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-shutdown-ms: {e}"))?
            }
            "--drain-deadline-ms" => {
                drain_deadline_ms = value("--drain-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--drain-deadline-ms: {e}"))?
            }
            "--allow-remote-shutdown" => allow_remote_shutdown = true,
            "--original" => original = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        socket: socket.ok_or("missing required --socket <spec>")?,
        data,
        heartbeat_timeout_ms,
        idle_shutdown_ms,
        drain_deadline_ms,
        allow_remote_shutdown,
        original,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ingot-server: {e}");
            return ExitCode::from(2);
        }
    };
    signal::install_term_handler();
    let config = if args.original {
        EngineConfig::original()
    } else {
        EngineConfig::monitoring()
    };
    let mut builder = Engine::builder().config(config);
    if let Some(dir) = &args.data {
        builder = builder.path(dir.clone());
    }
    let engine: Arc<Engine> = match builder.build() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("ingot-server: engine startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut server_config = ServerConfig::new(args.socket.clone());
    server_config.heartbeat_timeout_ms = args.heartbeat_timeout_ms;
    server_config.idle_shutdown_ms = args.idle_shutdown_ms;
    server_config.drain_deadline_ms = args.drain_deadline_ms;
    server_config.allow_remote_shutdown = args.allow_remote_shutdown;
    let server = match Server::bind(engine, server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ingot-server: bind {} failed: {e}", args.socket);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("ingot-server: serving on {}", args.socket);
    match server.run() {
        Ok(outcome) => {
            eprintln!("ingot-server: exiting ({outcome:?})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ingot-server: {e}");
            ExitCode::FAILURE
        }
    }
}
