//! In-process fleet tests: many wire clients multiplexed onto one server,
//! observable through `ima$connections`, with a graceful drain that loses
//! no acknowledged commit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use ingot_client::ClientConnection;
use ingot_common::wire::{self, Request, Response};
use ingot_common::{Connection, EngineConfig, SocketSpec, Value};
use ingot_core::Engine;
use ingot_server::{RunOutcome, Server, ServerConfig, StopHandle};
use parking_lot::{Condvar, Mutex};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ingot-fleet-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Interruptible pause (the workspace bans `std::thread::sleep`).
fn pace(ms: u64) {
    let m = Mutex::new(());
    let cv = Condvar::new();
    let mut g = m.lock();
    let _ = cv.wait_for(&mut g, Duration::from_millis(ms));
}

fn connect_retry(spec: &SocketSpec, name: &str) -> ClientConnection {
    for _ in 0..5_000 {
        match ClientConnection::connect_with_name(spec, name) {
            Ok(c) => return c,
            Err(_) => pace(2),
        }
    }
    panic!("server never came up on {spec}");
}

struct Running {
    stop: StopHandle,
    join: std::thread::JoinHandle<ingot_common::Result<RunOutcome>>,
}

fn start(engine: &Arc<Engine>, config: ServerConfig) -> Running {
    let server = Server::bind(Arc::clone(engine), config).expect("bind");
    let stop = server.stop_handle();
    let join = std::thread::spawn(move || server.run());
    Running { stop, join }
}

#[test]
fn fleet_of_64_wire_clients_drains_without_losing_acked_commits() {
    const WORKERS: usize = 64;
    const ROWS_PER_WORKER: i64 = 8;

    let data = temp_dir("data");
    let sock = temp_dir("sock").join("srv.sock");
    let spec = SocketSpec::Unix(sock);

    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .path(data.clone())
        .build()
        .unwrap();
    let mut cfg = ServerConfig::new(spec.clone());
    cfg.heartbeat_timeout_ms = 60_000;
    cfg.drain_deadline_ms = 5_000;
    let running = start(&engine, cfg);

    let admin = connect_retry(&spec, "admin");
    admin
        .execute("create table kv (id int not null primary key, v int)")
        .expect("create table over the wire");

    // 64 concurrent wire clients: each prepares once (shared plan cache),
    // inserts its slice, reads one row back, then parks at the barrier so
    // the whole fleet is provably alive at the same instant.
    let barrier = Arc::new(Barrier::new(WORKERS + 1));
    let release = Arc::new(Barrier::new(WORKERS + 1));
    let acked = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let spec = spec.clone();
        let barrier = Arc::clone(&barrier);
        let release = Arc::clone(&release);
        let acked = Arc::clone(&acked);
        workers.push(std::thread::spawn(move || {
            let conn = connect_retry(&spec, &format!("worker-{w}"));
            {
                let ins = conn.prepare("insert into kv values ($1, $2)").unwrap();
                let sel = conn.prepare("select v from kv where id = $1").unwrap();
                for j in 0..ROWS_PER_WORKER {
                    let id = (w as i64) * ROWS_PER_WORKER + j;
                    ins.execute(&[Value::Int(id), Value::Int(id * 10)])
                        .expect("insert acked");
                    acked.fetch_add(1, Ordering::Relaxed);
                    let r = sel.execute(&[Value::Int(id)]).expect("point select");
                    assert_eq!(r.rows[0].get(0).as_int(), Some(id * 10));
                }
            }
            barrier.wait();
            // Main inspects ima$connections while everyone holds here.
            release.wait();
            drop(conn);
        }));
    }
    barrier.wait();

    // The whole fleet is connected: the virtual table must report every
    // wire client (64 workers + this admin connection) as live sessions.
    let r = admin
        .query("select session, client, state from ima$connections")
        .expect("fleet view");
    assert!(
        r.rows.len() > WORKERS,
        "ima$connections reports {} rows, want >= {}",
        r.rows.len(),
        WORKERS + 1
    );
    let workers_seen = r
        .rows
        .iter()
        .filter(|row| matches!(row.get(1), Value::Str(c) if c.starts_with("worker-")))
        .count();
    assert_eq!(workers_seen, WORKERS, "every worker identifies itself");

    release.wait();
    for w in workers {
        w.join().unwrap();
    }
    let total_acked = acked.load(Ordering::Relaxed);
    assert_eq!(total_acked, (WORKERS as u64) * (ROWS_PER_WORKER as u64));

    // Graceful drain: same path a SIGTERM takes.
    running.stop.request_stop();
    let outcome = running.join.join().unwrap().expect("run");
    assert_eq!(outcome, RunOutcome::Drained);
    engine.detach_connections_provider();
    drop(admin);
    drop(engine);

    // Restart from disk: every acknowledged commit must have survived.
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .path(data)
        .build()
        .unwrap();
    let session = engine.open_session();
    let r = session.execute("select count(*) from kv").unwrap();
    assert_eq!(
        r.rows[0].get(0).as_int(),
        Some(total_acked as i64),
        "acked commits lost across drain + restart"
    );
}

#[test]
fn orphan_is_reaped_its_txn_aborted_and_its_locks_released() {
    let sock = temp_dir("reap").join("srv.sock");
    let spec = SocketSpec::Unix(sock);
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let mut cfg = ServerConfig::new(spec.clone());
    cfg.heartbeat_timeout_ms = 300;
    let running = start(&engine, cfg);

    let admin = connect_retry(&spec, "admin");
    admin
        .execute("create table kv (id int not null primary key, v int)")
        .unwrap();
    admin.execute("insert into kv values (1, 10)").unwrap();
    let aborted_before = aborted_total(&admin);

    // The victim opens a transaction, takes the row lock… and goes silent
    // (heartbeats disabled + mem::forget skips the Drop close — from the
    // server's side this is a vanished client, not an orderly disconnect).
    let victim = ClientConnection::connect_with(&spec, "victim", 0).expect("victim connects");
    victim.begin().unwrap();
    victim.execute("update kv set v = 20 where id = 1").unwrap();
    std::mem::forget(victim);

    // Heartbeat expiry (300 ms) must kill the orphan; Session teardown
    // rolls its transaction back and releases the row lock, after which
    // this update stops conflicting.
    let mut released = false;
    for _ in 0..200 {
        match admin.execute("update kv set v = 30 where id = 1") {
            Ok(_) => {
                released = true;
                break;
            }
            Err(_) => pace(20),
        }
    }
    assert!(released, "orphan's row lock was never released");
    let r = admin.query("select v from kv where id = 1").unwrap();
    assert_eq!(
        r.rows[0].get(0).as_int(),
        Some(30),
        "the orphan's uncommitted update must be rolled back, not committed"
    );
    assert!(
        aborted_total(&admin) > aborted_before,
        "the reaped orphan's abort must be charged to ima$transactions"
    );

    running.stop.request_stop();
    assert_eq!(running.join.join().unwrap().unwrap(), RunOutcome::Drained);
}

fn aborted_total(conn: &ClientConnection) -> i64 {
    let r = conn
        .query("select value from ima$transactions where metric = 'aborted_total'")
        .unwrap();
    r.rows[0].get(0).as_int().unwrap()
}

#[test]
fn version_mismatch_is_rejected_with_a_protocol_error() {
    let sock = temp_dir("ver").join("srv.sock");
    let spec = SocketSpec::Unix(sock);
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let running = start(&engine, ServerConfig::new(spec.clone()));

    // Raw wire: a Hello from the future must be answered with a protocol
    // error naming both versions, and the connection closed.
    let mut stream = loop {
        match ingot_common::net::connect(&spec) {
            Ok(s) => break s,
            Err(_) => pace(2),
        }
    };
    wire::write_request(
        &mut stream,
        &Request::Hello {
            version: 9_999,
            client: "time-traveller".into(),
        },
    )
    .unwrap();
    let (op, body) = wire::read_frame(&mut stream, wire::MAX_FRAME_BYTES)
        .unwrap()
        .expect("server must answer the bad hello");
    match Response::decode(op, &body).unwrap() {
        Response::Err(w) => {
            let e = w.into_error();
            assert!(
                e.to_string().contains("version mismatch"),
                "unexpected error: {e}"
            );
            assert!(!e.is_transient(), "a version mismatch never retries");
        }
        other => panic!("expected an error response, got {other:?}"),
    }

    running.stop.request_stop();
    assert_eq!(running.join.join().unwrap().unwrap(), RunOutcome::Drained);
}

#[test]
fn shutdown_verb_drains_the_server() {
    let sock = temp_dir("shut").join("srv.sock");
    let spec = SocketSpec::Unix(sock);
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let running = start(&engine, ServerConfig::new(spec.clone()));

    let conn = connect_retry(&spec, "admin");
    conn.execute("create table t (id int not null primary key)")
        .unwrap();
    conn.shutdown_server().expect("shutdown verb");
    assert_eq!(running.join.join().unwrap().unwrap(), RunOutcome::Drained);
}

#[test]
fn idle_client_outlives_the_heartbeat_timeout_via_auto_heartbeats() {
    let sock = temp_dir("hb").join("srv.sock");
    let spec = SocketSpec::Unix(sock);
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let mut cfg = ServerConfig::new(spec.clone());
    cfg.heartbeat_timeout_ms = 300;
    let running = start(&engine, cfg);

    // Pings every 100 ms while idle: pausing well past the 300 ms server
    // budget (a user thinking at a shell prompt) must not get us reaped.
    let chatty = ClientConnection::connect_with(&spec, "chatty", 100).expect("connect");
    chatty
        .execute("create table t (id int not null primary key)")
        .unwrap();
    // A muted twin really does get reaped — proving the pause below is
    // long enough that only the heartbeats keep `chatty` alive.
    let muted = ClientConnection::connect_with(&spec, "muted", 0).expect("connect");
    muted.execute("insert into t values (1)").unwrap();

    pace(1_000);
    chatty
        .execute("insert into t values (2)")
        .expect("an idle-but-heartbeating client must survive the reaper");
    assert!(
        muted.execute("insert into t values (3)").is_err(),
        "a silent client must still be reaped"
    );

    drop(muted);
    running.stop.request_stop();
    assert_eq!(running.join.join().unwrap().unwrap(), RunOutcome::Drained);
    drop(chatty);
}

#[test]
fn verb_running_past_the_heartbeat_budget_is_not_reaped() {
    let sock = temp_dir("slow").join("srv.sock");
    let spec = SocketSpec::Unix(sock);
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let mut cfg = ServerConfig::new(spec.clone());
    cfg.heartbeat_timeout_ms = 300;
    let running = start(&engine, cfg);

    // The holder idles in-txn for 600 ms while it pins the row lock, so it
    // heartbeats every 100 ms to stay clear of the 300 ms reaper budget.
    let holder = ClientConnection::connect_with(&spec, "holder", 100).expect("connect");
    holder
        .execute("create table kv (id int not null primary key, v int)")
        .unwrap();
    holder.execute("insert into kv values (1, 10)").unwrap();
    holder.begin().unwrap();
    holder.execute("update kv set v = 20 where id = 1").unwrap();

    // With heartbeats off, `blocked` stays alive across the 600 ms lock
    // wait only because (a) the verb runs as `active` and (b) its activity
    // stamp is refreshed when the verb *finishes* — a stale pre-execution
    // timestamp would get it reaped the moment it flipped back to idle.
    let blocked = ClientConnection::connect_with(&spec, "blocked", 0).expect("connect");
    let waiter = std::thread::spawn(move || {
        // Outcome (write-conflict vs success) is irrelevant; only that the
        // connection survives a verb stalled far past the budget matters.
        let _ = blocked.execute("update kv set v = 30 where id = 1");
        blocked
    });
    pace(600);
    holder.commit().unwrap();
    let blocked = waiter.join().unwrap();
    // Less than the 300 ms budget since the verb completed: still alive.
    pace(150);
    blocked
        .query("select count(*) from kv")
        .expect("connection reaped although its long verb just finished");

    running.stop.request_stop();
    assert_eq!(running.join.join().unwrap().unwrap(), RunOutcome::Drained);
}

#[test]
fn shutdown_over_tcp_is_refused_unless_opted_in() {
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let cfg = ServerConfig::new(SocketSpec::Tcp("127.0.0.1:0".into()));
    let server = Server::bind(Arc::clone(&engine), cfg).expect("bind tcp");
    let spec = server.local_spec();
    let stop = server.stop_handle();
    let join = std::thread::spawn(move || server.run());

    let conn = connect_retry(&spec, "tcp-peer");
    let err = conn
        .shutdown_server()
        .expect_err("tcp peers must not stop the server by default");
    assert!(err.to_string().contains("refused"), "{err}");
    // The refusal is an error response, not a connection kill.
    conn.execute("create table t (id int not null primary key)")
        .expect("connection stays usable after a refused shutdown");
    drop(conn);
    stop.request_stop();
    assert_eq!(join.join().unwrap().unwrap(), RunOutcome::Drained);
    engine.detach_connections_provider();

    // Opting in restores the old behaviour for trusted networks.
    let mut cfg = ServerConfig::new(SocketSpec::Tcp("127.0.0.1:0".into()));
    cfg.allow_remote_shutdown = true;
    let server = Server::bind(Arc::clone(&engine), cfg).expect("bind tcp");
    let spec = server.local_spec();
    let join = std::thread::spawn(move || server.run());
    let conn = connect_retry(&spec, "tcp-admin");
    conn.shutdown_server().expect("opted-in shutdown works");
    assert_eq!(join.join().unwrap().unwrap(), RunOutcome::Drained);
}

#[test]
fn oversized_result_set_yields_a_clean_error_not_a_dead_connection() {
    let sock = temp_dir("cap").join("srv.sock");
    let spec = SocketSpec::Unix(sock);
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let mut cfg = ServerConfig::new(spec.clone());
    cfg.max_frame_bytes = 4_096;
    let running = start(&engine, cfg);

    let conn = connect_retry(&spec, "bulk");
    conn.execute("create table big (id int not null primary key, pad text)")
        .unwrap();
    let pad = "x".repeat(200);
    for i in 0..40 {
        conn.execute(&format!("insert into big values ({i}, '{pad}')"))
            .unwrap();
    }
    // ~8 KiB of rows against a 4 KiB frame cap: the server must answer
    // with a clean error frame, never emit the oversized one.
    let err = conn
        .query("select * from big")
        .expect_err("result set larger than the frame cap must error");
    assert!(err.to_string().contains("frame cap"), "{err}");
    // …and the stream is still in sync afterwards.
    let r = conn.query("select count(*) from big").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(40));

    drop(conn);
    running.stop.request_stop();
    assert_eq!(running.join.join().unwrap().unwrap(), RunOutcome::Drained);
}

#[test]
fn in_process_restart_serves_fresh_ima_connections_rows() {
    // The provider slot swap: after the first server stops and a second one
    // binds the same engine, ima$connections must serve the *new* fleet.
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();

    let sock1 = temp_dir("swap1").join("srv.sock");
    let spec1 = SocketSpec::Unix(sock1);
    let running = start(&engine, ServerConfig::new(spec1.clone()));
    let conn = connect_retry(&spec1, "first-fleet");
    let r = conn.query("select client from ima$connections").unwrap();
    assert_eq!(r.rows.len(), 1);
    drop(conn);
    running.stop.request_stop();
    running.join.join().unwrap().unwrap();

    let sock2 = temp_dir("swap2").join("srv.sock");
    let spec2 = SocketSpec::Unix(sock2);
    let running = start(&engine, ServerConfig::new(spec2.clone()));
    let conn = connect_retry(&spec2, "second-fleet");
    let r = conn.query("select client from ima$connections").unwrap();
    assert_eq!(r.rows.len(), 1, "stale first-fleet rows must be gone");
    assert_eq!(r.rows[0].get(0), &Value::Str("second-fleet".into()));
    drop(conn);
    running.stop.request_stop();
    running.join.join().unwrap().unwrap();
}
