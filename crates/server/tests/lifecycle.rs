//! Lifecycle tests against the real `ingot-server` binary: auto-spawn,
//! idle auto-shutdown, respawn-on-reconnect, and (behind `--ignored`, run
//! by the CI `server-smoke` job) a SIGTERM mid-load drain that must lose
//! no acknowledged commit.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ingot_client::{connect_or_spawn, ClientConnection, SpawnOptions};
use ingot_common::{Connection, SocketSpec, Value};
use parking_lot::{Condvar, Mutex};

const SERVER_BIN: &str = env!("CARGO_BIN_EXE_ingot-server");

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ingot-lifecycle-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Interruptible pause (the workspace bans `std::thread::sleep`).
fn pace(ms: u64) {
    let m = Mutex::new(());
    let cv = Condvar::new();
    let mut g = m.lock();
    let _ = cv.wait_for(&mut g, Duration::from_millis(ms));
}

fn spawn_opts(data: &std::path::Path) -> SpawnOptions {
    SpawnOptions {
        server_bin: Some(SERVER_BIN.into()),
        data_dir: Some(data.to_path_buf()),
        idle_shutdown_ms: Some(250),
        extra_args: Vec::new(),
        connect_timeout_ms: Some(30_000),
    }
}

#[test]
fn idle_shutdown_then_reconnect_respawns_cleanly() {
    let data = temp_dir("data");
    let sock = temp_dir("sock").join("srv.sock");
    let spec = SocketSpec::Unix(sock.clone());
    let opts = spawn_opts(&data);

    // Nothing is listening: connect_or_spawn launches the daemon.
    let conn = connect_or_spawn(&spec, &opts).expect("auto-spawn");
    conn.execute("create table t (id int not null primary key)")
        .unwrap();
    conn.execute("insert into t values (1)").unwrap();
    conn.close().unwrap();

    // The fleet is empty; the server must exit by itself within the idle
    // budget (250 ms) and unlink its socket on the way out. Watch the
    // socket file rather than connect-probing — a probe is a real
    // connection and would keep resetting the idle clock.
    let mut gone = false;
    for _ in 0..400 {
        if !sock.exists() {
            gone = true;
            break;
        }
        pace(25);
    }
    assert!(gone, "server never idle-shut down");

    // Reconnecting respawns a fresh daemon on the same socket and data
    // directory; the acknowledged insert must still be there.
    let conn = connect_or_spawn(&spec, &opts).expect("auto-respawn");
    let r = conn.query("select count(*) from t").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(1));
    conn.shutdown_server().expect("orderly shutdown");
}

/// The CI `server-smoke` scenario: a closed-loop client fleet hammers the
/// daemon, SIGTERM lands mid-load, and after a restart every acknowledged
/// commit is present. `INGOT_SMOKE_CONNS` / `INGOT_SMOKE_SECS` scale it
/// (CI uses 64 connections for 10 s).
#[test]
#[ignore = "spawns a daemon and runs a timed fleet; CI server-smoke runs it"]
fn sigterm_mid_load_loses_no_acked_commit() {
    let conns: usize = std::env::var("INGOT_SMOKE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let secs: u64 = std::env::var("INGOT_SMOKE_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    let data = temp_dir("smoke-data");
    let sock = temp_dir("smoke-sock").join("srv.sock");
    let spec = SocketSpec::Unix(sock);

    let spawn_server = || {
        Command::new(SERVER_BIN)
            .arg("--socket")
            .arg(spec.to_string())
            .arg("--data")
            .arg(&data)
            .arg("--drain-deadline-ms")
            .arg("5000")
            .spawn()
            .expect("spawn ingot-server")
    };
    let mut child = spawn_server();

    let admin = connect_with_retry(&spec);
    admin
        .execute("create table t (id int not null primary key)")
        .unwrap();
    drop(admin);

    // Closed loop: each client inserts unique ids as fast as acks come
    // back, until the drain cuts it off.
    let next_id = Arc::new(AtomicU64::new(0));
    let acked: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for _ in 0..conns {
        let spec = spec.clone();
        let next_id = Arc::clone(&next_id);
        let acked = Arc::clone(&acked);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let conn = connect_with_retry(&spec);
            let ins = match conn.prepare("insert into t values ($1)") {
                Ok(p) => p,
                Err(_) => return,
            };
            while !stop.load(Ordering::Relaxed) {
                let id = next_id.fetch_add(1, Ordering::Relaxed) as i64;
                match ins.execute(&[Value::Int(id)]) {
                    Ok(_) => acked.lock().push(id),
                    // Drain (or the kill) reached us; acks stop here.
                    Err(_) => break,
                }
            }
        }));
    }

    pace(secs * 1_000);
    // SIGTERM, not SIGKILL: the server must drain — finish in-flight
    // statements, never un-ack anything.
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        let _ = t.join();
    }
    let status = child.wait().expect("server exit");
    assert!(status.success(), "drain exit must be clean: {status:?}");

    // Restart on the same directory: recovery must surface every ack.
    let mut child = spawn_server();
    let conn = connect_with_retry(&spec);
    let acked = acked.lock();
    let r = conn.query("select count(*) from t").unwrap();
    let count = r.rows[0].get(0).as_int().unwrap();
    assert!(
        count >= acked.len() as i64,
        "{} acked commits but only {count} rows after restart",
        acked.len()
    );
    // Spot-check actual ids, not just the count.
    let r = conn.query("select id from t order by id").unwrap();
    let present: std::collections::HashSet<i64> = r
        .rows
        .iter()
        .filter_map(|row| row.get(0).as_int())
        .collect();
    for id in acked.iter() {
        assert!(present.contains(id), "acked id {id} lost across SIGTERM");
    }
    conn.shutdown_server().expect("orderly shutdown");
    let _ = child.wait();
}

fn connect_with_retry(spec: &SocketSpec) -> ClientConnection {
    for _ in 0..5_000 {
        match ClientConnection::connect(spec) {
            Ok(c) => return c,
            Err(_) => pace(5),
        }
    }
    panic!("server never came up on {spec}");
}
