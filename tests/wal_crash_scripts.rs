//! Crash-scripted replay proofs for the write-ahead log.
//!
//! Each test drives a file-backed engine through a committed workload mix,
//! scripts a deterministic power cut at one of the WAL's fault points
//! (append, mid-fsync, torn tail, checkpoint truncation), reopens the same
//! directory and asserts the **acknowledged-commit invariant**: every commit
//! that returned `Ok` before the cut is present after recovery, and nothing
//! that was never acknowledged (in-flight statements, rolled-back or
//! unfinished transactions) survives. A property test closes the loop:
//! random interleaved commit/abort histories replay to exactly the table
//! state observed before the crash.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ingot::common::WalFsyncMode;
use ingot::prelude::*;
use ingot::storage::{FaultEffect, FaultOp};
use proptest::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory per scenario (proptest cases included).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ingot-walcrash-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open(dir: &Path, mode: WalFsyncMode) -> Arc<Engine> {
    Engine::builder()
        .config(EngineConfig::default().with_wal_fsync_mode(mode))
        .path(dir)
        .build()
        .unwrap()
}

fn table_ints(engine: &Arc<Engine>) -> Vec<i64> {
    let s = engine.open_session();
    let r = s.execute("select a from t order by a").unwrap();
    r.rows
        .iter()
        .map(|row| row.get(0).as_int().unwrap())
        .collect()
}

/// The committed workload mix every crash script runs first: auto-commit
/// inserts, a multi-row update, a multi-row delete, one explicit committed
/// transaction and one explicitly rolled-back transaction.
fn seed_mix(s: &Session) {
    s.execute("create table t (a int not null, b text)")
        .unwrap();
    for i in 0..8 {
        s.execute(&format!("insert into t values ({i}, 'seed {i}')"))
            .unwrap();
    }
    s.execute("update t set b = 'touched' where a < 3").unwrap();
    s.execute("delete from t where a >= 6").unwrap();
    s.begin().unwrap();
    s.execute("insert into t values (100, 'explicit commit')")
        .unwrap();
    s.commit().unwrap();
    s.begin().unwrap();
    s.execute("insert into t values (200, 'rolled back')")
        .unwrap();
    s.rollback().unwrap();
}

/// What the mix leaves behind: the surviving seeds plus the explicit commit.
const MIX_STATE: [i64; 7] = [0, 1, 2, 3, 4, 5, 100];

/// Crash point `crash_after_wal_append`: the Commit record reaches the OS
/// but the covering fsync dies. The statement must fail (never acknowledged)
/// and recovery must keep exactly the acknowledged history.
#[test]
fn crash_after_wal_append_discards_the_unacknowledged_commit() {
    let dir = scratch_dir("append-ack");
    {
        let e = open(&dir, WalFsyncMode::Always);
        let s = e.open_session();
        seed_mix(&s);
        e.wal().set_fault_plan(FaultPlan::new().with_rule(
            FaultOp::WalFsync,
            1,
            u64::MAX,
            FaultEffect::Crash,
        ));
        let err = s
            .execute("insert into t values (300, 'never acked')")
            .unwrap_err();
        assert!(err.to_string().contains("power cut"), "{err}");
        assert!(e.wal().is_crashed(), "the power cut must kill the log");
    }
    let e = open(&dir, WalFsyncMode::Always);
    assert_eq!(table_ints(&e), MIX_STATE);
    let stats = e.wal_stats();
    assert!(
        stats.replayed_txns >= 1,
        "the committed history must be redone from the log: {stats:?}"
    );
}

/// Crash point `torn_wal_tail`: the power cut lands mid-frame, leaving a
/// partial record on the platter. Salvage must drop exactly the torn tail,
/// and the reopened engine must keep committing.
#[test]
fn torn_wal_tail_is_salvaged_to_the_last_durable_commit() {
    let dir = scratch_dir("torn");
    {
        let e = open(&dir, WalFsyncMode::Always);
        let s = e.open_session();
        seed_mix(&s);
        e.wal().set_fault_plan(FaultPlan::new().with_rule(
            FaultOp::WalAppend,
            1,
            u64::MAX,
            FaultEffect::Torn(5),
        ));
        let err = s
            .execute("insert into t values (300, 'torn away')")
            .unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
    }
    let e = open(&dir, WalFsyncMode::Always);
    assert_eq!(table_ints(&e), MIX_STATE);
    let stats = e.wal_stats();
    assert!(
        stats.discarded_bytes > 0,
        "the torn tail must be counted as discarded: {stats:?}"
    );
    let s = e.open_session();
    s.execute("insert into t values (7, 'post-recovery')")
        .unwrap();
    assert_eq!(table_ints(&e), vec![0, 1, 2, 3, 4, 5, 7, 100]);
}

/// Crash point `crash_mid_fsync` under group commit: the batch leader's
/// fsync dies; no rider of that batch may be acknowledged.
#[test]
fn group_commit_crash_mid_fsync_loses_no_acknowledged_commit() {
    let dir = scratch_dir("group-fsync");
    {
        let e = open(&dir, WalFsyncMode::Group);
        let s = e.open_session();
        seed_mix(&s);
        e.wal().set_fault_plan(FaultPlan::new().with_rule(
            FaultOp::WalFsync,
            1,
            u64::MAX,
            FaultEffect::Crash,
        ));
        let err = s
            .execute("insert into t values (300, 'doomed rider')")
            .unwrap_err();
        assert!(err.to_string().contains("power cut"), "{err}");
    }
    let e = open(&dir, WalFsyncMode::Group);
    assert_eq!(table_ints(&e), MIX_STATE);
}

/// Crash point `crash_during_checkpoint_truncate`: the checkpoint image is
/// installed but the log truncation dies. Recovery must come up on the new
/// checkpoint without double-applying the pre-checkpoint history, and a
/// later checkpoint must complete normally.
#[test]
fn crash_during_checkpoint_truncate_replays_from_the_full_log() {
    let dir = scratch_dir("ckpt-truncate");
    {
        let e = open(&dir, WalFsyncMode::Always);
        let s = e.open_session();
        seed_mix(&s);
        e.checkpoint().unwrap();
        s.execute("insert into t values (300, 'after checkpoint one')")
            .unwrap();
        e.wal().set_fault_plan(FaultPlan::new().with_rule(
            FaultOp::WalTruncate,
            1,
            u64::MAX,
            FaultEffect::Crash,
        ));
        let err = e.checkpoint().unwrap_err();
        assert!(err.to_string().contains("power cut"), "{err}");
    }
    let expected = [0, 1, 2, 3, 4, 5, 100, 300];
    let e = open(&dir, WalFsyncMode::Always);
    assert_eq!(table_ints(&e), expected);
    e.checkpoint().unwrap();
    drop(e);
    let e = open(&dir, WalFsyncMode::Always);
    assert_eq!(table_ints(&e), expected);
}

/// A transaction whose records are durable (a later commit's fsync covered
/// them) but that never committed is a *loser*: replay must discard its
/// mutations while redoing the interleaved winner.
#[test]
fn durable_loser_records_are_discarded_by_replay() {
    let dir = scratch_dir("loser");
    {
        let e = open(&dir, WalFsyncMode::Always);
        let s1 = e.open_session();
        s1.execute("create table t (a int not null, b text)")
            .unwrap();
        s1.execute("create table u (a int not null, b text)")
            .unwrap();
        let s2 = e.open_session();
        s2.begin().unwrap();
        s2.execute("insert into u values (99, 'loser')").unwrap();
        // s1's auto-commit barrier makes the whole log durable, the loser's
        // Begin/Insert records included.
        s1.execute("insert into t values (1, 'winner')").unwrap();
        // Power cut before s2 resolves: its best-effort Abort record hits
        // the dead log and is dropped on the floor.
        e.wal().set_fault_plan(FaultPlan::new().with_rule(
            FaultOp::WalAppend,
            1,
            u64::MAX,
            FaultEffect::Crash,
        ));
        drop(s2);
        assert!(e.wal().is_crashed());
    }
    let e = open(&dir, WalFsyncMode::Always);
    assert_eq!(table_ints(&e), vec![1]);
    let s = e.open_session();
    let u = s.execute("select a from u").unwrap();
    assert!(
        u.rows.is_empty(),
        "the uncommitted insert must not survive replay"
    );
}

/// Power cut mid-commit with an open version chain: a committed winner and
/// an in-flight loser both stack versions on the *same row*. The loser's
/// Begin/Update records are durable but its Commit fsync dies, so the
/// statement is never acknowledged. Recovery must rebuild the chain with
/// the winner's version visible and the loser's version discarded — and
/// the reopened chain must stay writable and GC-able (no stale uncommitted
/// marker wedging the head).
#[test]
fn mid_commit_crash_discards_the_losers_version_chain_entry() {
    let dir = scratch_dir("mvcc-chain");
    {
        let e = open(&dir, WalFsyncMode::Always);
        let s1 = e.open_session();
        s1.execute("create table t (a int not null, b text)")
            .unwrap();
        s1.execute("insert into t values (1, 'v0')").unwrap();
        // The winner supersedes v0 and is acknowledged durable.
        s1.execute("update t set b = 'winner' where a = 1").unwrap();
        // The loser stacks a third version on the same chain inside an
        // explicit transaction; its Begin/Update records reach the log...
        let s2 = e.open_session();
        s2.begin().unwrap();
        s2.execute("update t set b = 'loser' where a = 1").unwrap();
        // ...but the power cut lands on the Commit record's fsync, so the
        // commit is never acknowledged.
        e.wal().set_fault_plan(FaultPlan::new().with_rule(
            FaultOp::WalFsync,
            1,
            u64::MAX,
            FaultEffect::Crash,
        ));
        let err = s2.commit().unwrap_err();
        assert!(err.to_string().contains("power cut"), "{err}");
        assert!(e.wal().is_crashed(), "the power cut must kill the log");
    }
    let e = open(&dir, WalFsyncMode::Always);
    let s = e.open_session();
    let r = s.execute("select b from t where a = 1").unwrap();
    assert_eq!(r.rows.len(), 1, "exactly one visible version of the row");
    assert_eq!(
        r.rows[0].get(0).as_str(),
        Some("winner"),
        "recovery must keep the winner's version and discard the loser's"
    );
    // The rebuilt chain is not wedged: it accepts new versions and the
    // sweep reclaims the superseded ones.
    s.execute("update t set b = 'after recovery' where a = 1")
        .unwrap();
    let r = s.execute("select b from t where a = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_str(), Some("after recovery"));
    assert!(
        e.mvcc_gc().unwrap() >= 1,
        "the sweep must reclaim the superseded winner version"
    );
}

/// The full crash-point × fsync-mode matrix over the shared workload mix:
/// whatever the scripted cut, the statement in flight fails and recovery
/// reproduces exactly the acknowledged state.
#[test]
fn every_crash_point_preserves_acknowledged_commits() {
    let cases = [
        (
            "always-append",
            WalFsyncMode::Always,
            FaultOp::WalAppend,
            FaultEffect::Crash,
        ),
        (
            "always-torn",
            WalFsyncMode::Always,
            FaultOp::WalAppend,
            FaultEffect::Torn(7),
        ),
        (
            "always-fsync",
            WalFsyncMode::Always,
            FaultOp::WalFsync,
            FaultEffect::Crash,
        ),
        (
            "group-append",
            WalFsyncMode::Group,
            FaultOp::WalAppend,
            FaultEffect::Crash,
        ),
        (
            "group-torn",
            WalFsyncMode::Group,
            FaultOp::WalAppend,
            FaultEffect::Torn(3),
        ),
        (
            "group-fsync",
            WalFsyncMode::Group,
            FaultOp::WalFsync,
            FaultEffect::Crash,
        ),
    ];
    for (tag, mode, op, effect) in cases {
        let dir = scratch_dir(tag);
        {
            let e = open(&dir, mode);
            let s = e.open_session();
            seed_mix(&s);
            e.wal()
                .set_fault_plan(FaultPlan::new().with_rule(op, 1, u64::MAX, effect));
            assert!(
                s.execute("insert into t values (300, 'doomed')").is_err(),
                "{tag}: the in-flight statement must fail at the crash point"
            );
        }
        let e = open(&dir, mode);
        assert_eq!(table_ints(&e), MIX_STATE, "{tag}");
    }
}

/// The WAL's counters are queryable over SQL as `ima$wal` and agree with the
/// typed stats surface.
#[test]
fn ima_wal_surfaces_the_log_counters() {
    let e = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let s = e.open_session();
    s.execute("create table t (a int not null)").unwrap();
    for i in 0..4 {
        s.execute(&format!("insert into t values ({i})")).unwrap();
    }
    let r = s
        .execute(
            "select fsync_mode, appends, fsyncs, current_lsn, durable_lsn, \
             grouped_commits from ima$wal",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1, "ima$wal is a one-row table");
    let row = &r.rows[0];
    assert_eq!(row.get(0).as_str().unwrap(), "group");
    assert!(row.get(1).as_int().unwrap() > 0, "appends must be counted");
    assert!(row.get(2).as_int().unwrap() > 0, "barriers must be counted");
    assert_eq!(
        row.get(3).as_int().unwrap(),
        row.get(4).as_int().unwrap(),
        "after quiescing, everything acknowledged is durable"
    );
    let stats = e.wal_stats();
    assert_eq!(stats.appends as i64, row.get(1).as_int().unwrap());
}

fn snapshot(engine: &Arc<Engine>, table: &str) -> Vec<(i64, String)> {
    let s = engine.open_session();
    let r = s
        .execute(&format!("select a, b from {table} order by a, b"))
        .unwrap();
    r.rows
        .iter()
        .map(|row| {
            (
                row.get(0).as_int().unwrap(),
                row.get(1).as_str().unwrap_or("").to_string(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two transactions interleave record by record in the log — one per
    /// table so their locks are disjoint — each randomly committing or
    /// rolling back, on top of a committed baseline and an optional
    /// checkpoint. After an unflushed shutdown (everything since the last
    /// checkpoint exists only in the log), recovery must reproduce exactly
    /// the state observed before the cut: committed-only redo, losers
    /// discarded, idempotent across the checkpoint boundary.
    #[test]
    fn random_histories_replay_to_the_uncrashed_state(
        ops_a in prop::collection::vec(0u8..6, 1..12),
        ops_b in prop::collection::vec(0u8..6, 1..12),
        commit_a in any::<bool>(),
        commit_b in any::<bool>(),
        mid_checkpoint in any::<bool>(),
    ) {
        let dir = scratch_dir("prop");
        let before_cut;
        {
            let e = open(&dir, WalFsyncMode::Group);
            let setup = e.open_session();
            setup.execute("create table ta (a int not null, b text)").unwrap();
            setup.execute("create table tb (a int not null, b text)").unwrap();
            for i in 0..4 {
                setup.execute(&format!("insert into ta values ({i}, 'base')")).unwrap();
                setup.execute(&format!("insert into tb values ({i}, 'base')")).unwrap();
            }
            if mid_checkpoint {
                e.checkpoint().unwrap();
            }
            let sa = e.open_session();
            let sb = e.open_session();
            sa.begin().unwrap();
            sb.begin().unwrap();
            let apply = |s: &Session, table: &str, round: usize, op: u8| {
                let key = 10 + round as i64;
                match op % 3 {
                    0 => s.execute(&format!("insert into {table} values ({key}, 'w{op}')")),
                    1 => s.execute(&format!("update {table} set b = 'u{op}' where a = {}", op % 4)),
                    _ => s.execute(&format!("delete from {table} where a = {}", op % 4)),
                }
                .unwrap();
            };
            for round in 0..ops_a.len().max(ops_b.len()) {
                if let Some(op) = ops_a.get(round) {
                    apply(&sa, "ta", round, *op);
                }
                if let Some(op) = ops_b.get(round) {
                    apply(&sb, "tb", round, *op);
                }
            }
            if commit_a { sa.commit().unwrap(); } else { sa.rollback().unwrap(); }
            if commit_b { sb.commit().unwrap(); } else { sb.rollback().unwrap(); }
            before_cut = (snapshot(&e, "ta"), snapshot(&e, "tb"));
        }
        let e = open(&dir, WalFsyncMode::Group);
        prop_assert_eq!(snapshot(&e, "ta"), before_cut.0);
        prop_assert_eq!(snapshot(&e, "tb"), before_cut.1);
    }
}
