//! Concurrency integration: parallel sessions, the lock manager, deadlock
//! detection, and the statistics sensor that feeds Fig 8.

// Real-time pacing: sleeps coordinate contending sessions and wait out
// daemon intervals — the sanctioned exception to the workspace sleep ban.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ingot::prelude::*;

fn engine() -> std::sync::Arc<Engine> {
    Engine::builder()
        .config(EngineConfig {
            lock_timeout_ms: 400,
            ..EngineConfig::monitoring()
        })
        .build()
        .unwrap()
}

#[test]
fn concurrent_readers_share_locks() {
    let e = engine();
    {
        let s = e.open_session();
        s.execute("create table t (a int)").unwrap();
        for i in 0..100 {
            s.execute(&format!("insert into t values ({i})")).unwrap();
        }
    }
    let mut handles = Vec::new();
    for _ in 0..4 {
        let e = Arc::clone(&e);
        handles.push(std::thread::spawn(move || {
            let s = e.open_session();
            let mut total = 0i64;
            for _ in 0..50 {
                let r = s.execute("select count(*) from t").unwrap();
                total += r.rows[0].get(0).as_int().unwrap();
            }
            total
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 50 * 100);
    }
    assert_eq!(e.locks().stats().held, 0, "all locks released");
}

#[test]
fn concurrent_writers_serialize_and_count_correctly() {
    let e = engine();
    {
        let s = e.open_session();
        s.execute("create table counter (id int not null primary key, v int)")
            .unwrap();
        s.execute("insert into counter values (1, 0)").unwrap();
    }
    let mut handles = Vec::new();
    for _ in 0..4 {
        let e = Arc::clone(&e);
        handles.push(std::thread::spawn(move || {
            let s = e.open_session();
            for _ in 0..25 {
                s.execute("update counter set v = v + 1 where id = 1")
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = e.open_session();
    let r = s.execute("select v from counter where id = 1").unwrap();
    assert_eq!(
        r.rows[0].get(0).as_int().unwrap(),
        100,
        "X locks must serialize increments"
    );
}

#[test]
fn deadlock_is_detected_and_reported_in_statistics() {
    let e = engine();
    {
        let s = e.open_session();
        s.execute("create table a (id int not null primary key, v int)")
            .unwrap();
        s.execute("create table b (id int not null primary key, v int)")
            .unwrap();
        s.execute("insert into a values (1, 0)").unwrap();
        s.execute("insert into b values (1, 0)").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..2 {
        let e = Arc::clone(&e);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let s = e.open_session();
            let (first, second) = if w == 0 { ("a", "b") } else { ("b", "a") };
            let mut victims = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if s.begin().is_err() {
                    continue;
                }
                let r1 = s.execute(&format!("update {first} set v = v + 1 where id = 1"));
                std::thread::sleep(Duration::from_millis(2));
                let r2 = s.execute(&format!("update {second} set v = v + 1 where id = 1"));
                match (r1, r2) {
                    (Ok(_), Ok(_)) => {
                        let _ = s.commit();
                    }
                    (a, b) => {
                        if matches!(a, Err(Error::Deadlock { .. }))
                            || matches!(b, Err(Error::Deadlock { .. }))
                        {
                            victims += 1;
                        }
                        let _ = s.rollback();
                    }
                }
            }
            victims
        }));
    }
    // Let them fight, sampling statistics meanwhile. Keep sampling for a
    // while even after the first deadlock so the diagram has a time series
    // with visible wait/deadlock deltas.
    let mut saw_deadlock = false;
    for round in 0..200 {
        std::thread::sleep(Duration::from_millis(10));
        e.sample_statistics();
        if e.locks().stats().deadlocks_total > 0 {
            saw_deadlock = true;
            if round >= 10 {
                break;
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    e.sample_statistics();
    let victims: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        saw_deadlock,
        "opposite lock orders must deadlock eventually"
    );
    assert!(
        victims > 0,
        "some transaction must have been chosen as victim"
    );
    assert_eq!(
        e.locks().stats().deadlocks_total,
        victims,
        "every detected deadlock has exactly one victim"
    );
    // The statistics sensor carried the deadlock into the monitor.
    let m = e.monitor().unwrap();
    let last = m.statistics().last().cloned().unwrap();
    assert!(last.deadlocks_total > 0);
    // And the diagram shows the marker.
    let view = WorkloadView::from_monitor(m);
    let diagram = ingot::analyzer::report::build_locks_diagram(&view);
    let rendered = diagram.render();
    assert!(
        rendered.contains('D') || rendered.contains('W'),
        "{rendered}"
    );
}

#[test]
fn lock_timeout_backstop() {
    let e = Engine::builder()
        .config(EngineConfig {
            lock_timeout_ms: 100,
            ..EngineConfig::monitoring()
        })
        .build()
        .unwrap();
    let s1 = e.open_session();
    s1.execute("create table t (a int)").unwrap();
    s1.execute("insert into t values (1)").unwrap();
    s1.begin().unwrap();
    s1.execute("update t set a = 2").unwrap(); // holds X until commit
    let e2 = Arc::clone(&e);
    let blocked = std::thread::spawn(move || {
        let s2 = e2.open_session();
        s2.execute("update t set a = 3")
    });
    let result = blocked.join().unwrap();
    assert!(matches!(result, Err(Error::LockTimeout(_))), "{result:?}");
    s1.commit().unwrap();
}

#[test]
fn writer_writer_conflict_blocks_until_commit() {
    let e = engine();
    let s1 = e.open_session();
    s1.execute("create table t (id int not null primary key, v int)")
        .unwrap();
    s1.execute("insert into t values (1, 0)").unwrap();
    let waits_before = e.locks().stats().waits_total;

    s1.begin().unwrap();
    s1.execute("update t set v = 10 where id = 1").unwrap(); // X held
    let e2 = Arc::clone(&e);
    let h = std::thread::spawn(move || {
        let s2 = e2.open_session();
        // Second writer must block behind the first, then read *its* value.
        s2.execute("update t set v = v + 5 where id = 1")
    });
    // Wait until the second writer is queued, then release it.
    for _ in 0..100 {
        if e.locks().stats().waiting == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(e.locks().stats().waiting, 1, "second writer must wait");
    s1.commit().unwrap();
    h.join().unwrap().unwrap();

    assert!(e.locks().stats().waits_total > waits_before);
    let r = s1.execute("select v from t where id = 1").unwrap();
    assert_eq!(
        r.rows[0].get(0).as_int().unwrap(),
        15,
        "second writer must see the first writer's committed value"
    );
}

#[test]
fn reader_proceeds_while_writer_active() {
    let e = engine();
    let s1 = e.open_session();
    s1.execute("create table hot (id int not null primary key, v int)")
        .unwrap();
    s1.execute("create table cold (id int not null primary key, v int)")
        .unwrap();
    s1.execute("insert into hot values (1, 0)").unwrap();
    s1.execute("insert into cold values (1, 42)").unwrap();

    s1.begin().unwrap();
    s1.execute("update hot set v = 1 where id = 1").unwrap(); // X on hot
    let waits_before = e.locks().stats().waits_total;

    // While the writer transaction is open, a reader of an *unrelated* table
    // and of the lock-free ima$ views completes without ever queueing — an
    // engine-wide statement lock would stall (and eventually time out) here.
    let s2 = e.open_session();
    let r = s2.execute("select v from cold where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 42);
    s2.execute("select * from ima$sessions").unwrap();
    s2.execute("select * from ima$locks").unwrap();
    assert_eq!(
        e.locks().stats().waits_total,
        waits_before,
        "reader of an unrelated table must not wait on the writer"
    );
    s1.commit().unwrap();
}

#[test]
fn ima_locks_and_sessions_expose_contention() {
    let e = engine();
    let s1 = e.open_session();
    s1.execute("create table t (id int not null primary key, v int)")
        .unwrap();
    s1.execute("insert into t values (1, 0)").unwrap();

    s1.begin().unwrap();
    s1.execute("update t set v = 1 where id = 1").unwrap(); // X granted
    let e2 = Arc::clone(&e);
    let h = std::thread::spawn(move || {
        let s2 = e2.open_session();
        s2.execute("update t set v = v + 1 where id = 1")
    });
    for _ in 0..100 {
        if e.locks().stats().waiting == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // ima$locks: columns are (txn, table_id, row_id, mode, state). Under
    // row-level MVCC the first writer holds row-exclusive locks (the chain
    // root plus the primary-key value) and a *shared* table fence — never a
    // table-exclusive lock — and the second writer queues on the row.
    let s3 = e.open_session();
    let locks = s3.execute("select * from ima$locks").unwrap();
    let granted_x: Vec<_> = locks
        .rows
        .iter()
        .filter(|r| {
            r.get(4) == &Value::Str("granted".into()) && r.get(3) == &Value::Str("X".into())
        })
        .collect();
    let waiting: Vec<_> = locks
        .rows
        .iter()
        .filter(|r| r.get(4) == &Value::Str("waiting".into()))
        .collect();
    assert!(!granted_x.is_empty(), "{locks:?}");
    assert!(
        granted_x.iter().all(|r| r.get(2) != &Value::Null),
        "writer X locks are row-level, never table-level: {locks:?}"
    );
    assert_eq!(waiting.len(), 1, "{locks:?}");
    assert_eq!(waiting[0].get(3), &Value::Str("X".into()));
    assert_ne!(
        waiting[0].get(2),
        &Value::Null,
        "the waiter queues on a row, not the table: {locks:?}"
    );
    assert!(
        granted_x
            .iter()
            .any(|g| g.get(1) == waiting[0].get(1) && g.get(2) == waiting[0].get(2)),
        "waiter queues on a row the first writer holds: {locks:?}"
    );
    assert!(
        granted_x.iter().all(|g| g.get(0) != waiting[0].get(0)),
        "different txns: {locks:?}"
    );
    // Both writers hold the shared table fence concurrently (that is what
    // lets them write the same table at once while still excluding DDL).
    let table_s = locks
        .rows
        .iter()
        .filter(|r| {
            r.get(4) == &Value::Str("granted".into())
                && r.get(3) == &Value::Str("S".into())
                && r.get(2) == &Value::Null
        })
        .count();
    assert_eq!(table_s, 2, "both writers share the table fence: {locks:?}");

    // ima$sessions: (current_sessions, peak_sessions, active_txns,
    // locks_held, lock_waiting, lock_waits_total, deadlocks_total,
    // locks_granted_total) — one live row mirroring the counters.
    let sess = s3.execute("select * from ima$sessions").unwrap();
    assert_eq!(sess.rows.len(), 1);
    let row = &sess.rows[0];
    assert!(row.get(0).as_int().unwrap() >= 2, "sessions open: {row:?}");
    assert!(row.get(2).as_int().unwrap() >= 2, "txns active: {row:?}");
    assert!(row.get(3).as_int().unwrap() >= 1, "lock held: {row:?}");
    assert_eq!(row.get(4).as_int().unwrap(), 1, "one waiter: {row:?}");

    s1.commit().unwrap();
    h.join().unwrap().unwrap();
    let s = e.open_session();
    let locks = s.execute("select * from ima$locks").unwrap();
    assert!(locks.rows.is_empty(), "all locks drained: {locks:?}");
}

#[test]
fn ddl_takes_exclusive_lock() {
    let e = engine();
    let s1 = e.open_session();
    s1.execute("create table t (a int)").unwrap();
    s1.execute("insert into t values (1)").unwrap();

    // Snapshot reads take no table locks, so an open reader transaction
    // must NOT block DDL under MVCC.
    s1.begin().unwrap();
    s1.execute("select * from t").unwrap();
    {
        let s2 = e.open_session();
        s2.execute("modify t to heap").unwrap();
    }
    s1.commit().unwrap();

    // A writer's shared table fence is what excludes DDL: MODIFY needs the
    // table-exclusive lock and must wait for the writer to commit.
    s1.begin().unwrap();
    s1.execute("update t set a = 2").unwrap(); // table-S fence + row-X
    let e2 = Arc::clone(&e);
    let h = std::thread::spawn(move || {
        let s2 = e2.open_session();
        s2.execute("modify t to heap")
    });
    for _ in 0..100 {
        if e.locks().stats().waiting == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(e.locks().stats().waiting, 1, "DDL must be blocked");
    s1.commit().unwrap();
    h.join().unwrap().unwrap();
}
