//! Integration tests of the storage daemon: delayed persistence into the
//! workload DB, retention, alerting, growth accounting, and restart
//! persistence of the file-backed database.

// Real-time pacing: sleeps coordinate contending sessions and wait out
// daemon intervals — the sanctioned exception to the workspace sleep ban.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::Duration;

use ingot::daemon::wldb::WL_TABLES;
use ingot::prelude::*;

fn engine_with_activity() -> std::sync::Arc<Engine> {
    let e = Engine::builder()
        .config(EngineConfig::monitoring().with_heap_main_pages(2))
        .build()
        .unwrap();
    let s = e.open_session();
    s.execute("create table t (a int not null, b text)")
        .unwrap();
    // Enough rows to overflow the 2-page main extent (the analyzer's
    // B-Tree rule needs overflow to fire).
    for i in 0..1200 {
        s.execute(&format!("insert into t values ({i}, 'it''s row {i}')"))
            .unwrap();
    }
    s.execute("select count(*) from t where a < 50").unwrap();
    e
}

#[test]
fn daemon_end_to_end_via_sql() {
    let engine = engine_with_activity();
    let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig::default(),
    );
    daemon.poll_once().unwrap();

    // All seven Fig 3 tables are populated. Indexes only fill when one was
    // used; the wait/ASH rollups depend on wall-clock sampling cadence and
    // are pinned deterministically in tests/wait_events.rs instead.
    for t in WL_TABLES {
        let n = wldb.row_count(t).unwrap();
        if matches!(*t, "wl_indexes" | "wl_waits" | "wl_ash") {
            continue;
        }
        assert!(n > 0, "{t} must have rows");
    }
    // Statement texts (with their embedded escaped quotes) survived the
    // round trip. The stored text is the raw SQL, so the pattern matches
    // the doubled quote form.
    let rows = wldb
        .query("select query_text from wl_statements where query_text like '%row 5%' limit 1")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows[0].get(0).as_str().unwrap().contains("it''s"));
    // Trend analysis: per-statement totals via SQL on the workload DB.
    let rows = wldb
        .query(
            "select hash, count(*) as n, sum(exec_cpu) from wl_workload \
             group by hash order by n desc limit 5",
        )
        .unwrap();
    assert!(!rows.is_empty());
}

#[test]
fn incremental_polls_do_not_duplicate() {
    let engine = engine_with_activity();
    let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig::default(),
    );
    daemon.poll_once().unwrap();
    let first = wldb.row_count("wl_workload").unwrap();
    daemon.poll_once().unwrap();
    assert_eq!(wldb.row_count("wl_workload").unwrap(), first);
    // New activity → only the delta arrives.
    let s = engine.open_session();
    s.execute("select count(*) from t").unwrap();
    daemon.poll_once().unwrap();
    assert_eq!(wldb.row_count("wl_workload").unwrap(), first + 1);
}

#[test]
fn seven_day_retention_window() {
    let engine = engine_with_activity();
    let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig::default(),
    );
    daemon.poll_once().unwrap();
    let day = 24 * 3600;
    // Three days later: new work arrives, old work stays (inside the window).
    engine.sim_clock().advance_secs(3 * day);
    let s = engine.open_session();
    s.execute("select count(*) from t where a = 1").unwrap();
    daemon.poll_once().unwrap();
    let mid = wldb.row_count("wl_workload").unwrap();
    assert!(mid > 0);
    // Nine days after the start: the first batch ages out, the day-3 batch
    // survives.
    engine.sim_clock().advance_secs(5 * day);
    daemon.poll_once().unwrap();
    let rows = wldb
        .query("select ts from wl_workload order by ts")
        .unwrap();
    assert!(!rows.is_empty());
    assert!(rows
        .iter()
        .all(|r| r.get(0).as_int().unwrap() >= 3 * day as i64));
}

#[test]
fn file_backed_workload_db_survives_restart() {
    let dir = std::env::temp_dir().join(format!("ingot-wldb-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = engine_with_activity();
    let stmt_count;
    {
        let wldb = Arc::new(WorkloadDb::file_backed(&dir, engine.sim_clock().clone()).unwrap());
        let daemon = StorageDaemon::new(
            Arc::clone(&engine),
            Arc::clone(&wldb),
            DaemonConfig::default(),
        );
        daemon.poll_once().unwrap();
        stmt_count = wldb.row_count("wl_statements").unwrap();
        wldb.flush().unwrap();
    }
    // "Restart": a fresh engine re-attaches the same directory. The data
    // files are still there with content.
    let total: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .map(|f| f.unwrap().metadata().unwrap().len())
        .sum();
    assert!(total > 0, "expected persisted bytes in {dir:?}");
    assert!(stmt_count > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn background_daemon_with_alerts() {
    let engine = engine_with_activity();
    let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        wldb,
        DaemonConfig {
            interval: Duration::from_millis(15),
            ..Default::default()
        },
    );
    daemon.add_rule(AlertRule::max_sessions(0));
    let handle = daemon.spawn().unwrap();
    let _busy = engine.open_session();
    // The alert needs one poll that samples statistics *after* `_busy`
    // opened; under a loaded test host the daemon thread can be starved,
    // so wait for the alert rather than for a fixed interval.
    let mut alerts = Vec::new();
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(20));
        alerts = handle.daemon().take_alerts();
        if !alerts.is_empty() {
            break;
        }
    }
    handle.stop();
    assert!(!alerts.is_empty(), "session count above 0 must alert");
}

#[test]
fn growth_projection_matches_paper_formula() {
    let engine = engine_with_activity();
    let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig::default(),
    );
    daemon.poll_once().unwrap();
    engine.sim_clock().advance_secs(3600);
    let s = engine.open_session();
    for i in 0..20 {
        s.execute(&format!("select count(*) from t where a = {i}"))
            .unwrap();
    }
    daemon.poll_once().unwrap();
    let g = wldb.growth();
    let rate = g.bytes_per_hour().expect("one simulated hour elapsed");
    let projected = g.projected_size(7 * 24 * 3600).unwrap();
    assert!((projected - rate * 168.0).abs() < 1.0);
}

#[test]
fn analyzer_reads_the_workload_db() {
    // The paper's architecture: the analyzer works off the *persistent*
    // store, not the live buffers.
    let engine = engine_with_activity();
    let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig::default(),
    );
    daemon.poll_once().unwrap();
    let view = WorkloadView::from_workload_db(&wldb).unwrap();
    assert!(!view.statements.is_empty());
    assert!(!view.tables.is_empty());
    let report = Analyzer::default().analyze(&engine, &view).unwrap();
    // The heap table overflowed during load → B-Tree recommendation.
    assert!(report
        .recommendations
        .iter()
        .any(|r| matches!(r, Recommendation::ModifyToBTree { table, .. } if table == "t")));
}
