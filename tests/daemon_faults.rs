//! Fault-injection integration tests: the storage daemon's self-healing
//! behaviour end to end. A scripted transient outage of the workload DB's
//! disk backend must lose no monitor snapshots once the backend heals
//! (row-count parity with a no-fault run); permanent failures must
//! quarantine the daemon with a self-alert while rule evaluation keeps
//! working; a torn flush must be repaired by `WorkloadDb::recover` with
//! only the unacknowledged tail dropped; and the daemon's health counters
//! must be queryable over SQL as `ima$daemon_health`.

use std::collections::BTreeMap;
use std::sync::Arc;

use ingot::daemon::wldb::WL_TABLES;
use ingot::prelude::*;
use ingot::storage::PAGE_SIZE;

/// A monitored engine with a seed workload, its fault-wrapped workload DB
/// (in-memory store behind a `FaultInjectingBackend`), and the daemon.
fn faulted_setup() -> (
    Arc<Engine>,
    Session,
    Arc<FaultInjectingBackend>,
    Arc<WorkloadDb>,
    StorageDaemon,
) {
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let session = engine.open_session();
    session
        .execute("create table t (a int not null, b text)")
        .unwrap();
    for i in 0..40 {
        session
            .execute(&format!("insert into t values ({i}, 'seed row {i}')"))
            .unwrap();
    }

    let fb = Arc::new(FaultInjectingBackend::new(
        Box::new(MemoryBackend::new()),
        FaultPlan::new(),
    ));
    // Single-page main extents so a burst of appends must allocate overflow
    // pages — the injection point for append-time faults.
    let wl_config = EngineConfig {
        monitor_enabled: false,
        heap_main_pages: 1,
        buffer_pool_pages: 256,
        ..EngineConfig::default()
    };
    let wl_engine = Engine::builder()
        .config(wl_config)
        .clock(engine.sim_clock().clone())
        .backend(Box::new(Arc::clone(&fb)))
        .build()
        .unwrap();
    let wldb = Arc::new(WorkloadDb::with_engine(wl_engine).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig {
            polls_per_flush: 1,
            ..Default::default()
        },
    );
    (engine, session, fb, wldb, daemon)
}

/// Enough fresh, distinct statements that appending them must allocate
/// pages (70 workload rows ≫ one 8 KiB page).
fn burst(session: &Session, lo: u64) {
    for i in lo..lo + 70 {
        session
            .execute(&format!("insert into t values ({i}, 'outage row {i}')"))
            .unwrap();
    }
}

/// Run the shared scenario — one healthy poll, two polls over a burst of
/// activity (under a scripted transient outage when `outage`), heal, one
/// catch-up poll — and return the final per-table row counts.
fn run_scenario(outage: bool) -> BTreeMap<&'static str, u64> {
    let (engine, session, fb, wldb, daemon) = faulted_setup();
    daemon.poll_once().unwrap();

    if outage {
        fb.set_plan(FaultPlan::parse("alloc#*=transient").unwrap());
    }
    for poll in 0..2u64 {
        engine.sim_clock().advance_secs(30);
        burst(&session, 100 + poll * 100);
        let result = daemon.poll_once();
        assert_eq!(result.is_err(), outage, "poll outcome with outage={outage}");
    }
    if outage {
        assert_eq!(daemon.health().state(), HealthState::Degraded);
        assert_eq!(daemon.health().buffered_snapshots(), 2);
        assert!(daemon.health().failed_polls() >= 2);
        let stats = fb.stats();
        assert!(stats.injected_transient > 0, "the plan must actually fire");
        fb.set_plan(FaultPlan::new()); // heal the backend
    }
    engine.sim_clock().advance_secs(30);
    daemon.poll_once().unwrap();

    assert_eq!(daemon.health().state(), HealthState::Healthy);
    assert_eq!(daemon.health().buffered_snapshots(), 0);
    if outage {
        assert_eq!(daemon.health().recovered_snapshots(), 2);
        assert_eq!(daemon.health().dropped_snapshots(), 0);
        let alerts = daemon.take_alerts();
        assert!(
            alerts.iter().any(|a| a.message.contains("degraded")),
            "degradation must self-alert: {alerts:?}"
        );
        assert!(
            alerts.iter().any(|a| a.message.contains("recovered")),
            "recovery must self-alert: {alerts:?}"
        );
    }
    WL_TABLES
        .iter()
        .map(|t| (*t, wldb.row_count(t).unwrap()))
        .collect()
}

#[test]
fn transient_outage_loses_no_snapshots() {
    let mut healthy = run_scenario(false);
    let mut faulted = run_scenario(true);
    // wl_metrics is a per-successful-poll time series of engine gauges, not
    // cursor-driven snapshot data: the outage run performs fewer successful
    // polls, so it holds fewer (but still some) metrics samples.
    let healthy_metrics = healthy.remove("wl_metrics").unwrap();
    let faulted_metrics = faulted.remove("wl_metrics").unwrap();
    assert!(healthy_metrics > 0 && faulted_metrics > 0);
    assert!(faulted_metrics <= healthy_metrics);
    assert_eq!(
        healthy, faulted,
        "after healing, every table must hold exactly the no-fault row counts"
    );
}

#[test]
fn permanent_failure_quarantines_with_alert() {
    let (engine, session, fb, _wldb, daemon) = faulted_setup();
    daemon.poll_once().unwrap();
    daemon.add_rule(AlertRule::max_sessions(0)); // DBA rule stays active

    fb.set_plan(FaultPlan::parse("alloc#*=permanent").unwrap());
    engine.sim_clock().advance_secs(30);
    burst(&session, 500);
    assert!(daemon.poll_once().is_err());
    assert_eq!(daemon.health().state(), HealthState::Quarantined);

    // While quarantined, polls drop snapshots without touching the store,
    // but alert rules still evaluate — monitoring degrades, never stops.
    let allocs_at_quarantine = fb.stats().allocs;
    engine.sim_clock().advance_secs(30);
    assert!(daemon.poll_once().is_err());
    assert_eq!(fb.stats().allocs, allocs_at_quarantine);
    assert!(daemon.health().dropped_snapshots() >= 1);

    let alerts = daemon.take_alerts();
    assert!(
        alerts
            .iter()
            .any(|a| a.rule == "daemon_health" && a.message.contains("quarantined")),
        "quarantine must self-alert: {alerts:?}"
    );
    assert!(
        alerts.iter().any(|a| a.rule == "max_sessions"),
        "DBA rules must keep firing while quarantined: {alerts:?}"
    );

    // The monitored engine sees the daemon's state over plain SQL.
    let rows = session
        .execute("select state, dropped_snapshots from ima$daemon_health")
        .unwrap()
        .rows;
    assert_eq!(rows[0].get(0).as_str(), Some("quarantined"));
    assert!(rows[0].get(1).as_int().unwrap() >= 1);
}

#[test]
fn torn_flush_recovery_truncates_only_the_tail() {
    let dir = std::env::temp_dir().join(format!("ingot-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let engine = Engine::builder()
            .config(EngineConfig::monitoring())
            .build()
            .unwrap();
        let s = engine.open_session();
        s.execute("create table t (a int not null, b text)")
            .unwrap();
        for i in 0..200 {
            s.execute(&format!("insert into t values ({i}, 'persisted row {i}')"))
                .unwrap();
        }
        let wldb = WorkloadDb::file_backed(&dir, engine.sim_clock().clone()).unwrap();
        wldb.append_from(engine.monitor().unwrap(), 0).unwrap();
        // Durable checkpoint: fsync + page-checksum manifest.
        wldb.flush().unwrap();
    }

    // Crash simulation: a flush that never completed appended one full page
    // of garbage plus half a page to the largest data file.
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "dat"))
        .max_by_key(|p| std::fs::metadata(p).unwrap().len())
        .unwrap();
    let clean_len = std::fs::metadata(&victim).unwrap().len();
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&victim)
            .unwrap();
        f.write_all(&vec![0xAB; PAGE_SIZE + PAGE_SIZE / 2]).unwrap();
    }

    let report = WorkloadDb::recover(&dir).unwrap();
    assert!(report.manifest_found && report.manifest_valid);
    assert!(report.torn_pages >= 1, "{report}");
    assert!(report.pages_truncated >= 1, "{report}");
    assert!(report.rows_salvaged > 0, "{report}");
    assert_eq!(
        std::fs::metadata(&victim).unwrap().len(),
        clean_len,
        "recovery must restore exactly the checkpointed length"
    );

    // Recovery is idempotent: a second pass finds nothing to repair.
    let again = WorkloadDb::recover(&dir).unwrap();
    assert_eq!(again.torn_pages, 0, "{again}");
    assert_eq!(again.pages_truncated, 0, "{again}");
    assert_eq!(again.rows_salvaged, report.rows_salvaged);

    // The daemon resumes on the repaired directory.
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let s = engine.open_session();
    s.execute("create table fresh (a int)").unwrap();
    let wldb = Arc::new(WorkloadDb::file_backed(&dir, engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig::default(),
    );
    daemon.poll_once().unwrap();
    assert_eq!(daemon.health().state(), HealthState::Healthy);
    assert!(wldb.row_count("wl_workload").unwrap() > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn daemon_health_is_queryable_via_sql() {
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let s = engine.open_session();
    s.execute("create table t (a int)").unwrap();
    let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(Arc::clone(&engine), wldb, DaemonConfig::default());
    daemon.poll_once().unwrap();

    let rows = s
        .execute(
            "select state, polls, failed_polls, consecutive_failures, retries, \
             buffered_snapshots, recovered_snapshots, dropped_snapshots, \
             degraded_since_secs, last_error from ima$daemon_health",
        )
        .unwrap()
        .rows;
    assert_eq!(rows.len(), 1, "exactly one health row");
    assert_eq!(rows[0].get(0).as_str(), Some("healthy"));
    assert_eq!(rows[0].get(1).as_int(), Some(1)); // one poll so far
    assert_eq!(rows[0].get(2).as_int(), Some(0));
    assert_eq!(rows[0].get(8).as_int(), Some(-1)); // never degraded
    assert_eq!(rows[0].get(9).as_str(), Some(""));

    // `select *` resolves through the same registered schema.
    let all = s.execute("select * from ima$daemon_health").unwrap();
    assert_eq!(all.rows.len(), 1);
    assert_eq!(all.rows[0].get(0).as_str(), Some("healthy"));
}
