//! Row-level MVCC integration: snapshot reads that never block writers,
//! first-committer-wins, `ima$transactions`, and version-chain GC.

// Real-time pacing: sleeps coordinate contending sessions — the sanctioned
// exception to the workspace sleep ban.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ingot::prelude::*;

fn engine() -> Arc<Engine> {
    Engine::builder()
        .config(EngineConfig {
            lock_timeout_ms: 400,
            ..EngineConfig::monitoring()
        })
        .build()
        .unwrap()
}

fn metric(rows: &[Row], name: &str) -> i64 {
    rows.iter()
        .find(|r| r.get(0).as_str() == Some(name))
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .get(2)
        .as_int()
        .unwrap()
}

#[test]
fn snapshot_readers_never_block_writers() {
    let e = engine();
    let s1 = e.open_session();
    s1.execute("create table t (id int not null primary key, v int)")
        .unwrap();
    s1.execute("insert into t values (1, 10)").unwrap();

    // Writer holds an uncommitted update (row-X + table-S fence).
    s1.begin().unwrap();
    s1.execute("update t set v = 20 where id = 1").unwrap();

    // A reader on another session sees the pre-update value without ever
    // queueing on a lock.
    let waits_before = e.locks().stats().waits_total;
    let s2 = e.open_session();
    let r = s2.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(10), "pre-commit value");
    assert_eq!(
        e.locks().stats().waits_total,
        waits_before,
        "snapshot read must not wait on the writer"
    );

    // ...while the writer reads its own uncommitted version.
    let r = s1.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(20), "own write visible");

    s1.commit().unwrap();
    let r = s2.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(20), "post-commit value");
}

#[test]
fn explicit_transactions_read_a_stable_snapshot() {
    let e = engine();
    let s1 = e.open_session();
    s1.execute("create table t (id int not null primary key, v int)")
        .unwrap();
    s1.execute("insert into t values (1, 1)").unwrap();

    // The reader's snapshot pins at its first statement and holds for the
    // whole transaction (snapshot isolation), even across foreign commits.
    let s2 = e.open_session();
    s2.begin().unwrap();
    let r = s2.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(1));

    s1.execute("update t set v = 2 where id = 1").unwrap(); // auto-commit

    let r = s2.execute("select v from t where id = 1").unwrap();
    assert_eq!(
        r.rows[0].get(0).as_int(),
        Some(1),
        "repeatable read inside the transaction"
    );
    s2.commit().unwrap();
    let r = s2.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(2), "fresh snapshot after");
}

#[test]
fn first_committer_wins_aborts_the_stale_writer() {
    let e = engine();
    let s1 = e.open_session();
    s1.execute("create table t (id int not null primary key, v int)")
        .unwrap();
    s1.execute("insert into t values (1, 0)").unwrap();

    // B snapshots first, then A updates and commits, then B tries to write
    // the row it read: B's base version was superseded, so B must lose.
    let s2 = e.open_session();
    s2.begin().unwrap();
    let r = s2.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(0));

    s1.execute("update t set v = 1 where id = 1").unwrap(); // auto-commit

    let err = s2.execute("update t set v = 99 where id = 1").unwrap_err();
    assert!(matches!(err, Error::WriteConflict(_)), "{err:?}");

    // The conflict aborted B's transaction and the abort taxonomy shows it.
    let s3 = e.open_session();
    let r = s3.execute("select * from ima$transactions").unwrap();
    assert!(metric(&r.rows, "aborts_write_conflict") >= 1, "{r:?}");

    // The winner's value survives; B can retry on a fresh snapshot.
    let r = s2.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(1), "winner's value");
    s2.execute("update t set v = 99 where id = 1").unwrap();
    let r = s2.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(99));
}

#[test]
fn ima_transactions_is_queryable_under_load() {
    let e = engine();
    {
        let s = e.open_session();
        s.execute("create table t (id int not null primary key, v int)")
            .unwrap();
        for i in 0..4 {
            s.execute(&format!("insert into t values ({i}, 0)"))
                .unwrap();
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..3 {
        let e = Arc::clone(&e);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let s = e.open_session();
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                s.execute(&format!("update t set v = v + 1 where id = {}", w % 4))
                    .unwrap();
                n += 1;
            }
            n
        }));
    }

    // Query the MVCC authority while the writers hammer: the virtual table
    // is lock-free, so every read completes and the commit sequence climbs.
    let s = e.open_session();
    let mut last_seq = 0i64;
    for _ in 0..50 {
        let r = s.execute("select * from ima$transactions").unwrap();
        let seq = metric(&r.rows, "commit_seq");
        assert!(seq >= last_seq, "commit_seq is monotone");
        last_seq = seq;
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    let committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(committed > 0);

    let r = s.execute("select * from ima$transactions").unwrap();
    assert!(
        metric(&r.rows, "commit_seq") as u64 >= committed,
        "every auto-commit update published a timestamp: {r:?}"
    );
    assert!(metric(&r.rows, "committed_total") as u64 >= committed);
    // Undo failures are surfaced as their own counter (and none occurred:
    // every abort here replayed its undo chain cleanly).
    assert_eq!(metric(&r.rows, "undo_failures"), 0, "{r:?}");

    // An open snapshot appears as a per-transaction row...
    s.begin().unwrap();
    s.execute("select count(*) from t").unwrap();
    let r = s.execute("select * from ima$transactions").unwrap();
    assert!(metric(&r.rows, "active_snapshots") >= 1, "{r:?}");
    assert!(
        r.rows
            .iter()
            .any(|row| row.get(0).as_str() == Some("snapshot_ts") && row.get(1).as_int().is_some()),
        "snapshot_ts row names its holder: {r:?}"
    );
    s.commit().unwrap();
}

#[test]
fn gc_reclaims_dead_versions_and_updates_counters() {
    let e = engine();
    let s = e.open_session();
    s.execute("create table t (id int not null primary key, v int)")
        .unwrap();
    s.execute("insert into t values (1, 0)").unwrap();
    for _ in 0..20 {
        s.execute("update t set v = v + 1 where id = 1").unwrap();
    }

    let removed = e.mvcc_gc().unwrap();
    assert!(removed >= 19, "dead versions reclaimed: {removed}");

    let r = s.execute("select v from t where id = 1").unwrap();
    assert_eq!(
        r.rows[0].get(0).as_int(),
        Some(20),
        "live value survives GC"
    );

    let r = s.execute("select * from ima$transactions").unwrap();
    assert!(metric(&r.rows, "gc_runs") >= 1, "{r:?}");
    assert!(metric(&r.rows, "gc_versions_removed") >= 19, "{r:?}");
    assert!(metric(&r.rows, "chain_versions") >= 1, "{r:?}");
    assert_eq!(metric(&r.rows, "chain_longest"), 1, "chains trimmed: {r:?}");

    // An open transaction blocks the sweep outright: GC runs only on a
    // quiesced engine (lock-free readers may be walking the very chains it
    // would unlink), so its snapshot's versions are safe by construction.
    let s2 = e.open_session();
    s2.begin().unwrap();
    let r = s2.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(20));
    s.execute("update t set v = 100 where id = 1").unwrap();
    assert!(e.mvcc_gc().is_err(), "open transaction blocks the sweep");
    let r = s2.execute("select v from t where id = 1").unwrap();
    assert_eq!(
        r.rows[0].get(0).as_int(),
        Some(20),
        "the old snapshot still reads its version"
    );
    s2.commit().unwrap();
    assert!(e.mvcc_gc().unwrap() >= 1, "superseded version reclaimed");
    let r = s.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int(), Some(100));
}
