//! Property test: the per-operator span decomposition is *exact* — the
//! exclusive tuple counts across a query's operator spans sum to the
//! statement-level actual CPU cost (`exec_cpu`) that the monitor records,
//! for arbitrary table contents and access paths.

use ingot::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn span_tuples_sum_to_statement_exec_cpu(
        rows in 1usize..120,
        modulo in 1i64..12,
        probe in 0i64..140,
    ) {
        let e = Engine::builder().config(EngineConfig::tracing()).build().unwrap();
        let s = e.open_session();
        s.execute("create table t (id int not null primary key, v int)").unwrap();
        for i in 0..rows {
            s.execute(&format!("insert into t values ({i}, {})", i as i64 % modulo)).unwrap();
        }
        for sql in [
            format!("select v from t where id = {probe}"),
            format!("select count(*) from t where v = {}", probe % modulo),
            "select id, v from t order by v limit 5".to_string(),
        ] {
            s.execute(&sql).unwrap();
            let rec = e.monitor().unwrap().workload().last().unwrap().clone();
            let trace = e.tracer().unwrap().recent_traces().last().unwrap().clone();
            prop_assert_eq!(trace.hash, rec.hash, "trace and record describe the same stmt");
            let sum: u64 = trace.ops.iter().map(|o| o.tuples).sum();
            prop_assert_eq!(sum, rec.exec_cpu, "spans must decompose exec_cpu for {}", sql);
            // rows_out of the root operator equals the result cardinality
            // recorded in the trace's span tree (consistency of the tree).
            for op in &trace.ops {
                let child_out: u64 = trace
                    .ops
                    .iter()
                    .filter(|c| c.parent == Some(op.op_id))
                    .map(|c| c.rows_out)
                    .sum();
                prop_assert_eq!(op.rows_in, child_out, "rows_in is the children's rows_out");
            }
        }
    }
}
