//! Wait-event + ASH integration (the observability pipeline end to end):
//! a contended multi-session workload populates `ima$wait_events`,
//! `ima$active_sessions` and `ima$ash`; per-session charges reconcile with
//! the global registry and never exceed wall time; the storage daemon rolls
//! the data into `wl_waits` / `wl_ash`; and a WalFsync-dominated write-heavy
//! interval draws a tuning recommendation from the analyzer's wait-profile
//! rules.

// Real-time pacing: contending sessions genuinely block each other here —
// the sanctioned exception to the workspace sleep ban.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;

use ingot::analyzer::Recommendation;
use ingot::common::waits::{WaitEvent, WAIT_EVENT_COUNT};
use ingot::common::{MonotonicClock, StmtHash, WalFsyncMode};
use ingot::core::AshSampler;
use ingot::prelude::*;
use proptest::prelude::*;

fn contended_engine() -> Arc<Engine> {
    Engine::builder()
        .config(EngineConfig {
            // Fast ASH cadence so a short workload leaves history, and a
            // visible fsync cost so WAL waits have real wall-clock weight.
            ash_sample_interval_ms: 1,
            wal_sync_delay_us: 200,
            lock_timeout_ms: 5_000,
            ..EngineConfig::monitoring()
        })
        .build()
        .unwrap()
}

/// Eight sessions hammering one table: session wait charges reconcile with
/// the global registry, stay within wall time, and all three IMA tables
/// answer SQL afterwards.
#[test]
fn contended_sessions_populate_wait_tables() {
    let engine = contended_engine();
    let seed = engine.open_session();
    seed.execute("create table t (a int, b int)").unwrap();
    for i in 0..64 {
        seed.execute(&format!("insert into t values ({i}, 0)"))
            .unwrap();
    }

    let mut handles = Vec::new();
    for w in 0..8 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let s = engine.open_session();
            let start = engine.wall_clock().now_nanos();
            let mut statement_wait_ns = 0u64;
            for i in 0..12 {
                // Single-statement transactions on a shared table: the table
                // lock serializes writers (LockWaitX), every commit pays the
                // WAL barrier (WalFsync / GroupCommitDally).
                let r = s
                    .execute(&format!(
                        "update t set b = {i} where a = {}",
                        (w * 7 + i) % 64
                    ))
                    .unwrap();
                statement_wait_ns += r.wait_ns;
            }
            let elapsed = engine.wall_clock().now_nanos() - start;
            let session_total: u64 = s.wait_totals().iter().map(|t| t.total_ns).sum();
            (session_total, statement_wait_ns, elapsed)
        }));
    }
    let mut workers_total = 0u64;
    for h in handles {
        let (session_total, statement_wait_ns, elapsed) = h.join().unwrap();
        assert!(
            session_total <= elapsed,
            "a session cannot wait longer than it ran: {session_total} > {elapsed}"
        );
        assert_eq!(
            session_total, statement_wait_ns,
            "per-statement wait_ns must add up to the session's counters"
        );
        workers_total += session_total;
    }

    // Every wait was charged inside some session's statement, so the global
    // registry must equal the sum of per-session charges.
    let registry = engine.wait_registry().expect("wait subsystem on");
    let global: u64 = registry
        .counters()
        .snapshot()
        .iter()
        .map(|t| t.total_ns)
        .sum();
    let seed_total: u64 = seed.wait_totals().iter().map(|t| t.total_ns).sum();
    assert_eq!(
        global,
        workers_total + seed_total,
        "global wait time must reconcile with the per-session charges"
    );
    assert!(global > 0, "a contended commit-heavy workload must wait");
    assert!(
        registry.counters().count(WaitEvent::WalFsync) > 0,
        "every leader commit pays the fsync barrier"
    );

    // The cumulative table: always exactly one row per taxonomy event.
    let r = seed
        .execute("select event, count, total_ns from ima$wait_events")
        .unwrap();
    assert_eq!(
        r.rows.len(),
        WAIT_EVENT_COUNT,
        "one row per WaitEvent variant"
    );
    let wal_row = r
        .rows
        .iter()
        .find(|row| row.get(0).as_str() == Some("WalFsync"))
        .expect("WalFsync row");
    assert!(wal_row.get(1).as_int().unwrap() > 0);
    assert!(wal_row.get(2).as_int().unwrap() > 0);

    // The live view: the querying session is mid-statement while the
    // provider runs, so it observes at least itself.
    let r = seed
        .execute("select session, statement, event from ima$active_sessions")
        .unwrap();
    assert!(
        !r.rows.is_empty(),
        "the querying session must appear in ima$active_sessions"
    );
    assert!(r.rows.iter().any(|row| row
        .get(1)
        .as_str()
        .unwrap_or("")
        .contains("ima$active_sessions")));

    // The history ring: a 1 ms cadence over a multi-ms workload leaves rows.
    let r = seed
        .execute("select at_ns, session, event from ima$ash")
        .unwrap();
    assert!(!r.rows.is_empty(), "ASH history must be populated");
}

/// The daemon's poll copies wait counters and ASH samples into the workload
/// DB, and the long-term view reads them back.
#[test]
fn daemon_rolls_waits_into_workload_db() {
    let engine = contended_engine();
    let s = engine.open_session();
    s.execute("create table t (a int)").unwrap();
    for i in 0..24 {
        s.execute(&format!("insert into t values ({i})")).unwrap();
    }
    let wldb = Arc::new(WorkloadDb::in_memory(engine.sim_clock().clone()).unwrap());
    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig::default(),
    );
    daemon.poll_once().unwrap();

    assert!(
        wldb.row_count("wl_waits").unwrap() > 0,
        "wait totals rolled up"
    );
    assert!(
        wldb.row_count("wl_ash").unwrap() > 0,
        "ASH samples rolled up"
    );

    let view = WorkloadView::from_workload_db(&wldb).unwrap();
    assert!(
        view.waits
            .iter()
            .any(|w| w.event == "WalFsync" && w.total_ns > 0),
        "waits: {:?}",
        view.waits
    );
    assert!(!view.ash.is_empty(), "ash profiles: {:?}", view.ash);

    // A second poll with no new activity appends nothing (cursor-gated).
    let waits_before = wldb.row_count("wl_waits").unwrap();
    let ash_before = wldb.row_count("wl_ash").unwrap();
    daemon.poll_once().unwrap();
    assert_eq!(wldb.row_count("wl_waits").unwrap(), waits_before);
    assert_eq!(wldb.row_count("wl_ash").unwrap(), ash_before);
}

/// A write-heavy interval dominated by WalFsync waits draws the analyzer's
/// fsync-amortisation recommendation, citing the observed percentages — and
/// EXPLAIN ANALYZE surfaces the same waits inline.
#[test]
fn walfsync_dominated_interval_draws_recommendation() {
    let engine = Engine::builder()
        .config(EngineConfig {
            wal_fsync_mode: WalFsyncMode::Always,
            wal_sync_delay_us: 500,
            ..EngineConfig::monitoring()
        })
        .build()
        .unwrap();
    let s = engine.open_session();
    s.execute("create table orders (id int, total int)")
        .unwrap();
    for i in 0..30 {
        s.execute(&format!("insert into orders values ({i}, {})", i * 10))
            .unwrap();
    }

    let view = WorkloadView::from_engine(&engine);
    assert!(
        view.waits.iter().any(|w| w.event == "WalFsync"),
        "waits: {:?}",
        view.waits
    );
    let report = Analyzer::default().analyze(&engine, &view).unwrap();
    let tune = report
        .recommendations
        .iter()
        .find(|r| matches!(r, Recommendation::TuneWalFsync { .. }))
        .expect("WalFsync dominance must draw a tuning recommendation");
    assert!(tune.describe().contains('%'), "{}", tune.describe());
    // The recommendation's SQL is harmlessly executable.
    s.execute(&tune.to_sql()).unwrap();

    // EXPLAIN ANALYZE reports the same waits inline.
    let r = s
        .execute("explain analyze insert into orders values (999, 0)")
        .unwrap();
    let text: String = r
        .rows
        .iter()
        .filter_map(|row| row.get(0).as_str().map(str::to_owned))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("Waits:"), "explain output:\n{text}");
    assert!(text.contains("WalFsync"), "explain output:\n{text}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cooperative cadence: over any tick pattern the sample count tracks
    /// elapsed/interval (never more than one per interval, never starved
    /// below the coarser tick+interval grid) and the ring stays bounded.
    #[test]
    fn ash_sampler_cadence_and_bounded_ring(
        interval in 1u64..1_000,
        ticks in 1u64..1_500,
        step in 1u64..50,
    ) {
        let sampler = AshSampler::new(MonotonicClock::new(), interval, 64);
        let slot = sampler.register_session(1);
        slot.begin_statement(StmtHash::of("q"), "q".into(), 0);
        for k in 1..=ticks {
            sampler.sample_if_due(k * step);
        }
        let elapsed = ticks * step;
        let taken = sampler.samples_taken();
        prop_assert!(
            taken <= elapsed / interval,
            "{taken} samples from {elapsed} ns at interval {interval}"
        );
        prop_assert!(
            taken >= elapsed / (interval + step),
            "{taken} samples starved: {elapsed} ns, interval {interval}, step {step}"
        );
        prop_assert!(sampler.history().len() <= 64, "ring must stay bounded");
        prop_assert_eq!(sampler.total_recorded(), taken, "one active session: one row per sample");
    }
}
