//! Integration tests of the evaluation workload itself: the three §V-A test
//! sets run end-to-end under monitoring and behave like the paper describes.

use ingot::prelude::*;
use ingot::workload::{analytic_queries, point_select_statements, simple_join_statements};

fn setup(proteins: u64) -> (std::sync::Arc<Engine>, NrefConfig) {
    let engine = Engine::builder()
        .config(EngineConfig::monitoring().with_statement_capacity(1000))
        .build()
        .unwrap();
    let nref = NrefConfig {
        proteins,
        taxa: 30,
        ..NrefConfig::default()
    };
    load_nref(&engine, &nref).unwrap();
    // Keyed primary structures, like the paper's testbed.
    let s = engine.open_session();
    for t in [
        "protein",
        "organism",
        "taxonomy",
        "source",
        "neighboring_seq",
        "seq_feature",
    ] {
        s.execute(&format!("modify {t} to btree")).unwrap();
    }
    (engine, nref)
}

#[test]
fn analytic_set_runs_and_is_fully_recorded() {
    let (engine, nref) = setup(800);
    let session = engine.open_session();
    let queries = analytic_queries(&nref);
    let mut non_empty = 0;
    for q in &queries {
        let r = session.execute(q).unwrap();
        if !r.rows.is_empty() {
            non_empty += 1;
        }
    }
    assert!(
        non_empty > 35,
        "most analytic queries should return rows, got {non_empty}/50"
    );
    // Every query text is in the statements buffer.
    let m = engine.monitor().unwrap();
    let stmts = m.statements();
    for q in &queries {
        assert!(
            stmts.iter().any(|s| s.text == *q),
            "statement missing from monitor: {q}"
        );
    }
}

#[test]
fn simple_join_set_cycles_ids_and_overflows_the_statement_ring() {
    // The paper's 50k test deliberately exceeds the 1000-statement buffer:
    // "the where clause cycling through 50,000 different nref ids, forcing
    // the monitor to log each statement as a new one".
    let (engine, nref) = setup(3000);
    let session = engine.open_session();
    for q in simple_join_statements(&nref, 2500) {
        let r = session.execute(&q).unwrap();
        assert!(!r.rows.is_empty());
        assert_eq!(r.rows[0].len(), 3); // nref_id, sequence, ordinal
    }
    let m = engine.monitor().unwrap();
    assert_eq!(
        m.statements().len(),
        1000,
        "ring must cap at the configured 1000 distinct statements"
    );
    assert!(m.statements_recorded() >= 2500);
}

#[test]
fn point_selects_hit_keyed_access() {
    let (engine, nref) = setup(2000);
    let session = engine.open_session();
    for q in point_select_statements(&nref, 200) {
        let r = session.execute(&q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(
            r.actual_cost.cpu <= 2.0,
            "point select must not scan: {} tuples for {q}",
            r.actual_cost.cpu
        );
    }
}

#[test]
fn first_point_select_is_slowest_then_caching_kicks_in() {
    // The Fig 5 narrative: "for the very first statement, the DBMS needs to
    // initialize its caches … the second statement already shows the impact
    // of caching".
    let (engine, nref) = setup(2000);
    // Force cold start for the probe path by dropping buffered pages.
    engine.catalog().read().pool().clear().unwrap();
    let session = engine.open_session();
    let mut ios = Vec::new();
    for q in point_select_statements(&nref, 5) {
        let r = session.execute(&q).unwrap();
        ios.push(r.actual_cost.io);
    }
    assert!(
        ios[0] > ios[4],
        "first statement faults pages in, later ones are cached: {ios:?}"
    );
}

#[test]
fn workload_is_deterministic_across_engines() {
    let (e1, nref) = setup(500);
    let (e2, _) = setup(500);
    let s1 = e1.open_session();
    let s2 = e2.open_session();
    for q in analytic_queries(&nref).iter().take(10) {
        let mut r1 = s1.execute(q).unwrap().rows;
        let mut r2 = s2.execute(q).unwrap().rows;
        r1.sort();
        r2.sort();
        assert_eq!(r1, r2, "divergent results for {q}");
    }
}
