//! Multi-threaded stress: many sessions hammer one shared engine with mixed
//! statements while invariants are checked — row counts must come out exact,
//! increments must never be lost, and lock timeouts must never leak held
//! locks. This is the correctness backstop for the snapshot-catalog
//! architecture: DML runs against immutable schema snapshots with `&self`
//! row mutators, serialised only by the lock manager's table locks.

// Real-time pacing: sleeps coordinate contending sessions and wait out
// daemon intervals — the sanctioned exception to the workspace sleep ban.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ingot::prelude::*;

fn engine_with_timeout(ms: u64) -> Arc<Engine> {
    Engine::builder()
        .config(EngineConfig {
            lock_timeout_ms: ms,
            ..EngineConfig::monitoring()
        })
        .build()
        .unwrap()
}

/// Eight sessions, each owning a disjoint key range of one shared table:
/// inserts, updates, deletes, and full-table reads interleave freely. The
/// final row count and per-range contents must be exactly what sequential
/// execution would produce.
#[test]
fn mixed_statements_preserve_row_count_invariants() {
    const THREADS: u64 = 8;
    const ROWS: u64 = 24; // per thread: 24 inserts, 12 updates, 6 deletes

    let e = engine_with_timeout(5_000);
    {
        let s = e.open_session();
        s.execute("create table events (id int not null primary key, v int)")
            .unwrap();
    }
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let e = Arc::clone(&e);
        handles.push(std::thread::spawn(move || {
            let s = e.open_session();
            let base = t * 1_000;
            for i in 0..ROWS {
                s.execute(&format!("insert into events values ({}, 0)", base + i))
                    .unwrap();
                // Sprinkle reads of the whole (concurrently changing) table;
                // they must never error or see a torn schema.
                if i % 6 == 0 {
                    s.execute("select count(*) from events").unwrap();
                }
            }
            for i in (0..ROWS).step_by(2) {
                s.execute(&format!(
                    "update events set v = {} where id = {}",
                    i + 1,
                    base + i
                ))
                .unwrap();
            }
            for i in (0..ROWS).step_by(4) {
                s.execute(&format!("delete from events where id = {}", base + i))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let s = e.open_session();
    let survivors = ROWS - ROWS / 4; // every 4th row deleted
    let r = s.execute("select count(*) from events").unwrap();
    assert_eq!(
        r.rows[0].get(0).as_int().unwrap(),
        (THREADS * survivors) as i64
    );
    // Spot-check one range: updated-but-not-deleted rows kept their value.
    let r = s.execute("select v from events where id = 3002").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 3);
    assert_eq!(e.locks().stats().held, 0, "all locks released");
}

/// Read-modify-write increments from eight sessions on four shared rows:
/// the table X lock serialises them, so the final sum equals the number of
/// updates issued — any lost update would show up as a shortfall.
#[test]
fn no_lost_updates_under_contention() {
    const THREADS: u64 = 8;
    const INCREMENTS: u64 = 40;

    let e = engine_with_timeout(5_000);
    {
        let s = e.open_session();
        s.execute("create table counters (id int not null primary key, v int)")
            .unwrap();
        for i in 0..4 {
            s.execute(&format!("insert into counters values ({i}, 0)"))
                .unwrap();
        }
    }
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let e = Arc::clone(&e);
        handles.push(std::thread::spawn(move || {
            let s = e.open_session();
            for _ in 0..INCREMENTS {
                s.execute(&format!(
                    "update counters set v = v + 1 where id = {}",
                    t % 4
                ))
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = e.open_session();
    let r = s.execute("select sum(v) from counters").unwrap();
    assert_eq!(
        r.rows[0].get(0).as_int().unwrap(),
        (THREADS * INCREMENTS) as i64,
        "every increment must be applied exactly once"
    );
}

/// A writer camps on the table while contenders time out. Timed-out
/// statements must abort their auto-transactions cleanly: no held locks may
/// leak, the wait queue must drain, and the table must stay writable.
#[test]
fn lock_timeouts_never_leak_held_locks() {
    let e = engine_with_timeout(50);
    let holder = e.open_session();
    holder
        .execute("create table t (id int not null primary key, v int)")
        .unwrap();
    holder.execute("insert into t values (1, 0)").unwrap();
    holder.begin().unwrap();
    holder.execute("update t set v = 1 where id = 1").unwrap(); // X held

    let timeouts = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..6 {
        let e = Arc::clone(&e);
        let timeouts = Arc::clone(&timeouts);
        handles.push(std::thread::spawn(move || {
            let s = e.open_session();
            for _ in 0..3 {
                match s.execute("update t set v = v + 1 where id = 1") {
                    Err(Error::LockTimeout(_)) => {
                        timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    other => {
                        other.unwrap();
                    }
                }
            }
        }));
    }
    // Keep the X lock long enough for every contender to hit the timeout.
    std::thread::sleep(Duration::from_millis(400));
    holder.commit().unwrap();
    for h in handles {
        h.join().unwrap();
    }

    assert!(
        timeouts.load(Ordering::Relaxed) > 0,
        "contenders must have timed out while the writer camped"
    );
    let stats = e.locks().stats();
    assert_eq!(stats.held, 0, "timed-out statements must not leak locks");
    assert_eq!(stats.waiting, 0, "wait queue must drain");
    // The table is still writable and reads see a consistent value.
    let s = e.open_session();
    s.execute("update t set v = 100 where id = 1").unwrap();
    let r = s.execute("select v from t where id = 1").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 100);
}

/// DDL churn on side tables while DML runs on a main table: with the
/// snapshot catalog, neither side may error — statements bind against a
/// coherent snapshot, and DDL publishes atomically between statements.
#[test]
fn ddl_churn_does_not_disturb_concurrent_dml() {
    let e = engine_with_timeout(5_000);
    {
        let s = e.open_session();
        s.execute("create table main (id int not null primary key, v int)")
            .unwrap();
    }
    let ddl = {
        let e = Arc::clone(&e);
        std::thread::spawn(move || {
            let s = e.open_session();
            for i in 0..20 {
                s.execute(&format!("create table side_{i} (a int)"))
                    .unwrap();
                s.execute(&format!("insert into side_{i} values ({i})"))
                    .unwrap();
                s.execute(&format!("drop table side_{i}")).unwrap();
            }
        })
    };
    let mut dml = Vec::new();
    for t in 0..4u64 {
        let e = Arc::clone(&e);
        dml.push(std::thread::spawn(move || {
            let s = e.open_session();
            for i in 0..30u64 {
                let id = t * 100 + i;
                s.execute(&format!("insert into main values ({id}, {i})"))
                    .unwrap();
                s.execute("select count(*) from main").unwrap();
            }
        }));
    }
    ddl.join().unwrap();
    for h in dml {
        h.join().unwrap();
    }
    let s = e.open_session();
    let r = s.execute("select count(*) from main").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 4 * 30);
    // All side tables are gone again.
    assert!(s.execute("select * from side_0").is_err());
}

/// Prepared-statement mix: eight sessions share one plan cache, each
/// preparing the same three templates and binding disjoint key ranges,
/// while one thread fires DDL mid-run to invalidate everything. Results
/// must be exact and the cache must end hot (hits recorded, no stale
/// plans served across the DDL epoch).
#[test]
fn prepared_statements_share_the_plan_cache_across_sessions() {
    const THREADS: u64 = 8;
    const ROWS: u64 = 30;

    let e = engine_with_timeout(5_000);
    {
        let s = e.open_session();
        s.execute("create table accounts (id int not null primary key, v int)")
            .unwrap();
    }
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let e = Arc::clone(&e);
        handles.push(std::thread::spawn(move || {
            let s = e.open_session();
            let base = (t * 1_000) as i64;
            let ins = s.prepare("insert into accounts values ($1, $2)").unwrap();
            let upd = s
                .prepare("update accounts set v = $2 where id = $1")
                .unwrap();
            let sel = s.prepare("select v from accounts where id = $1").unwrap();
            for i in 0..ROWS as i64 {
                ins.execute(&[Value::Int(base + i), Value::Int(0)]).unwrap();
            }
            for i in 0..ROWS as i64 {
                upd.execute(&[Value::Int(base + i), Value::Int(i + 1)])
                    .unwrap();
            }
            for i in 0..ROWS as i64 {
                let r = sel.execute(&[Value::Int(base + i)]).unwrap();
                assert_eq!(
                    r.rows[0].get(0).as_int().unwrap(),
                    i + 1,
                    "prepared read must see the bound row"
                );
            }
        }));
    }
    // Concurrent DDL: forces epoch bumps + full invalidations mid-workload.
    {
        let e = Arc::clone(&e);
        handles.push(std::thread::spawn(move || {
            let s = e.open_session();
            std::thread::sleep(Duration::from_millis(5));
            s.execute("create index accounts_v on accounts (v)")
                .unwrap();
            std::thread::sleep(Duration::from_millis(5));
            s.execute("drop index accounts_v").unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let s = e.open_session();
    let r = s.execute("select count(*) from accounts").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), (THREADS * ROWS) as i64);
    let stats = e.plan_cache_stats();
    assert!(
        stats.hits > 0,
        "sessions must share cached templates, got {stats:?}"
    );
    assert!(
        stats.invalidations > 0,
        "mid-run DDL must invalidate, got {stats:?}"
    );
    // The counters are one SQL query away, like every ima$ table.
    let r = s.execute("select hits from ima$plan_cache").unwrap();
    assert!(r.rows[0].get(0).as_int().unwrap() > 0);
    assert_eq!(e.locks().stats().held, 0, "all locks released");
}
