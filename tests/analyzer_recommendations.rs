//! Integration tests of the analyzer against a real recorded workload on
//! the NREF-like database — the §V-B experiment, test-sized.

use ingot::prelude::*;
use ingot::workload::{analytic_queries, reference_indexes};

fn tuned_engine() -> (std::sync::Arc<Engine>, NrefConfig) {
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let nref = NrefConfig {
        proteins: 1500,
        taxa: 40,
        ..NrefConfig::default()
    };
    load_nref(&engine, &nref).unwrap();
    (engine, nref)
}

#[test]
fn analyzer_covers_all_three_rule_families_on_nref() {
    let (engine, nref) = tuned_engine();
    let session = engine.open_session();
    for q in analytic_queries(&nref) {
        session.execute(&q).unwrap();
    }
    let view = WorkloadView::from_monitor(engine.monitor().unwrap());
    let report = Analyzer::default().analyze(&engine, &view).unwrap();

    let stats = report
        .recommendations
        .iter()
        .filter(|r| matches!(r, Recommendation::CollectStatistics { .. }))
        .count();
    let btree = report
        .recommendations
        .iter()
        .filter(|r| matches!(r, Recommendation::ModifyToBTree { .. }))
        .count();
    let index = report
        .recommendations
        .iter()
        .filter(|r| matches!(r, Recommendation::CreateIndex { .. }))
        .count();
    assert!(stats >= 1, "statistics rules must fire without histograms");
    // Five of the six tables overflow their default heap extent; tiny
    // `taxonomy` (40 rows) fits and must NOT be flagged — the rule is about
    // overflow, not blanket conversion.
    assert!(
        btree >= 5,
        "overflowing heap tables must be flagged, got {btree}"
    );
    assert!(
        btree < 6 || stats > 0,
        "taxonomy at this scale fits its extent"
    );
    assert!(index >= 1, "the join workload must justify indexes");
    // The cost diagram covers the ten most expensive statements.
    assert_eq!(report.cost_diagram.entries.len(), 10);
    for e in &report.cost_diagram.entries {
        assert!(e.actual > 0.0);
        assert!(e.estimated >= 0.0);
    }
}

#[test]
fn applying_recommendations_reduces_physical_io() {
    // The paper's win is disk-bound: the 30 GB database dwarfs the 4 GB of
    // RAM, so every query effectively starts cold. Reproduce that regime by
    // dropping the buffer pool before each statement and counting physical
    // page reads per query.
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let nref = NrefConfig {
        proteins: 1500,
        taxa: 40,
        ..NrefConfig::default()
    };
    load_nref(&engine, &nref).unwrap();
    let session = engine.open_session();
    let queries = analytic_queries(&nref);
    let cold_reads = |sql: &str| {
        engine.catalog().read().pool().clear().unwrap();
        let before = engine.io_stats();
        session.execute(sql).unwrap();
        engine.io_stats().delta_since(&before).reads()
    };
    let before: Vec<u64> = queries.iter().map(|q| cold_reads(q)).collect();

    let view = WorkloadView::from_monitor(engine.monitor().unwrap());
    let analyzer = Analyzer::default();
    let report = analyzer.analyze(&engine, &view).unwrap();
    analyzer.apply(&session, &report.recommendations).unwrap();
    let after: Vec<u64> = queries.iter().map(|q| cold_reads(q)).collect();

    let total_before: u64 = before.iter().sum();
    let total_after: u64 = after.iter().sum();
    assert!(
        (total_after as f64) < total_before as f64 * 0.85,
        "tuning must cut cold-cache physical reads: {total_before} → {total_after}"
    );
    // The selective lookups (accession / pk-range shapes) improve hugely;
    // at least a fifth of the workload should read under half its former
    // pages — the Fig 6 pattern ("only a few statements seem to benefit",
    // but those benefit a lot).
    let improved = before
        .iter()
        .zip(&after)
        .filter(|(b, a)| (**a as f64) < **b as f64 * 0.5)
        .count();
    assert!(
        improved >= 10,
        "expected ≥10 strongly improved queries, got {improved}"
    );
}

#[test]
fn analyzer_index_set_is_smaller_than_reference_set() {
    // The Fig 7 claim: "the recommended index set was only half as big as
    // the reference index set" at comparable speed-up.
    let (engine, nref) = tuned_engine();
    let session = engine.open_session();
    for q in analytic_queries(&nref) {
        session.execute(&q).unwrap();
    }
    let view = WorkloadView::from_monitor(engine.monitor().unwrap());
    let report = Analyzer::default().analyze(&engine, &view).unwrap();
    let recommended = report
        .recommendations
        .iter()
        .filter(|r| matches!(r, Recommendation::CreateIndex { .. }))
        .count();
    assert!(
        recommended * 2 <= reference_indexes().len(),
        "{recommended} recommended vs {} reference",
        reference_indexes().len()
    );
}

#[test]
fn whatif_costing_never_materialises_virtual_indexes() {
    let (engine, nref) = tuned_engine();
    let session = engine.open_session();
    for q in analytic_queries(&nref).iter().take(10) {
        session.execute(q).unwrap();
    }
    let pages_before = engine.total_data_pages();
    let view = WorkloadView::from_monitor(engine.monitor().unwrap());
    let _ = Analyzer::default().analyze(&engine, &view).unwrap();
    assert_eq!(
        engine.total_data_pages(),
        pages_before,
        "what-if analysis must not allocate index pages"
    );
    let catalog = engine.catalog().read();
    assert_eq!(
        catalog.indexes().filter(|i| i.meta.is_virtual).count(),
        0,
        "no virtual debris"
    );
    // Nor statistics debris: the analyzer's temporary what-if statistics
    // must be rolled back (statistics land only via apply()).
    for t in catalog.tables() {
        assert!(
            t.stats.is_none(),
            "analysis must not leave statistics behind on '{}'",
            t.meta.name
        );
    }
}

#[test]
fn recommendations_apply_through_sql_in_safe_order() {
    let (engine, nref) = tuned_engine();
    let session = engine.open_session();
    for q in analytic_queries(&nref).iter().take(20) {
        session.execute(q).unwrap();
    }
    let view = WorkloadView::from_monitor(engine.monitor().unwrap());
    let analyzer = Analyzer::default();
    let report = analyzer.analyze(&engine, &view).unwrap();
    let executed = analyzer.apply(&session, &report.recommendations).unwrap();
    assert_eq!(executed.len(), report.recommendations.len());
    // Statistics first, indexes last.
    let first_index = executed.iter().position(|s| s.starts_with("create index"));
    let last_stats = executed
        .iter()
        .rposition(|s| s.starts_with("create statistics"));
    if let (Some(fi), Some(ls)) = (first_index, last_stats) {
        assert!(
            ls < fi,
            "statistics must precede index creation: {executed:?}"
        );
    }
    // The engine is healthy afterwards.
    let r = session.execute("select count(*) from protein").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 1500);
}
