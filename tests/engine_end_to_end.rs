//! Cross-crate integration: full SQL behaviour through the public API,
//! validated against independently computed expectations.

use ingot::prelude::*;

fn engine() -> std::sync::Arc<Engine> {
    Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap()
}

fn ints(r: &StatementResult, col: usize) -> Vec<i64> {
    r.rows
        .iter()
        .map(|row| row.get(col).as_int().unwrap())
        .collect()
}

#[test]
fn join_results_match_naive_computation() {
    let e = engine();
    let s = e.open_session();
    s.execute("create table a (k int not null, av int)")
        .unwrap();
    s.execute("create table b (k int not null, bv int)")
        .unwrap();
    // Deterministic pseudo-random data via a simple LCG.
    let mut x = 7u64;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as i64
    };
    let mut a_rows = Vec::new();
    let mut b_rows = Vec::new();
    for _ in 0..300 {
        let k = next() % 40;
        let v = next() % 1000;
        a_rows.push((k, v));
        s.execute(&format!("insert into a values ({k}, {v})"))
            .unwrap();
    }
    for _ in 0..200 {
        let k = next() % 40;
        let v = next() % 1000;
        b_rows.push((k, v));
        s.execute(&format!("insert into b values ({k}, {v})"))
            .unwrap();
    }
    // Naive nested-loop expectation.
    let mut expected: Vec<(i64, i64, i64)> = Vec::new();
    for &(ak, av) in &a_rows {
        for &(bk, bv) in &b_rows {
            if ak == bk && av < bv {
                expected.push((ak, av, bv));
            }
        }
    }
    expected.sort();
    let r = s
        .execute(
            "select a.k, av, bv from a join b on a.k = b.k \
             where av < bv order by a.k, av, bv",
        )
        .unwrap();
    let got: Vec<(i64, i64, i64)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.get(0).as_int().unwrap(),
                row.get(1).as_int().unwrap(),
                row.get(2).as_int().unwrap(),
            )
        })
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn aggregates_match_naive_computation() {
    let e = engine();
    let s = e.open_session();
    s.execute("create table t (g int, v int)").unwrap();
    let mut sums = std::collections::BTreeMap::new();
    for i in 0..500i64 {
        let g = i % 7;
        let v = (i * 13) % 101;
        *sums.entry(g).or_insert(0i64) += v;
        s.execute(&format!("insert into t values ({g}, {v})"))
            .unwrap();
    }
    let r = s
        .execute("select g, sum(v), count(*), min(v), max(v) from t group by g order by g")
        .unwrap();
    assert_eq!(r.rows.len(), 7);
    for row in &r.rows {
        let g = row.get(0).as_int().unwrap();
        assert_eq!(row.get(1).as_int().unwrap(), sums[&g]);
        assert!(row.get(2).as_int().unwrap() >= 71);
    }
    // Global aggregate.
    let total: i64 = sums.values().sum();
    let r = s.execute("select sum(v) from t").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), total);
}

#[test]
fn update_delete_respect_predicates_and_indexes_stay_consistent() {
    let e = engine();
    let s = e.open_session();
    s.execute("create table t (id int not null primary key, v int)")
        .unwrap();
    for i in 0..400 {
        s.execute(&format!("insert into t values ({i}, {})", i % 20))
            .unwrap();
    }
    s.execute("create index t_v on t (v)").unwrap();
    s.execute("modify t to btree").unwrap();
    s.execute("update t set v = 99 where v = 5").unwrap();
    // Via the index (v) and via a scan must agree.
    let by_index = s.execute("select count(*) from t where v = 99").unwrap();
    assert_eq!(by_index.rows[0].get(0).as_int().unwrap(), 20);
    let gone = s.execute("select count(*) from t where v = 5").unwrap();
    assert_eq!(gone.rows[0].get(0).as_int().unwrap(), 0);
    s.execute("delete from t where v = 99").unwrap();
    let total = s.execute("select count(*) from t").unwrap();
    assert_eq!(total.rows[0].get(0).as_int().unwrap(), 380);
    // PK lookups still correct after delete.
    let r = s.execute("select v from t where id = 6").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 6);
    let r = s.execute("select v from t where id = 5").unwrap();
    assert!(r.rows.is_empty(), "id 5 had v=5 → deleted");
}

#[test]
fn order_limit_distinct_between_like() {
    let e = engine();
    let s = e.open_session();
    s.execute("create table t (id int, tag text)").unwrap();
    for i in 0..50 {
        s.execute(&format!("insert into t values ({i}, 'tag{}')", i % 5))
            .unwrap();
    }
    let r = s
        .execute("select distinct tag from t where id between 10 and 30 order by tag desc limit 3")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0].get(0).as_str(), Some("tag4"));
    let r = s
        .execute("select count(*) from t where tag like 'tag_'")
        .unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 50);
    let r = s
        .execute("select count(*) from t where tag like '%3'")
        .unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 10);
    // ORDER BY hidden column + OFFSET.
    let r = s
        .execute("select tag from t order by id desc limit 2 offset 1")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0].get(0).as_str(), Some("tag3")); // id 48
}

#[test]
fn null_semantics_end_to_end() {
    let e = engine();
    let s = e.open_session();
    s.execute("create table t (id int, v int)").unwrap();
    s.execute("insert into t values (1, 10), (2, null), (3, 30)")
        .unwrap();
    // NULL never matches comparisons.
    let r = s.execute("select id from t where v > 5").unwrap();
    assert_eq!(ints(&r, 0).len(), 2);
    let r = s.execute("select id from t where v is null").unwrap();
    assert_eq!(ints(&r, 0), vec![2]);
    let r = s
        .execute("select id from t where v is not null order by id")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![1, 3]);
    // Aggregates skip NULLs; count(*) does not.
    let r = s
        .execute("select count(v), count(*), sum(v) from t")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![2]);
    assert_eq!(r.rows[0].get(1).as_int().unwrap(), 3);
    assert_eq!(r.rows[0].get(2).as_int().unwrap(), 40);
}

#[test]
fn three_way_join_with_aggregation() {
    let e = engine();
    let s = e.open_session();
    s.execute("create table f (a int, b int)").unwrap();
    s.execute("create table g (b int, c int)").unwrap();
    s.execute("create table h (c int, w int)").unwrap();
    for i in 0..60 {
        s.execute(&format!("insert into f values ({}, {})", i % 6, i % 10))
            .unwrap();
        s.execute(&format!("insert into g values ({}, {})", i % 10, i % 4))
            .unwrap();
        s.execute(&format!("insert into h values ({}, {})", i % 4, i))
            .unwrap();
    }
    let r = s
        .execute(
            "select f.a, count(*) from f \
             join g on f.b = g.b join h on g.c = h.c \
             group by f.a order by f.a",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 6);
    // Every group has the same structure by symmetry: 10*6*15 joins / 6 groups.
    let n0 = r.rows[0].get(1).as_int().unwrap();
    assert!(n0 > 0);
    for row in &r.rows {
        assert_eq!(row.get(1).as_int().unwrap(), n0);
    }
}

#[test]
fn errors_are_clean_and_engine_survives() {
    let e = engine();
    let s = e.open_session();
    assert!(matches!(s.execute("selec 1"), Err(Error::Parse(_))));
    assert!(matches!(
        s.execute("select * from ghosts"),
        Err(Error::Binder(_))
    ));
    s.execute("create table t (a int not null)").unwrap();
    assert!(matches!(
        s.execute("insert into t values (null)"),
        Err(Error::Constraint(_))
    ));
    assert!(matches!(
        s.execute("select 1/0 from t"),
        Err(Error::Execution(_)) | Ok(_) // empty table: division never runs
    ));
    s.execute("insert into t values (1)").unwrap();
    assert!(matches!(
        s.execute("select 1/0 from t"),
        Err(Error::Execution(_))
    ));
    // And the engine still works.
    let r = s.execute("select count(*) from t").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 1);
}
