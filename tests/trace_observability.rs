//! Integration tests for the structured tracing subsystem: `EXPLAIN
//! ANALYZE`, the trace IMA tables (`ima$operator_stats`,
//! `ima$latency_histograms`), the monitor's self-observation
//! (`ima$monitor_health`), and the Prometheus metrics snapshot — all
//! exercised through public SQL and the umbrella crate only.

use ingot::common::StmtHash;
use ingot::prelude::*;

fn engine() -> std::sync::Arc<Engine> {
    Engine::builder()
        .config(EngineConfig::tracing())
        .build()
        .unwrap()
}

fn load(s: &Session) {
    s.execute("create table protein (nref_id int not null primary key, name text, org_id int)")
        .unwrap();
    s.execute("create table organism (org_id int not null primary key, oname text)")
        .unwrap();
    for i in 0..10 {
        s.execute(&format!("insert into organism values ({i}, 'o{i}')"))
            .unwrap();
    }
    for i in 0..200 {
        s.execute(&format!(
            "insert into protein values ({i}, 'p{i}', {})",
            i % 10
        ))
        .unwrap();
    }
}

fn plan_lines(r: &StatementResult) -> Vec<String> {
    r.rows
        .iter()
        .map(|row| row.get(0).as_str().unwrap().to_owned())
        .collect()
}

#[test]
fn explain_analyze_annotates_every_operator_of_a_join() {
    let e = engine();
    let s = e.open_session();
    load(&s);
    let sql = "explain analyze select p.name, o.oname from protein p \
               join organism o on p.org_id = o.org_id where o.org_id = 3";
    let r = s.execute(sql).unwrap();
    let lines = plan_lines(&r);

    // Golden shape: a Project over a join over two scans, plus the summary.
    let (ops, summary) = lines.split_at(lines.len() - 1);
    assert!(ops.len() >= 4, "expected >= 4 operator lines: {lines:#?}");
    assert!(ops[0].starts_with("Project"), "{lines:#?}");
    assert!(ops.iter().any(|l| l.contains("Join")), "{lines:#?}");
    assert_eq!(
        ops.iter()
            .filter(|l| l.contains("SeqScan") || l.contains("IndexScan") || l.contains("PkLookup"))
            .count(),
        2,
        "two table accesses: {lines:#?}"
    );
    // Every operator line is annotated with estimated vs actual rows, page
    // count, and elapsed time.
    for l in ops {
        assert!(l.contains("est rows="), "{l}");
        assert!(l.contains("act rows="), "{l}");
        assert!(l.contains("pages="), "{l}");
        assert!(l.contains("time="), "{l}");
    }
    // Children are indented under the root.
    assert!(ops[1].starts_with("  "), "{lines:#?}");
    assert!(summary[0].starts_with("Execution:"), "{lines:#?}");
    // The join produced 20 rows (protein.org_id = 3 matches 20 of 200).
    assert!(ops[0].contains("act rows=20"), "{lines:#?}");
}

#[test]
fn operator_stats_are_queryable_and_consistent_with_the_rendering() {
    let e = engine();
    let s = e.open_session();
    load(&s);
    let sql = "explain analyze select p.name, o.oname from protein p \
               join organism o on p.org_id = o.org_id where o.org_id = 3";
    let r = s.execute(sql).unwrap();
    let n_ops = plan_lines(&r).len() - 1; // minus the summary line

    let hash = StmtHash::of(sql);
    let rows = s
        .execute(&format!(
            "select op_id, parent_id, depth, op, rows_out, executions \
             from ima$operator_stats where hash = '{hash}' order by op_id"
        ))
        .unwrap()
        .rows;
    assert_eq!(rows.len(), n_ops, "one stats row per rendered operator");
    // Pre-order ids, root first with no parent.
    assert_eq!(rows[0].get(0).as_int(), Some(0));
    assert_eq!(rows[0].get(1).as_int(), Some(-1));
    assert_eq!(rows[0].get(2).as_int(), Some(0));
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.get(0).as_int(), Some(i as i64));
        assert_eq!(row.get(5).as_int(), Some(1), "one execution so far");
    }
    // Re-running the same statement accumulates into the same plan rows.
    s.execute(sql).unwrap();
    let execs = s
        .execute(&format!(
            "select executions from ima$operator_stats where hash = '{hash}' and op_id = 0"
        ))
        .unwrap();
    assert_eq!(execs.rows[0].get(0).as_int(), Some(2));
}

#[test]
fn latency_histogram_counts_match_statement_frequency() {
    let e = engine();
    let s = e.open_session();
    load(&s);
    let sql = "select name from protein where nref_id = 17";
    for _ in 0..7 {
        s.execute(sql).unwrap();
    }
    let hash = StmtHash::of(sql);
    // The reading queries below have different texts (and hashes), so they
    // cannot perturb this statement's counters.
    let freq = s
        .execute(&format!(
            "select frequency from ima$statements where hash = '{hash}'"
        ))
        .unwrap()
        .rows[0]
        .get(0)
        .as_int()
        .unwrap();
    assert_eq!(freq, 7);
    let total = s
        .execute(&format!(
            "select sum(count) from ima$latency_histograms where hash = '{hash}'"
        ))
        .unwrap()
        .rows[0]
        .get(0)
        .as_int()
        .unwrap();
    assert_eq!(total, freq, "histogram buckets must sum to the frequency");
    // Buckets are log2-aligned with cumulative counts, so quantile upper
    // bounds are derivable in SQL: the p50 bucket is the first whose
    // cumulative count reaches half the total.
    let rows = s
        .execute(&format!(
            "select lo_ns, hi_ns, cum_count from ima$latency_histograms \
             where hash = '{hash}' and cum_count >= 4 order by bucket limit 1"
        ))
        .unwrap()
        .rows;
    assert_eq!(rows.len(), 1);
    assert!(rows[0].get(1).as_int().unwrap() >= rows[0].get(0).as_int().unwrap());
}

#[test]
fn monitor_health_mirrors_daemon_health() {
    let e = engine();
    let s = e.open_session();
    load(&s);
    let r = s
        .execute(
            "select self_time_ns, sensor_calls, statements_recorded, \
             statements_len, statements_capacity, workload_wrapped from ima$monitor_health",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1, "single-row self-observation");
    let row = &r.rows[0];
    assert!(row.get(0).as_int().unwrap() > 0, "self_time_ns");
    assert!(row.get(1).as_int().unwrap() > 0, "sensor_calls");
    // create(2) + organism inserts(10) + protein inserts(200) = 212 records.
    assert!(row.get(2).as_int().unwrap() >= 212, "statements_recorded");
    assert!(row.get(3).as_int().unwrap() <= row.get(4).as_int().unwrap());
    // Default workload capacity (4096) has not wrapped yet.
    assert_eq!(row.get(5).as_int(), Some(0));
}

#[test]
fn tracing_disabled_engine_still_answers_explain_analyze() {
    let e = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let s = e.open_session();
    load(&s);
    assert!(!e.tracing_enabled());
    let r = s
        .execute("explain analyze select count(*) from protein")
        .unwrap();
    assert!(plan_lines(&r).iter().any(|l| l.contains("act rows=")));
    // The spans still landed in the aggregates (EXPLAIN ANALYZE is an
    // explicit request), but no statement traces/histograms accumulate.
    let n = s
        .execute("select count(*) from ima$operator_stats")
        .unwrap()
        .rows[0]
        .get(0)
        .as_int()
        .unwrap();
    assert!(n > 0);
    let hists = s
        .execute("select count(*) from ima$latency_histograms")
        .unwrap()
        .rows[0]
        .get(0)
        .as_int()
        .unwrap();
    assert_eq!(hists, 0, "histograms only fill while tracing is on");
}

#[test]
fn tracer_self_time_is_charged_to_monitor_ns() {
    let e = engine();
    let s = e.open_session();
    load(&s);
    s.execute("select count(*) from protein").unwrap();
    let tracer_ns = e.tracer().unwrap().self_time_ns();
    assert!(tracer_ns > 0);
    let monitor_ns = e.monitor().unwrap().self_time_ns();
    assert!(
        monitor_ns >= tracer_ns,
        "tracer bookkeeping ({tracer_ns} ns) must be part of monitor self-time ({monitor_ns} ns)"
    );
}

#[test]
fn metrics_snapshot_covers_engine_monitor_and_tracer() {
    let e = engine();
    let s = e.open_session();
    load(&s);
    s.execute("select count(*) from protein").unwrap();
    let text = e.metrics_snapshot().render_prometheus();
    for needle in [
        "# TYPE ingot_statements_executed_total counter",
        "ingot_buffer_pool_requests_total{outcome=\"hit\"}",
        "ingot_disk_pages_total{kind=\"write\"}",
        "ingot_monitor_self_time_ns_total",
        "ingot_trace_enabled 1",
        "# TYPE ingot_statement_latency_ns histogram",
        "le=\"+Inf\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // Flattened form feeds the daemon's wl_metrics table: every sample has a
    // parseable name and finite value.
    for (name, _labels, value) in e.metrics_snapshot().flatten() {
        assert!(name.starts_with("ingot_"), "{name}");
        assert!(value.is_finite(), "{name} = {value}");
    }
}
