//! Integration tests of the paper's core contribution: the Fig 2 sensor
//! pipeline and the Fig 3 IMA schema, exercised through public SQL only.

use ingot::prelude::*;

fn engine() -> std::sync::Arc<Engine> {
    Engine::builder()
        .config(EngineConfig::monitoring().with_statement_capacity(100))
        .build()
        .unwrap()
}

fn one_int(s: &Session, sql: &str) -> i64 {
    s.execute(sql).unwrap().rows[0].get(0).as_int().unwrap()
}

#[test]
fn fig2_sensor_values_are_recorded() {
    let e = engine();
    let s = e.open_session();
    s.execute("create table protein (nref_id int not null primary key, name text)")
        .unwrap();
    for i in 0..500 {
        s.execute(&format!("insert into protein values ({i}, 'p{i}')"))
            .unwrap();
    }
    let r = s
        .execute("select name from protein where nref_id = 250")
        .unwrap();
    assert_eq!(r.rows.len(), 1);

    // The workload record for that statement carries every Fig 2 quantity.
    let m = e.monitor().unwrap();
    let w = m.workload();
    let rec = w.last().unwrap();
    assert!(rec.wallclock_ns > 0, "wallclock start/stop");
    assert!(rec.est.total() > 0.0, "estimated costs from the optimizer");
    assert!(
        rec.exec_cpu >= 500,
        "actual costs from execution (full scan)"
    );
    assert!(rec.monitor_ns > 0, "monitor self-timing");
    assert!(
        rec.monitor_ns < rec.wallclock_ns,
        "sensors are a fraction of the statement"
    );

    // Parse-stage references: the statement touched protein.{nref_id,name}.
    let refs = m.references();
    let hash = rec.hash;
    let stmt_refs: Vec<_> = refs.iter().filter(|r| r.hash == hash).collect();
    assert!(
        stmt_refs.len() >= 3,
        "table + 2 attributes, got {stmt_refs:?}"
    );
}

#[test]
fn ima_tables_follow_fig3_schema() {
    let e = engine();
    let s = e.open_session();
    s.execute("create table t (a int, b int)").unwrap();
    s.execute("insert into t values (1, 2)").unwrap();
    s.execute("select a from t where b = 2").unwrap();

    // statements: hash + text + frequency.
    let n = one_int(&s, "select count(*) from ima$statements");
    assert!(n >= 3);
    // workload joins back to statements through the hash key.
    let joined = one_int(
        &s,
        "select count(*) from ima$workload w join ima$statements st on w.hash = st.hash",
    );
    assert!(joined >= 3);
    // references carry object types.
    let tables = one_int(
        &s,
        "select count(*) from ima$references where object_type = 'table'",
    );
    assert!(tables >= 1);
    // tables / attributes / statistics exist and answer SQL.
    assert_eq!(
        one_int(&s, "select count(*) from ima$tables where table_name = 't'"),
        1
    );
    assert!(one_int(&s, "select count(*) from ima$attributes") >= 2);
    e.sample_statistics();
    assert!(one_int(&s, "select count(*) from ima$statistics") >= 1);
    // indexes table appears once an index is used: make `b` selective
    // enough that the optimizer prefers the probe over the scan.
    s.execute("create index t_b on t (b)").unwrap();
    for i in 0..6000 {
        s.execute(&format!("insert into t values ({i}, {i})"))
            .unwrap();
    }
    s.execute("create statistics on t").unwrap();
    s.execute("select a from t where b = 55").unwrap();
    assert!(
        one_int(
            &s,
            "select count(*) from ima$indexes where index_name = 't_b'"
        ) >= 1,
        "used index must be recorded"
    );
}

#[test]
fn statement_ring_wraps_like_the_paper() {
    // "By default, the monitoring can capture up to 1000 different
    // statements until the buffer wraps around" — here capacity 100.
    let e = engine();
    let s = e.open_session();
    s.execute("create table t (a int)").unwrap();
    for i in 0..250 {
        s.execute(&format!("select a from t where a = {i}"))
            .unwrap();
    }
    let m = e.monitor().unwrap();
    let stmts = m.statements();
    assert_eq!(stmts.len(), 100, "ring capacity");
    // The survivors are the most recent distinct statements.
    assert!(stmts.iter().any(|x| x.text.contains("= 249")));
    assert!(!stmts.iter().any(|x| x.text.contains("= 10 ")));
}

#[test]
fn repeated_statements_bump_frequency_not_capacity() {
    let e = engine();
    let s = e.open_session();
    s.execute("create table t (a int)").unwrap();
    for _ in 0..50 {
        s.execute("select a from t where a = 1").unwrap();
    }
    let freq = one_int(
        &s,
        "select frequency from ima$statements where query_text like 'select a from t%'",
    );
    assert_eq!(freq, 50);
}

#[test]
fn original_setup_pays_nothing_and_records_nothing() {
    let e = Engine::builder()
        .config(EngineConfig::original())
        .build()
        .unwrap();
    let s = e.open_session();
    s.execute("create table t (a int)").unwrap();
    s.execute("insert into t values (1)").unwrap();
    assert!(e.monitor().is_none());
    // ima$ tables do not exist on the Original instance.
    assert!(s.execute("select count(*) from ima$workload").is_err());
}

#[test]
fn monitor_self_time_stays_small_for_expensive_statements() {
    // The Fig 5 claim, test-sized: for a statement that scans thousands of
    // rows, the monitoring share must be far below 10 %.
    let e = engine();
    let s = e.open_session();
    s.execute("create table t (a int, b int)").unwrap();
    for i in 0..5000 {
        s.execute(&format!("insert into t values ({i}, {})", i % 7))
            .unwrap();
    }
    s.execute("select b, count(*), sum(a) from t group by b order by b")
        .unwrap();
    let m = e.monitor().unwrap();
    let rec = m.workload().last().unwrap().clone();
    let share = rec.monitor_ns as f64 / rec.wallclock_ns as f64;
    assert!(
        share < 0.10,
        "share {share} too high for an expensive statement"
    );
}

#[test]
fn estimated_vs_actual_divergence_is_observable_via_sql() {
    // Without statistics the optimizer guesses; the recorded workload makes
    // the mis-estimate visible — the input to the analyzer's first rule.
    let e = engine();
    let s = e.open_session();
    s.execute("create table t (a int, b int)").unwrap();
    // Heavily skewed: b = 0 everywhere.
    for i in 0..3000 {
        s.execute(&format!("insert into t values ({i}, 0)"))
            .unwrap();
    }
    s.execute("select count(*) from t where b = 0").unwrap();
    let r = s
        .execute("select est_cpu, exec_cpu from ima$workload order by seq desc limit 1")
        .unwrap();
    let est = r.rows[0].get(0).as_f64().unwrap();
    let actual = r.rows[0].get(1).as_f64().unwrap();
    assert!(
        actual > est * 2.0,
        "default selectivity must underestimate the skew (est {est}, actual {actual})"
    );
}
