//! Lock monitoring: two contending sessions, the statistics sensor, and the
//! analyzer's locks diagram (the paper's Fig 8 in miniature) — including a
//! provoked deadlock that shows up as a `D` marker.
//!
//! Live contention is observed entirely through SQL: `ima$locks` (one row
//! per granted/waiting lock request) and `ima$sessions` (session, txn and
//! lock-manager counters) are virtual tables that take no locks themselves,
//! so they can be queried *while* the lock they are reporting on is fought
//! over — "with IMA it is possible to easily access in-memory structures
//! within the DBMS over standard SQL".
//!
//! Run with: `cargo run --example lock_monitoring`

// Real-time pacing: sleeps coordinate contending sessions and wait out
// daemon intervals — the sanctioned exception to the workspace sleep ban.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ingot::analyzer::report::build_locks_diagram;
use ingot::prelude::*;

fn main() -> Result<()> {
    let engine = Engine::builder()
        .config(EngineConfig {
            lock_timeout_ms: 300,
            ..EngineConfig::monitoring()
        })
        .build()?;
    let setup = engine.open_session();
    setup.execute("create table accounts (id int not null primary key, balance int)")?;
    setup.execute("create table audit (id int not null primary key, note text)")?;
    for i in 0..10 {
        setup.execute(&format!("insert into accounts values ({i}, 100)"))?;
        setup.execute(&format!("insert into audit values ({i}, 'ok')"))?;
    }

    // Worker 1: accounts → audit. Worker 2: audit → accounts. Opposite lock
    // orders produce waits and, eventually, a deadlock. Workers run until
    // the sampling loop finishes so every sample sees live contention.
    let stop = Arc::new(AtomicBool::new(false));
    let stop1 = Arc::clone(&stop);
    let e1 = Arc::clone(&engine);
    let w1 = std::thread::spawn(move || {
        let s = e1.open_session();
        let mut deadlocks = 0;
        let mut i = 0u64;
        while !stop1.load(Ordering::Relaxed) {
            i += 1;
            if s.begin().is_err() {
                continue;
            }
            let a = s.execute(&format!(
                "update accounts set balance = balance - 1 where id = {}",
                i % 10
            ));
            std::thread::sleep(Duration::from_millis(3));
            let b = s.execute(&format!(
                "update audit set note = 'w1' where id = {}",
                i % 10
            ));
            if a.is_ok() && b.is_ok() {
                let _ = s.commit();
            } else {
                deadlocks += 1;
                let _ = s.rollback();
            }
        }
        deadlocks
    });
    let stop2 = Arc::clone(&stop);
    let e2 = Arc::clone(&engine);
    let w2 = std::thread::spawn(move || {
        let s = e2.open_session();
        let mut deadlocks = 0;
        let mut i = 0u64;
        while !stop2.load(Ordering::Relaxed) {
            i += 1;
            if s.begin().is_err() {
                continue;
            }
            let a = s.execute(&format!(
                "update audit set note = 'w2' where id = {}",
                i % 10
            ));
            std::thread::sleep(Duration::from_millis(3));
            let b = s.execute(&format!(
                "update accounts set balance = balance + 1 where id = {}",
                i % 10
            ));
            if a.is_ok() && b.is_ok() {
                let _ = s.commit();
            } else {
                deadlocks += 1;
                let _ = s.rollback();
            }
        }
        deadlocks
    });

    // Sample the statistics sensor while the workers fight — and, halfway
    // through, look at the live lock table over plain SQL.
    for round in 0..15 {
        std::thread::sleep(Duration::from_millis(20));
        engine.sim_clock().advance_secs(30);
        engine.sample_statistics();
        if round == 7 {
            let locks = setup.execute("select * from ima$locks")?;
            println!(
                "live ima$locks while the workers fight ({} requests):",
                locks.rows.len()
            );
            for row in &locks.rows {
                println!(
                    "  txn={:<4} table_id={:<3} row_id={:<6} mode={} state={}",
                    row.get(0),
                    row.get(1),
                    row.get(2),
                    row.get(3),
                    row.get(4)
                );
            }
            let sess = setup.execute("select * from ima$sessions")?;
            if let Some(row) = sess.rows.first() {
                println!(
                    "ima$sessions: current={} peak={} active_txns={} locks_held={} \
                     waiting={} waits_total={} deadlocks_total={}\n",
                    row.get(0),
                    row.get(1),
                    row.get(2),
                    row.get(3),
                    row.get(4),
                    row.get(5),
                    row.get(6)
                );
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let d1 = w1.join().expect("w1");
    let d2 = w2.join().expect("w2");

    let view = WorkloadView::from_monitor(engine.monitor().expect("monitor"));
    println!("{}", build_locks_diagram(&view).render());

    let stats = engine.locks().stats();
    println!(
        "lock waits: {}, deadlocks detected: {} (victims seen by workers: {})",
        stats.waits_total,
        stats.deadlocks_total,
        d1 + d2
    );

    // The same data is one SQL query away, for any external tool:
    let rows = setup.execute(
        "select at_secs, locks_held, deadlocks_total from ima$statistics \
         order by at_secs desc limit 3",
    )?;
    println!("\nlatest ima$statistics samples:");
    for row in &rows.rows {
        println!(
            "  t={}s locks={} deadlocks_total={}",
            row.get(0),
            row.get(1),
            row.get(2)
        );
    }
    Ok(())
}
