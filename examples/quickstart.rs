//! Quickstart: create an engine with integrated monitoring, run SQL, and
//! look at what the monitor recorded — all through standard SQL on the
//! `ima$…` virtual tables.
//!
//! Run with: `cargo run --example quickstart`

use ingot::prelude::*;

fn main() -> Result<()> {
    // An engine with the monitoring sensors compiled in (the paper's
    // "Monitoring" setup; use EngineConfig::original() for the bare engine).
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()?;
    let session = engine.open_session();

    // Ordinary SQL.
    session
        .execute("create table protein (nref_id text not null primary key, name text, len int)")?;

    // Prepared statements: one cached plan per template, parameters bound
    // positionally on each execution.
    let insert = session.prepare("insert into protein values ($1, $2, $3)")?;
    for (id, name, len) in [
        ("NF00000001", "insulin", 51),
        ("NF00000002", "hemoglobin beta", 147),
        ("NF00000003", "myoglobin", 154),
    ] {
        insert.execute(&[
            Value::Str(id.into()),
            Value::Str(name.into()),
            Value::Int(len),
        ])?;
    }
    let r = session.execute("select name, len from protein where len > 100 order by len desc")?;
    println!("proteins longer than 100 residues:");
    for row in &r.rows {
        println!("  {} ({} aa)", row.get(0), row.get(1));
    }

    // Every statement passed through the sensors of Fig 2: wall-clock,
    // estimated cost, actual cost.
    println!(
        "\nlast statement: est {} | actual {} | {} µs wall",
        r.est_cost,
        r.actual_cost,
        r.wallclock_ns / 1000
    );

    // The monitor's ring buffers are queryable as virtual tables (IMA).
    let stmts = session.execute(
        "select frequency, query_text from ima$statements order by frequency desc limit 5",
    )?;
    println!("\nima$statements (top 5 by frequency):");
    for row in &stmts.rows {
        println!("  {}x  {}", row.get(0), row.get(1));
    }

    let workload =
        session.execute("select count(*), sum(exec_cpu), sum(wallclock_ns) from ima$workload")?;
    let row = &workload.rows[0];
    println!(
        "\nima$workload: {} executions, {} tuples processed, {} µs total",
        row.get(0),
        row.get(1),
        row.get(2).as_int().unwrap_or(0) / 1000
    );

    // EXPLAIN shows the optimizer's plan with its estimates.
    let plan = session.execute("explain select name from protein where nref_id = 'NF00000002'")?;
    println!("\nquery plan:");
    for row in &plan.rows {
        println!("  {}", row.get(0));
    }

    // The shared plan cache watches itself, too.
    let cache = session.execute("select hits, misses, entries from ima$plan_cache")?;
    let row = &cache.rows[0];
    println!(
        "\nima$plan_cache: {} hits, {} misses, {} live plans",
        row.get(0),
        row.get(1),
        row.get(2)
    );
    Ok(())
}
