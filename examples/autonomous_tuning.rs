//! The full autonomous-tuning control loop of the paper on an NREF-like
//! database: **monitor** a workload, **store** it, **analyze** it, and
//! **implement** the recommended physical-design changes — then show the
//! speed-up.
//!
//! Run with: `cargo run --release --example autonomous_tuning`

use std::time::Instant;

use ingot::analyzer::report::build_locks_diagram;
use ingot::prelude::*;
use ingot::workload::analytic_queries;

fn main() -> Result<()> {
    // 1. MONITORING: an instrumented engine with a freshly loaded database.
    let engine = Engine::builder()
        .config(EngineConfig::monitoring().with_buffer_pool_pages(1024))
        .build()
        .unwrap();
    let nref = NrefConfig::scaled(0.3);
    println!("loading NREF-like database ({} proteins)…", nref.proteins);
    let stats = load_nref(&engine, &nref)?;
    println!("loaded {} rows across six tables", stats.total());

    let session = engine.open_session();
    let queries = analytic_queries(&nref);

    println!("\nrunning the 50-query analytic workload (recorded by the monitor)…");
    let t0 = Instant::now();
    let mut tuples_before = 0.0;
    for q in &queries {
        tuples_before += session.execute(q)?.actual_cost.cpu;
    }
    let before = t0.elapsed();
    println!("  unoptimised: {before:?}, {tuples_before:.0} tuples processed");

    // 2. ANALYSIS: the analyzer reads the collected data and asks the
    //    engine's own optimizer what hypothetical indexes would be used.
    let view = WorkloadView::from_monitor(engine.monitor().expect("monitoring on"));
    let analyzer = Analyzer::default();
    let report = analyzer.analyze(&engine, &view)?;

    println!("\n=== analyzer recommendations ===");
    for rec in &report.recommendations {
        println!("  - {}", rec.describe());
    }
    println!("\n{}", report.cost_diagram.render());
    let _ = build_locks_diagram(&view); // (see lock_monitoring example)

    // 3. IMPLEMENTATION: apply everything through SQL.
    println!("applying recommendations…");
    let executed = analyzer.apply(&session, &report.recommendations)?;
    for sql in &executed {
        println!("  {sql}");
    }

    // 4. Verify the win on the same workload.
    let t0 = Instant::now();
    let mut tuples_after = 0.0;
    for q in &queries {
        tuples_after += session.execute(q)?.actual_cost.cpu;
    }
    let after = t0.elapsed();
    println!("\n  tuned: {after:?}, {tuples_after:.0} tuples processed");
    println!(
        "  runtime: {:.0} % of unoptimised | tuples: {:.0} %",
        100.0 * after.as_secs_f64() / before.as_secs_f64(),
        100.0 * tuples_after / tuples_before.max(1.0)
    );
    Ok(())
}
