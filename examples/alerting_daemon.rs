//! The storage daemon in action: background polling into a file-backed
//! workload database, retention, growth accounting, and active alerting.
//!
//! Run with: `cargo run --example alerting_daemon`

// Real-time pacing: sleeps coordinate contending sessions and wait out
// daemon intervals — the sanctioned exception to the workspace sleep ban.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::Duration;

use ingot::prelude::*;

fn main() -> Result<()> {
    let engine = Engine::builder()
        .config(EngineConfig::monitoring())
        .build()
        .unwrap();
    let session = engine.open_session();
    session.execute("create table events (id int not null, kind text, payload text)")?;

    // A file-backed workload DB: daemon appends are real disk writes.
    let dir = std::env::temp_dir().join(format!("ingot-alerting-{}", std::process::id()));
    let wldb = Arc::new(WorkloadDb::file_backed(&dir, engine.sim_clock().clone())?);

    let daemon = StorageDaemon::new(
        Arc::clone(&engine),
        Arc::clone(&wldb),
        DaemonConfig {
            interval: Duration::from_millis(100), // paper default: 30 s
            ..Default::default()
        },
    );
    // The paper's example trigger: "reaching the maximum number of users".
    daemon.add_rule(AlertRule::max_sessions(2));
    daemon.add_rule(AlertRule::deadlocks());
    daemon.add_rule(AlertRule::cache_hit_ratio_below(0.5));
    let handle = daemon.spawn()?;

    // Generate load; open extra sessions to trip the alert rule.
    println!("generating load with extra sessions…");
    let extra: Vec<_> = (0..3).map(|_| engine.open_session()).collect();
    for i in 0..500 {
        session.execute(&format!(
            "insert into events values ({i}, 'kind{}', 'payload-{i}')",
            i % 5
        ))?;
    }
    session.execute("select kind, count(*) from events group by kind")?;
    std::thread::sleep(Duration::from_millis(400));
    drop(extra);

    // What did the daemon collect?
    let d = handle.daemon();
    println!("\ndaemon polled {} times", d.poll_count());
    for alert in d.take_alerts() {
        println!("ALERT [{}] {}", alert.rule, alert.message);
    }

    let wl = d.wldb();
    println!("\nworkload DB contents:");
    for table in ingot::daemon::wldb::WL_TABLES {
        println!("  {table:<16} {:>6} rows", wl.row_count(table)?);
    }
    let g = wl.growth();
    println!(
        "\ngrowth: {} rows, {:.1} KiB appended",
        g.rows_appended(),
        g.bytes_appended() as f64 / 1024.0
    );

    // Long-term data is plain SQL away.
    let rows = wl
        .query("select query_text, frequency from wl_statements order by frequency desc limit 3")?;
    println!("\ntop statements in the workload DB:");
    for row in rows {
        println!("  {}x  {}", row.get(1), row.get(0));
    }

    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
